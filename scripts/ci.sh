#!/usr/bin/env bash
# Tier-1 gate. Every PR must leave this green. The build is fully offline:
# the workspace has no third-party dependencies (see DESIGN.md → Dependency
# policy), so --offline both works and enforces that nothing sneaks in.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test --workspace -q --offline
cargo fmt --all --check

# Chaos group: fault-injection e2e (tests/tests/chaos.rs). The fault
# sequences are drawn from a seeded PRNG; export LUSAIL_CHAOS_SEED to try
# other histories. On failure we print the seed so the run can be replayed.
seed="${LUSAIL_CHAOS_SEED:-42}"
if ! LUSAIL_CHAOS_SEED="$seed" cargo test -p integration --test chaos -q --offline; then
    echo "chaos suite failed with LUSAIL_CHAOS_SEED=$seed -- replay with:" >&2
    echo "    LUSAIL_CHAOS_SEED=$seed cargo test -p integration --test chaos" >&2
    exit 1
fi

# Replica-chaos group: failover and hedging e2e (tests/tests/replica_chaos.rs).
# Covers one member killed mid-wave (dies_after) and one member slow (the
# hedge path), under the same seeded PRNG discipline as the chaos group.
if ! LUSAIL_CHAOS_SEED="$seed" cargo test -p integration --test replica_chaos -q --offline; then
    echo "replica-chaos suite failed with LUSAIL_CHAOS_SEED=$seed -- replay with:" >&2
    echo "    LUSAIL_CHAOS_SEED=$seed cargo test -p integration --test replica_chaos" >&2
    exit 1
fi

# Mem-chaos group: memory-budget e2e (tests/tests/mem_chaos.rs). A
# result-bomb endpoint runs against a small --memory-budget: fail-fast
# must surface BudgetExceeded naming the endpoint, --partial must truncate
# within budget, and the spilling join must match the in-memory join.
if ! LUSAIL_CHAOS_SEED="$seed" cargo test -p integration --test mem_chaos -q --offline; then
    echo "mem-chaos suite failed with LUSAIL_CHAOS_SEED=$seed -- replay with:" >&2
    echo "    LUSAIL_CHAOS_SEED=$seed cargo test -p integration --test mem_chaos" >&2
    exit 1
fi

# Federate group: federation-service e2e (tests/tests/federate.rs).
# Parallel clients against `serve --federate` must match single-shot
# answers, a repeated hot query must reach zero backend endpoints, a
# saturated pool must shed with 503 + Retry-After without exceeding its
# ledger count, quotas must 429 the noisy client, and the seeded chaos
# case (LUSAIL_CHAOS_SEED picks a dead endpoint behind the service) must
# still yield partial results with warnings.
if ! LUSAIL_CHAOS_SEED="$seed" cargo test -p integration --test federate -q --offline; then
    echo "federate suite failed with LUSAIL_CHAOS_SEED=$seed -- replay with:" >&2
    echo "    LUSAIL_CHAOS_SEED=$seed cargo test -p integration --test federate" >&2
    exit 1
fi

# Cancel-chaos group: query-lifecycle e2e (tests/tests/cancel_chaos.rs).
# A client disconnecting mid-query must free its ledger and halt outbound
# requests well before the deadline, a hang-wedged query must be reaped
# by the watchdog with its memory returned, POST /queries/<id>/cancel
# must surface a structured 499 to the caller, and an injected engine
# panic must be contained to its one connection with nothing leaked.
if ! LUSAIL_CHAOS_SEED="$seed" cargo test -p integration --test cancel_chaos -q --offline; then
    echo "cancel-chaos suite failed with LUSAIL_CHAOS_SEED=$seed -- replay with:" >&2
    echo "    LUSAIL_CHAOS_SEED=$seed cargo test -p integration --test cancel_chaos" >&2
    exit 1
fi

# Codec group: binary results interchange e2e (tests/tests/codec.rs). A
# binary-negotiated loopback federation must be byte-identical to a
# JSON-negotiated one on LUBM and QFed, fall back transparently against
# endpoints that only speak SPARQL JSON (fallbacks counted), and stay
# identical under --partial with a seeded chaos endpoint down mid-fleet.
if ! LUSAIL_CHAOS_SEED="$seed" cargo test -p integration --test codec -q --offline; then
    echo "codec suite failed with LUSAIL_CHAOS_SEED=$seed -- replay with:" >&2
    echo "    LUSAIL_CHAOS_SEED=$seed cargo test -p integration --test codec" >&2
    exit 1
fi

# Integrity-chaos group: result-integrity e2e (tests/tests/integrity_chaos.rs).
# A silently-truncating fleet must be recovered byte-identical to the
# all-healthy run on LUBM and QFed, a miscounting endpoint must end up
# quarantined with observed-vs-claimed counts in the warning (--partial)
# or a structured integrity error (fail-fast), recovery must stop under a
# tight memory budget and respect the deadline, and the paged-merge
# property must hold for arbitrary page sizes and row counts.
if ! LUSAIL_CHAOS_SEED="$seed" cargo test -p integration --test integrity_chaos -q --offline; then
    echo "integrity-chaos suite failed with LUSAIL_CHAOS_SEED=$seed -- replay with:" >&2
    echo "    LUSAIL_CHAOS_SEED=$seed cargo test -p integration --test integrity_chaos" >&2
    exit 1
fi
