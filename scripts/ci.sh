#!/usr/bin/env bash
# Tier-1 gate. Every PR must leave this green. The build is fully offline:
# the workspace has no third-party dependencies (see DESIGN.md → Dependency
# policy), so --offline both works and enforces that nothing sneaks in.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --release --offline
cargo test --workspace -q --offline
cargo fmt --all --check
