//! Serialization of queries back to SPARQL text.
//!
//! The federation layer ships queries to endpoints as text (so we can count
//! request bytes, exactly like a real federation sends HTTP requests), and
//! the endpoint re-parses them. `parse(serialize(q)) == q` is checked by
//! round-trip tests and a property test in the integration suite.

use crate::ast::*;
use std::fmt::Write;

/// Serialize a query to SPARQL text.
pub fn serialize_query(q: &Query) -> String {
    let mut out = String::new();
    for (p, ns) in &q.prefixes {
        let _ = writeln!(out, "PREFIX {p}: <{ns}>");
    }
    match &q.form {
        QueryForm::Select(s) => write_select(&mut out, s),
        QueryForm::Ask(p) => {
            out.push_str("ASK ");
            write_pattern(&mut out, p);
        }
    }
    out
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&serialize_query(self))
    }
}

fn write_select(out: &mut String, s: &SelectQuery) {
    out.push_str("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    match &s.projection {
        Projection::All => out.push_str("* "),
        Projection::Vars(vs) => {
            for v in vs {
                let _ = write!(out, "{v} ");
            }
        }
        Projection::Count {
            inner,
            distinct,
            as_var,
        } => {
            out.push_str("(COUNT(");
            if *distinct {
                out.push_str("DISTINCT ");
            }
            match inner {
                Some(v) => {
                    let _ = write!(out, "{v}");
                }
                None => out.push('*'),
            }
            let _ = write!(out, ") AS {as_var}) ");
        }
        Projection::Aggregate { keys, aggs } => {
            for k in keys {
                let _ = write!(out, "{k} ");
            }
            for a in aggs {
                let _ = write!(out, "({}(", a.func.keyword());
                if a.distinct {
                    out.push_str("DISTINCT ");
                }
                match &a.arg {
                    Some(v) => {
                        let _ = write!(out, "{v}");
                    }
                    None => out.push('*'),
                }
                let _ = write!(out, ") AS {}) ", a.as_var);
            }
        }
    }
    out.push_str("WHERE ");
    write_pattern(out, &s.pattern);
    if !s.group_by.is_empty() {
        out.push_str(" GROUP BY");
        for v in &s.group_by {
            let _ = write!(out, " {v}");
        }
        out.push(' ');
    }
    if !s.order_by.is_empty() {
        out.push_str(" ORDER BY");
        for (v, asc) in &s.order_by {
            let dir = if *asc { "ASC" } else { "DESC" };
            let _ = write!(out, " {dir}({v})");
        }
    }
    if let Some(l) = s.limit {
        let _ = write!(out, " LIMIT {l}");
    }
    if let Some(o) = s.offset {
        let _ = write!(out, " OFFSET {o}");
    }
}

fn write_pattern(out: &mut String, p: &GraphPattern) {
    out.push_str("{ ");
    write_pattern_inner(out, p);
    out.push_str("} ");
}

fn write_pattern_inner(out: &mut String, p: &GraphPattern) {
    match p {
        GraphPattern::Bgp(tps) => {
            for tp in tps {
                let _ = write!(out, "{tp} . ");
            }
        }
        GraphPattern::Join(a, b) => {
            write_pattern_inner(out, a);
            write_pattern_inner(out, b);
        }
        GraphPattern::LeftJoin(a, b) => {
            write_pattern_inner(out, a);
            out.push_str("OPTIONAL ");
            write_pattern(out, b);
        }
        GraphPattern::Union(a, b) => {
            write_pattern(out, a);
            out.push_str("UNION ");
            write_pattern(out, b);
        }
        GraphPattern::Filter(inner, e) => {
            write_pattern_inner(out, inner);
            match e {
                Expression::NotExists(p) => {
                    out.push_str("FILTER NOT EXISTS ");
                    write_pattern(out, p);
                }
                Expression::Exists(p) => {
                    out.push_str("FILTER EXISTS ");
                    write_pattern(out, p);
                }
                other => {
                    out.push_str("FILTER (");
                    write_expr(out, other);
                    out.push_str(") ");
                }
            }
        }
        GraphPattern::Values(vars, rows) => {
            out.push_str("VALUES (");
            for v in vars {
                let _ = write!(out, "{v} ");
            }
            out.push_str(") { ");
            for row in rows {
                out.push('(');
                for cell in row {
                    match cell {
                        Some(t) => {
                            let _ = write!(out, "{t} ");
                        }
                        None => out.push_str("UNDEF "),
                    }
                }
                out.push_str(") ");
            }
            out.push_str("} ");
        }
        GraphPattern::SubSelect(q) => {
            out.push_str("{ ");
            write_select(out, q);
            out.push_str("} ");
        }
        GraphPattern::Bind(inner, e, v) => {
            write_pattern_inner(out, inner);
            out.push_str("BIND(");
            write_expr(out, e);
            let _ = write!(out, " AS {v}) ");
        }
        GraphPattern::Minus(a, b) => {
            write_pattern_inner(out, a);
            out.push_str("MINUS ");
            write_pattern(out, b);
        }
    }
}

fn write_expr(out: &mut String, e: &Expression) {
    use Expression::*;
    macro_rules! binop {
        ($a:expr, $op:literal, $b:expr) => {{
            out.push('(');
            write_expr(out, $a);
            out.push_str(concat!(" ", $op, " "));
            write_expr(out, $b);
            out.push(')');
        }};
    }
    match e {
        Var(v) => {
            let _ = write!(out, "{v}");
        }
        Term(t) => {
            let _ = write!(out, "{t}");
        }
        And(a, b) => binop!(a, "&&", b),
        Or(a, b) => binop!(a, "||", b),
        Not(a) => {
            out.push_str("!(");
            write_expr(out, a);
            out.push(')');
        }
        Eq(a, b) => binop!(a, "=", b),
        Ne(a, b) => binop!(a, "!=", b),
        Lt(a, b) => binop!(a, "<", b),
        Le(a, b) => binop!(a, "<=", b),
        Gt(a, b) => binop!(a, ">", b),
        Ge(a, b) => binop!(a, ">=", b),
        Add(a, b) => binop!(a, "+", b),
        Sub(a, b) => binop!(a, "-", b),
        Mul(a, b) => binop!(a, "*", b),
        Div(a, b) => binop!(a, "/", b),
        Bound(v) => {
            let _ = write!(out, "BOUND({v})");
        }
        IsIri(a) => {
            out.push_str("ISIRI(");
            write_expr(out, a);
            out.push(')');
        }
        IsLiteral(a) => {
            out.push_str("ISLITERAL(");
            write_expr(out, a);
            out.push(')');
        }
        IsBlank(a) => {
            out.push_str("ISBLANK(");
            write_expr(out, a);
            out.push(')');
        }
        Str(a) => {
            out.push_str("STR(");
            write_expr(out, a);
            out.push(')');
        }
        Lang(a) => {
            out.push_str("LANG(");
            write_expr(out, a);
            out.push(')');
        }
        Datatype(a) => {
            out.push_str("DATATYPE(");
            write_expr(out, a);
            out.push(')');
        }
        Regex(a, pat, flags) => {
            out.push_str("REGEX(");
            write_expr(out, a);
            let _ = write!(out, ", \"{}\"", lusail_rdf::term::escape_literal(pat));
            if !flags.is_empty() {
                let _ = write!(out, ", \"{flags}\"");
            }
            out.push(')');
        }
        Contains(a, b) => {
            out.push_str("CONTAINS(");
            write_expr(out, a);
            out.push_str(", ");
            write_expr(out, b);
            out.push(')');
        }
        StrStarts(a, b) => {
            out.push_str("STRSTARTS(");
            write_expr(out, a);
            out.push_str(", ");
            write_expr(out, b);
            out.push(')');
        }
        SameTerm(a, b) => {
            out.push_str("SAMETERM(");
            write_expr(out, a);
            out.push_str(", ");
            write_expr(out, b);
            out.push(')');
        }
        Exists(p) => {
            out.push_str("EXISTS ");
            write_pattern(out, p);
        }
        NotExists(p) => {
            out.push_str("NOT EXISTS ");
            write_pattern(out, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn roundtrip(q: &str) {
        let parsed = parse_query(q).unwrap_or_else(|e| panic!("parse {q}: {e}"));
        let text = serialize_query(&parsed);
        let reparsed = parse_query(&text).unwrap_or_else(|e| panic!("reparse {text}: {e}"));
        assert_eq!(parsed, reparsed, "roundtrip mismatch for:\n{q}\n→\n{text}");
    }

    #[test]
    fn roundtrip_select_forms() {
        roundtrip("SELECT ?x WHERE { ?x <http://e/p> ?y . }");
        roundtrip("SELECT DISTINCT ?x ?y WHERE { ?x <http://e/p> ?y . } LIMIT 3 OFFSET 1");
        roundtrip("SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }");
        roundtrip("SELECT (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s ?p ?o }");
    }

    #[test]
    fn roundtrip_patterns() {
        roundtrip("ASK { ?x <http://e/p> ?y }");
        roundtrip("SELECT * WHERE { { ?x a <http://e/A> } UNION { ?x a <http://e/B> } }");
        roundtrip("SELECT * WHERE { ?x <http://e/p> ?y OPTIONAL { ?y <http://e/q> ?z } }");
        roundtrip("SELECT * WHERE { ?x <http://e/p> ?y . VALUES (?x) { (<http://e/1>) (UNDEF) } }");
        roundtrip("SELECT ?x WHERE { ?x <http://e/v> ?v . FILTER((?v > 3) && (?v != 7)) }");
        roundtrip(
            "SELECT ?p WHERE { ?s <http://e/a> ?p . FILTER NOT EXISTS { SELECT ?p WHERE { ?p <http://e/b> ?c . } } } LIMIT 1",
        );
    }

    #[test]
    fn roundtrip_expressions() {
        roundtrip(
            r#"SELECT ?x WHERE { ?x <http://e/n> ?n . FILTER(REGEX(STR(?n), "^a.b", "i")) }"#,
        );
        roundtrip("SELECT ?x WHERE { ?x <http://e/n> ?n . FILTER(BOUND(?n) || ISIRI(?x)) }");
        roundtrip(
            r#"SELECT ?x WHERE { ?x <http://e/n> ?n . FILTER(CONTAINS(STR(?n), "q") && SAMETERM(?x, ?x)) }"#,
        );
        roundtrip("SELECT ?x WHERE { ?x <http://e/v> ?v . FILTER(((?v + 1) * 2) >= (?v / 2)) }");
    }

    #[test]
    fn roundtrip_aggregates_bind_minus() {
        roundtrip(
            "SELECT ?g (SUM(?x) AS ?s) (MIN(?x) AS ?m) WHERE { ?e <http://p/g> ?g . ?e <http://p/x> ?x } GROUP BY ?g",
        );
        roundtrip("SELECT (AVG(DISTINCT ?x) AS ?a) WHERE { ?e <http://p/x> ?x } GROUP BY ?e");
        roundtrip("SELECT ?x ?y WHERE { ?x <http://p/v> ?v . BIND((?v + 1) AS ?y) }");
        roundtrip("SELECT ?x WHERE { ?x <http://p/a> ?v MINUS { ?x <http://p/b> ?w } }");
    }

    #[test]
    fn roundtrip_order_by() {
        roundtrip("SELECT ?x WHERE { ?x ?p ?o } ORDER BY DESC(?x) LIMIT 2");
    }

    /// The shapes emitted by integrity paging: every projected variable as
    /// an ascending sort key, plus `LIMIT`/`OFFSET` page windows. A
    /// multi-key ordering must serialize as a single `ORDER BY` clause.
    #[test]
    fn roundtrip_paging_queries() {
        roundtrip("SELECT ?x ?y WHERE { ?x <http://e/p> ?y } ORDER BY ASC(?x) ASC(?y) LIMIT 64");
        roundtrip(
            "SELECT ?x ?y WHERE { ?x <http://e/p> ?y } ORDER BY ASC(?x) ASC(?y) LIMIT 64 OFFSET 128",
        );
        roundtrip(
            "SELECT ?a ?b ?c WHERE { ?a <http://e/p> ?b . ?b <http://e/q> ?c } ORDER BY ASC(?a) DESC(?b) ASC(?c) OFFSET 7",
        );
        roundtrip(
            "SELECT ?x ?y WHERE { ?x <http://e/p> ?y . VALUES (?x) { (<http://e/1>) (<http://e/2>) } } ORDER BY ASC(?x) ASC(?y) LIMIT 16 OFFSET 32",
        );
        // Bare-variable keys normalize to the explicit ASC form.
        let parsed = parse_query("SELECT ?x WHERE { ?x ?p ?o } ORDER BY ?x LIMIT 3").unwrap();
        let text = serialize_query(&parsed);
        assert!(text.contains("ORDER BY ASC(?x)"), "got: {text}");
        assert_eq!(parse_query(&text).unwrap(), parsed);
    }
}
