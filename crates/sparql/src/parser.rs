//! A recursive-descent parser for the SPARQL fragment Lusail uses.

use crate::ast::*;
use lusail_rdf::term::unescape_literal;
use lusail_rdf::{vocab, Literal, Term};

/// A SPARQL parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    /// Byte offset of the error in the query text.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SPARQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a SPARQL query string.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser {
        s: input,
        pos: 0,
        prefixes: Vec::new(),
    };
    let q = p.query()?;
    p.skip_trivia();
    if !p.rest().is_empty() {
        return p.err("trailing content after query");
    }
    Ok(q)
}

struct Parser<'a> {
    s: &'a str,
    pos: usize,
    prefixes: Vec<(String, String)>,
}

impl<'a> Parser<'a> {
    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_trivia(&mut self) {
        loop {
            let mut advanced = false;
            while let Some(c) = self.rest().chars().next() {
                if c.is_whitespace() {
                    self.pos += c.len_utf8();
                    advanced = true;
                } else {
                    break;
                }
            }
            if self.rest().starts_with('#') {
                let nl = self
                    .rest()
                    .find('\n')
                    .map(|i| i + 1)
                    .unwrap_or(self.rest().len());
                self.pos += nl;
                advanced = true;
            }
            if !advanced {
                break;
            }
        }
    }

    /// Try to consume a literal token (punctuation/operator).
    fn eat(&mut self, token: &str) -> bool {
        self.skip_trivia();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else {
            self.err(format!("expected {token:?}"))
        }
    }

    /// Try to consume a case-insensitive keyword (must be followed by a
    /// non-identifier character).
    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_trivia();
        let rest = self.rest();
        if rest.len() >= kw.len() && rest[..kw.len()].eq_ignore_ascii_case(kw) {
            let next = rest[kw.len()..].chars().next();
            if next.is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn peek_kw(&mut self, kw: &str) -> bool {
        let save = self.pos;
        let hit = self.eat_kw(kw);
        self.pos = save;
        hit
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}"))
        }
    }

    // ---- entry points -------------------------------------------------

    fn query(&mut self) -> Result<Query, ParseError> {
        loop {
            if self.eat_kw("PREFIX") {
                self.prefix_decl()?;
            } else if self.eat_kw("BASE") {
                return self.err("BASE is not supported");
            } else {
                break;
            }
        }
        self.skip_trivia();
        let form = if self.peek_kw("SELECT") {
            QueryForm::Select(self.select_query()?)
        } else if self.eat_kw("ASK") {
            // WHERE keyword optional for ASK
            self.eat_kw("WHERE");
            QueryForm::Ask(self.group_graph_pattern()?)
        } else {
            return self.err("expected SELECT or ASK");
        };
        Ok(Query {
            prefixes: std::mem::take(&mut self.prefixes),
            form,
        })
    }

    fn prefix_decl(&mut self) -> Result<(), ParseError> {
        self.skip_trivia();
        let rest = self.rest();
        let colon = match rest.find(':') {
            Some(i) => i,
            None => return self.err("expected ':' in PREFIX"),
        };
        let name = rest[..colon].trim().to_string();
        self.pos += colon + 1;
        self.skip_trivia();
        let iri = self.iri_ref()?;
        self.prefixes.push((name, iri));
        Ok(())
    }

    fn select_query(&mut self) -> Result<SelectQuery, ParseError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        self.eat_kw("REDUCED"); // treated as plain SELECT

        let projection = if self.eat("*") {
            Projection::All
        } else {
            // A mixed list of plain variables and (AGG(…) AS ?v) items.
            let mut vars: Vec<Variable> = Vec::new();
            let mut aggs: Vec<AggSpec> = Vec::new();
            loop {
                if let Some(v) = self.try_var()? {
                    vars.push(v);
                } else if self.peek_is('(') {
                    aggs.push(self.agg_item()?);
                } else {
                    break;
                }
            }
            if vars.is_empty() && aggs.is_empty() {
                return self.err("expected projection variables, '*', or (AGG(...) AS ?v)");
            }
            if aggs.is_empty() {
                Projection::Vars(vars)
            } else if vars.is_empty() && aggs.len() == 1 && aggs[0].func == AggFunc::Count {
                // Kept as the dedicated Count shape; re-classified as a
                // grouped aggregate below if a GROUP BY follows.
                Projection::Count {
                    inner: aggs[0].arg.clone(),
                    distinct: aggs[0].distinct,
                    as_var: aggs[0].as_var.clone(),
                }
            } else {
                Projection::Aggregate { keys: vars, aggs }
            }
        };

        self.eat_kw("WHERE");
        let pattern = self.group_graph_pattern()?;

        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            while let Some(v) = self.try_var()? {
                group_by.push(v);
            }
            if group_by.is_empty() {
                return self.err("expected GROUP BY keys");
            }
        }
        // A grouped COUNT is an aggregate projection after all.
        let projection = match projection {
            Projection::Count {
                inner,
                distinct,
                as_var,
            } if !group_by.is_empty() => Projection::Aggregate {
                keys: group_by.clone(),
                aggs: vec![AggSpec {
                    func: AggFunc::Count,
                    arg: inner,
                    distinct,
                    as_var,
                }],
            },
            other => other,
        };

        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                if self.eat_kw("ASC") {
                    self.expect("(")?;
                    let v = self.var()?;
                    self.expect(")")?;
                    order_by.push((v, true));
                } else if self.eat_kw("DESC") {
                    self.expect("(")?;
                    let v = self.var()?;
                    self.expect(")")?;
                    order_by.push((v, false));
                } else if let Some(v) = self.try_var()? {
                    order_by.push((v, true));
                } else {
                    break;
                }
            }
            if order_by.is_empty() {
                return self.err("expected ORDER BY keys");
            }
        }

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_kw("LIMIT") {
                limit = Some(self.integer()? as usize);
            } else if self.eat_kw("OFFSET") {
                offset = Some(self.integer()? as usize);
            } else {
                break;
            }
        }

        Ok(SelectQuery {
            distinct,
            projection,
            pattern,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    /// `(AGG([DISTINCT] * | ?v) AS ?out)`.
    fn agg_item(&mut self) -> Result<AggSpec, ParseError> {
        self.expect("(")?;
        let func = if self.eat_kw("COUNT") {
            AggFunc::Count
        } else if self.eat_kw("SUM") {
            AggFunc::Sum
        } else if self.eat_kw("AVG") {
            AggFunc::Avg
        } else if self.eat_kw("MIN") {
            AggFunc::Min
        } else if self.eat_kw("MAX") {
            AggFunc::Max
        } else {
            return self.err("expected an aggregate function (COUNT/SUM/AVG/MIN/MAX)");
        };
        self.expect("(")?;
        let distinct = self.eat_kw("DISTINCT");
        let arg = if self.eat("*") {
            if func != AggFunc::Count {
                return self.err("only COUNT accepts *");
            }
            None
        } else {
            Some(self.var()?)
        };
        self.expect(")")?;
        self.expect_kw("AS")?;
        let as_var = self.var()?;
        self.expect(")")?;
        Ok(AggSpec {
            func,
            arg,
            distinct,
            as_var,
        })
    }

    // ---- graph patterns ------------------------------------------------

    fn group_graph_pattern(&mut self) -> Result<GraphPattern, ParseError> {
        self.expect("{")?;
        // Sub-select?
        self.skip_trivia();
        if self.peek_kw("SELECT") {
            let sub = self.select_query()?;
            self.expect("}")?;
            return Ok(GraphPattern::SubSelect(Box::new(sub)));
        }
        let mut acc = GraphPattern::empty();
        loop {
            self.skip_trivia();
            if self.eat("}") {
                return Ok(acc);
            }
            if self.eat_kw("FILTER") {
                self.skip_trivia();
                if self.eat_kw("NOT") {
                    self.expect_kw("EXISTS")?;
                    let inner = self.group_graph_pattern()?;
                    acc =
                        GraphPattern::Filter(Box::new(acc), Expression::NotExists(Box::new(inner)));
                } else if self.eat_kw("EXISTS") {
                    let inner = self.group_graph_pattern()?;
                    acc = GraphPattern::Filter(Box::new(acc), Expression::Exists(Box::new(inner)));
                } else {
                    let expr = self.bracketted_or_builtin_expression()?;
                    acc = GraphPattern::Filter(Box::new(acc), expr);
                }
                self.eat(".");
            } else if self.eat_kw("OPTIONAL") {
                let inner = self.group_graph_pattern()?;
                acc = GraphPattern::LeftJoin(Box::new(acc), Box::new(inner));
                self.eat(".");
            } else if self.eat_kw("MINUS") {
                let inner = self.group_graph_pattern()?;
                acc = GraphPattern::Minus(Box::new(acc), Box::new(inner));
                self.eat(".");
            } else if self.eat_kw("BIND") {
                self.expect("(")?;
                let expr = self.expression()?;
                self.expect_kw("AS")?;
                let v = self.var()?;
                self.expect(")")?;
                acc = GraphPattern::Bind(Box::new(acc), expr, v);
                self.eat(".");
            } else if self.eat_kw("VALUES") {
                let values = self.values_clause()?;
                acc = acc.join(values);
                self.eat(".");
            } else if self.peek_is('{') {
                let mut branch = self.group_graph_pattern()?;
                while self.eat_kw("UNION") {
                    let right = self.group_graph_pattern()?;
                    branch = GraphPattern::Union(Box::new(branch), Box::new(right));
                }
                acc = acc.join(branch);
                self.eat(".");
            } else {
                let triples = self.triples_block()?;
                acc = acc.join(GraphPattern::Bgp(triples));
            }
        }
    }

    fn values_clause(&mut self) -> Result<GraphPattern, ParseError> {
        self.skip_trivia();
        if self.peek_is('(') {
            // VALUES (?a ?b) { (x y) (UNDEF z) ... }
            self.expect("(")?;
            let mut vars = Vec::new();
            while let Some(v) = self.try_var()? {
                vars.push(v);
            }
            self.expect(")")?;
            self.expect("{")?;
            let mut rows = Vec::new();
            loop {
                self.skip_trivia();
                if self.eat("}") {
                    break;
                }
                self.expect("(")?;
                let mut row = Vec::with_capacity(vars.len());
                for _ in 0..vars.len() {
                    self.skip_trivia();
                    if self.eat_kw("UNDEF") {
                        row.push(None);
                    } else {
                        row.push(Some(self.term()?));
                    }
                }
                self.expect(")")?;
                rows.push(row);
            }
            Ok(GraphPattern::Values(vars, rows))
        } else {
            // VALUES ?v { x y z }
            let v = self.var()?;
            self.expect("{")?;
            let mut rows = Vec::new();
            loop {
                self.skip_trivia();
                if self.eat("}") {
                    break;
                }
                if self.eat_kw("UNDEF") {
                    rows.push(vec![None]);
                } else {
                    rows.push(vec![Some(self.term()?)]);
                }
            }
            Ok(GraphPattern::Values(vec![v], rows))
        }
    }

    fn triples_block(&mut self) -> Result<Vec<TriplePattern>, ParseError> {
        let mut out = Vec::new();
        loop {
            let subject = self.term_pattern()?;
            loop {
                let predicate = if self.eat_kw("a") {
                    TermPattern::iri(vocab::rdf::TYPE)
                } else {
                    self.term_pattern()?
                };
                loop {
                    let object = self.term_pattern()?;
                    out.push(TriplePattern::new(
                        subject.clone(),
                        predicate.clone(),
                        object,
                    ));
                    if !self.eat(",") {
                        break;
                    }
                }
                if self.eat(";") {
                    self.skip_trivia();
                    // allow dangling ';' before '.' or '}'
                    if self.peek_is('.') || self.peek_is('}') {
                        break;
                    }
                    continue;
                }
                break;
            }
            if !self.eat(".") {
                break;
            }
            self.skip_trivia();
            // After '.', a new triples line may start unless a keyword or
            // '}' follows.
            if self.peek_is('}')
                || self.rest().is_empty()
                || self.peek_kw("FILTER")
                || self.peek_kw("OPTIONAL")
                || self.peek_kw("MINUS")
                || self.peek_kw("BIND")
                || self.peek_kw("VALUES")
                || self.peek_is('{')
            {
                break;
            }
        }
        Ok(out)
    }

    fn peek_is(&mut self, c: char) -> bool {
        self.skip_trivia();
        self.rest().starts_with(c)
    }

    // ---- expressions ---------------------------------------------------

    fn bracketted_or_builtin_expression(&mut self) -> Result<Expression, ParseError> {
        self.skip_trivia();
        if self.peek_is('(') {
            self.expect("(")?;
            let e = self.expression()?;
            self.expect(")")?;
            Ok(e)
        } else {
            // FILTER regex(...), FILTER bound(?x), etc.
            self.unary_expression()
        }
    }

    fn expression(&mut self) -> Result<Expression, ParseError> {
        self.or_expression()
    }

    fn or_expression(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.and_expression()?;
        while self.eat("||") {
            let right = self.and_expression()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expression(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.relational_expression()?;
        while self.eat("&&") {
            let right = self.relational_expression()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn relational_expression(&mut self) -> Result<Expression, ParseError> {
        let left = self.additive_expression()?;
        // Order matters: multi-char operators first.
        let make = |ctor: fn(Box<Expression>, Box<Expression>) -> Expression,
                    l: Expression,
                    r: Expression| ctor(Box::new(l), Box::new(r));
        if self.eat("!=") {
            let r = self.additive_expression()?;
            return Ok(make(Expression::Ne, left, r));
        }
        if self.eat("<=") {
            let r = self.additive_expression()?;
            return Ok(make(Expression::Le, left, r));
        }
        if self.eat(">=") {
            let r = self.additive_expression()?;
            return Ok(make(Expression::Ge, left, r));
        }
        if self.eat("=") {
            let r = self.additive_expression()?;
            return Ok(make(Expression::Eq, left, r));
        }
        // '<' must not swallow an IRI '<http://...>'
        self.skip_trivia();
        if self.rest().starts_with('<') && !looks_like_iri(self.rest()) {
            self.pos += 1;
            let r = self.additive_expression()?;
            return Ok(make(Expression::Lt, left, r));
        }
        if self.rest().starts_with('>') {
            self.pos += 1;
            let r = self.additive_expression()?;
            return Ok(make(Expression::Gt, left, r));
        }
        Ok(left)
    }

    fn additive_expression(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.multiplicative_expression()?;
        loop {
            if self.eat("+") {
                let r = self.multiplicative_expression()?;
                left = Expression::Add(Box::new(left), Box::new(r));
            } else if self.eat("-") {
                let r = self.multiplicative_expression()?;
                left = Expression::Sub(Box::new(left), Box::new(r));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn multiplicative_expression(&mut self) -> Result<Expression, ParseError> {
        let mut left = self.unary_expression()?;
        loop {
            if self.eat("*") {
                let r = self.unary_expression()?;
                left = Expression::Mul(Box::new(left), Box::new(r));
            } else if self.eat("/") {
                let r = self.unary_expression()?;
                left = Expression::Div(Box::new(left), Box::new(r));
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn unary_expression(&mut self) -> Result<Expression, ParseError> {
        self.skip_trivia();
        if self.eat("!") {
            let inner = self.unary_expression()?;
            return Ok(Expression::Not(Box::new(inner)));
        }
        if self.eat("(") {
            let e = self.expression()?;
            self.expect(")")?;
            return Ok(e);
        }
        // Built-in calls
        if self.eat_kw("BOUND") {
            self.expect("(")?;
            let v = self.var()?;
            self.expect(")")?;
            return Ok(Expression::Bound(v));
        }
        if self.eat_kw("NOT") {
            self.expect_kw("EXISTS")?;
            let p = self.group_graph_pattern()?;
            return Ok(Expression::NotExists(Box::new(p)));
        }
        if self.eat_kw("EXISTS") {
            let p = self.group_graph_pattern()?;
            return Ok(Expression::Exists(Box::new(p)));
        }
        macro_rules! unary_builtin {
            ($kw:literal, $ctor:path) => {
                if self.eat_kw($kw) {
                    self.expect("(")?;
                    let e = self.expression()?;
                    self.expect(")")?;
                    return Ok($ctor(Box::new(e)));
                }
            };
        }
        unary_builtin!("ISIRI", Expression::IsIri);
        unary_builtin!("ISURI", Expression::IsIri);
        unary_builtin!("ISLITERAL", Expression::IsLiteral);
        unary_builtin!("ISBLANK", Expression::IsBlank);
        unary_builtin!("STR", Expression::Str);
        unary_builtin!("LANG", Expression::Lang);
        unary_builtin!("DATATYPE", Expression::Datatype);
        if self.eat_kw("REGEX") {
            self.expect("(")?;
            let text = self.expression()?;
            self.expect(",")?;
            let pattern = self.string_literal()?;
            let flags = if self.eat(",") {
                self.string_literal()?
            } else {
                String::new()
            };
            self.expect(")")?;
            return Ok(Expression::Regex(Box::new(text), pattern, flags));
        }
        if self.eat_kw("CONTAINS") {
            self.expect("(")?;
            let a = self.expression()?;
            self.expect(",")?;
            let b = self.expression()?;
            self.expect(")")?;
            return Ok(Expression::Contains(Box::new(a), Box::new(b)));
        }
        if self.eat_kw("STRSTARTS") {
            self.expect("(")?;
            let a = self.expression()?;
            self.expect(",")?;
            let b = self.expression()?;
            self.expect(")")?;
            return Ok(Expression::StrStarts(Box::new(a), Box::new(b)));
        }
        if self.eat_kw("SAMETERM") {
            self.expect("(")?;
            let a = self.expression()?;
            self.expect(",")?;
            let b = self.expression()?;
            self.expect(")")?;
            return Ok(Expression::SameTerm(Box::new(a), Box::new(b)));
        }
        if let Some(v) = self.try_var()? {
            return Ok(Expression::Var(v));
        }
        let t = self.term()?;
        Ok(Expression::Term(t))
    }

    fn string_literal(&mut self) -> Result<String, ParseError> {
        self.skip_trivia();
        match self.term()? {
            Term::Literal(l) => Ok(l.lexical),
            other => self.err(format!("expected a string literal, found {other}")),
        }
    }

    // ---- terms -----------------------------------------------------------

    fn try_var(&mut self) -> Result<Option<Variable>, ParseError> {
        self.skip_trivia();
        let rest = self.rest();
        if rest.starts_with('?') || rest.starts_with('$') {
            let body = &rest[1..];
            let len = body
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
                .map(|(i, _)| i)
                .unwrap_or(body.len());
            if len == 0 {
                return self.err("empty variable name");
            }
            let name = body[..len].to_string();
            self.pos += 1 + len;
            Ok(Some(Variable::new(name)))
        } else {
            Ok(None)
        }
    }

    fn var(&mut self) -> Result<Variable, ParseError> {
        match self.try_var()? {
            Some(v) => Ok(v),
            None => self.err("expected a variable"),
        }
    }

    fn term_pattern(&mut self) -> Result<TermPattern, ParseError> {
        if let Some(v) = self.try_var()? {
            return Ok(TermPattern::Var(v));
        }
        Ok(TermPattern::Term(self.term()?))
    }

    fn iri_ref(&mut self) -> Result<String, ParseError> {
        self.skip_trivia();
        if !self.eat("<") {
            return self.err("expected '<'");
        }
        let rest = self.rest();
        let end = match rest.find('>') {
            Some(i) => i,
            None => return self.err("unterminated IRI"),
        };
        let iri = rest[..end].to_string();
        self.pos += end + 1;
        Ok(iri)
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        self.skip_trivia();
        let rest = self.rest();
        if rest.starts_with('<') {
            return Ok(Term::iri(self.iri_ref()?));
        }
        if let Some(body) = rest.strip_prefix("_:") {
            let len = body
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-'))
                .map(|(i, _)| i)
                .unwrap_or(body.len());
            if len == 0 {
                return self.err("empty blank node label");
            }
            let label = body[..len].to_string();
            self.pos += 2 + len;
            return Ok(Term::bnode(label));
        }
        if rest.starts_with('"') {
            return self.literal_term();
        }
        if self.eat_kw("true") {
            return Ok(Term::Literal(Literal::typed("true", vocab::xsd::BOOLEAN)));
        }
        if self.eat_kw("false") {
            return Ok(Term::Literal(Literal::typed("false", vocab::xsd::BOOLEAN)));
        }
        if rest.starts_with(|c: char| c.is_ascii_digit())
            || (rest.starts_with('-') && rest[1..].starts_with(|c: char| c.is_ascii_digit()))
        {
            return self.number_term();
        }
        self.prefixed_name()
    }

    fn number_term(&mut self) -> Result<Term, ParseError> {
        let rest = self.rest();
        let mut len = 0;
        let mut has_dot = false;
        for (i, c) in rest.char_indices() {
            if c.is_ascii_digit() || (i == 0 && c == '-') {
                len = i + c.len_utf8();
            } else if c == '.'
                && !has_dot
                && rest[i + 1..].starts_with(|d: char| d.is_ascii_digit())
            {
                has_dot = true;
                len = i + 1;
            } else {
                break;
            }
        }
        let text = &rest[..len];
        self.pos += len;
        if has_dot {
            Ok(Term::Literal(Literal::typed(text, vocab::xsd::DECIMAL)))
        } else {
            Ok(Term::Literal(Literal::typed(text, vocab::xsd::INTEGER)))
        }
    }

    fn integer(&mut self) -> Result<i64, ParseError> {
        self.skip_trivia();
        match self.number_term()? {
            Term::Literal(l) => match l.as_i64() {
                Some(i) => Ok(i),
                None => self.err("expected an integer"),
            },
            _ => unreachable!(),
        }
    }

    fn literal_term(&mut self) -> Result<Term, ParseError> {
        // rest() starts with '"'
        let body = &self.rest()[1..];
        let mut end = None;
        let mut escaped = false;
        for (i, c) in body.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = match end {
            Some(e) => e,
            None => return self.err("unterminated literal"),
        };
        let lexical = unescape_literal(&body[..end]);
        self.pos += 1 + end + 1;
        if self.rest().starts_with("^^") {
            self.pos += 2;
            let dt = if self.rest().starts_with('<') {
                self.iri_ref()?
            } else {
                match self.prefixed_name()? {
                    Term::Iri(iri) => iri,
                    _ => return self.err("datatype must be an IRI"),
                }
            };
            return Ok(Term::Literal(Literal::typed(lexical, dt)));
        }
        if self.rest().starts_with('@') {
            self.pos += 1;
            let rest = self.rest();
            let len = rest
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-'))
                .map(|(i, _)| i)
                .unwrap_or(rest.len());
            if len == 0 {
                return self.err("empty language tag");
            }
            let lang = rest[..len].to_string();
            self.pos += len;
            return Ok(Term::Literal(Literal::lang(lexical, lang)));
        }
        Ok(Term::Literal(Literal::plain(lexical)))
    }

    fn prefixed_name(&mut self) -> Result<Term, ParseError> {
        self.skip_trivia();
        let rest = self.rest();
        let len = rest
            .char_indices()
            .find(|(_, c)| {
                !(c.is_ascii_alphanumeric() || *c == '_' || *c == '-' || *c == ':' || *c == '.')
            })
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        // A trailing '.' is the statement terminator, not part of the name.
        let name = rest[..len].trim_end_matches('.');
        let colon = match name.find(':') {
            Some(i) => i,
            None => {
                return self.err(format!(
                    "expected a term, found {:?}",
                    rest.chars().take(12).collect::<String>()
                ))
            }
        };
        let (prefix, local) = (&name[..colon], &name[colon + 1..]);
        let ns = match self.prefixes.iter().find(|(p, _)| p == prefix) {
            Some((_, ns)) => ns.clone(),
            None => return self.err(format!("undeclared prefix {prefix:?}")),
        };
        self.pos += name.len();
        Ok(Term::iri(format!("{ns}{local}")))
    }
}

/// Heuristic: does this `<`-prefixed text look like an IRI rather than a
/// less-than operator? IRIs contain no spaces before the closing `>`.
fn looks_like_iri(s: &str) -> bool {
    debug_assert!(s.starts_with('<'));
    match s.find('>') {
        Some(close) => !s[1..close].contains(char::is_whitespace),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_qa_from_the_paper() {
        // Figure 2 of the paper.
        let q = parse_query(
            r#"
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?S ?P ?U ?A WHERE {
  ?S ub:advisor ?P .
  ?P ub:teacherOf ?C .
  ?S ub:takesCourse ?C .
  ?P ub:PhDDegreeFrom ?U .
  ?S rdf:type ub:GraduateStudent .
  ?P rdf:type ub:AssociateProfessor .
  ?C rdf:type ub:GraduateCourse .
  ?U ub:address ?A .
}"#,
        )
        .unwrap();
        let sel = q.as_select().unwrap();
        assert_eq!(sel.projected_variables().len(), 4);
        assert_eq!(q.all_triple_patterns().len(), 8);
    }

    #[test]
    fn parse_check_query_figure5() {
        // The locality check query shape from Figure 5.
        let q = parse_query(
            r#"
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?P WHERE {
  ?P rdf:type ub:AssociateProfessor .
  ?S ub:advisor ?P .
  FILTER NOT EXISTS { SELECT ?P WHERE { ?P ub:teacherOf ?C . } }
} LIMIT 1"#,
        )
        .unwrap();
        let sel = q.as_select().unwrap();
        assert_eq!(sel.limit, Some(1));
        match &sel.pattern {
            GraphPattern::Filter(_, Expression::NotExists(inner)) => match inner.as_ref() {
                GraphPattern::SubSelect(_) => {}
                other => panic!("expected subselect, got {other:?}"),
            },
            other => panic!("expected filter-not-exists, got {other:?}"),
        }
    }

    #[test]
    fn parse_ask() {
        let q = parse_query("ASK { ?s <http://x/p> ?o }").unwrap();
        assert!(matches!(q.form, QueryForm::Ask(_)));
        assert_eq!(q.all_triple_patterns().len(), 1);
    }

    #[test]
    fn parse_shortcuts_semicolon_comma() {
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT * WHERE { ?s a e:T ; e:p ?o , ?o2 . ?o e:q ?z . }",
        )
        .unwrap();
        assert_eq!(q.all_triple_patterns().len(), 4);
    }

    #[test]
    fn parse_optional_union_filter() {
        let q = parse_query(
            r#"PREFIX e: <http://e/>
SELECT ?s ?n WHERE {
  { ?s a e:A } UNION { ?s a e:B }
  OPTIONAL { ?s e:name ?n . }
  FILTER (?s != e:bad && BOUND(?n))
}"#,
        )
        .unwrap();
        let pat = q.pattern();
        assert!(matches!(pat, GraphPattern::Filter(..)));
        assert_eq!(q.all_triple_patterns().len(), 3);
    }

    #[test]
    fn parse_values_single_and_row_forms() {
        let q = parse_query(
            "PREFIX e: <http://e/> SELECT * WHERE { ?s e:p ?o . VALUES ?s { e:a e:b } }",
        )
        .unwrap();
        let tps = q.all_triple_patterns();
        assert_eq!(tps.len(), 1);
        let q2 = parse_query(
            "PREFIX e: <http://e/> SELECT * WHERE { VALUES (?a ?b) { (e:x 1) (UNDEF \"s\") } }",
        )
        .unwrap();
        match q2.pattern() {
            GraphPattern::Values(vars, rows) => {
                assert_eq!(vars.len(), 2);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][0], None);
            }
            other => panic!("expected VALUES, got {other:?}"),
        }
    }

    #[test]
    fn parse_count_aggregate() {
        let q = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }").unwrap();
        match &q.as_select().unwrap().projection {
            Projection::Count {
                inner: None,
                distinct: false,
                as_var,
            } => {
                assert_eq!(as_var.name(), "c");
            }
            other => panic!("bad projection {other:?}"),
        }
        let q = parse_query("SELECT (COUNT(DISTINCT ?s) AS ?c) WHERE { ?s ?p ?o }").unwrap();
        match &q.as_select().unwrap().projection {
            Projection::Count {
                inner: Some(v),
                distinct: true,
                ..
            } => {
                assert_eq!(v.name(), "s");
            }
            other => panic!("bad projection {other:?}"),
        }
    }

    #[test]
    fn parse_filters_with_comparisons() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x <http://e/v> ?v . FILTER(?v > 3 && ?v <= 10 || ?v = 42) }",
        )
        .unwrap();
        assert!(matches!(q.pattern(), GraphPattern::Filter(..)));
    }

    #[test]
    fn parse_filter_regex_contains() {
        let q = parse_query(
            r#"SELECT ?x WHERE { ?x <http://e/n> ?n . FILTER regex(STR(?n), "^Ab", "i") FILTER CONTAINS(?n, "x") }"#,
        )
        .unwrap();
        assert!(matches!(q.pattern(), GraphPattern::Filter(..)));
    }

    #[test]
    fn parse_order_limit_offset() {
        let q = parse_query(
            "SELECT ?x WHERE { ?x a <http://e/T> } ORDER BY DESC(?x) LIMIT 10 OFFSET 5",
        )
        .unwrap();
        let s = q.as_select().unwrap();
        assert_eq!(s.order_by, vec![(Variable::new("x"), false)]);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(5));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_query("SELECT WHERE").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x <p> ?y } trailing").is_err());
        assert!(parse_query("SELECT ?x WHERE { nope:x <http://p> ?y }").is_err());
    }

    #[test]
    fn iri_vs_less_than() {
        let q = parse_query("SELECT ?x WHERE { ?x <http://e/v> ?v . FILTER(?v < 5) }").unwrap();
        assert!(matches!(
            q.pattern(),
            GraphPattern::Filter(_, Expression::Lt(..))
        ));
    }

    #[test]
    fn parse_group_by_aggregates() {
        let q = parse_query(
            "SELECT ?g (SUM(?x) AS ?s) (COUNT(*) AS ?c) WHERE { ?e <http://p/g> ?g . ?e <http://p/x> ?x } GROUP BY ?g",
        )
        .unwrap();
        let sel = q.as_select().unwrap();
        assert_eq!(sel.group_by, vec![Variable::new("g")]);
        match &sel.projection {
            Projection::Aggregate { keys, aggs } => {
                assert_eq!(keys, &[Variable::new("g")]);
                assert_eq!(aggs.len(), 2);
                assert_eq!(aggs[0].func, AggFunc::Sum);
                assert_eq!(aggs[1].func, AggFunc::Count);
                assert_eq!(aggs[1].arg, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn grouped_count_reclassifies() {
        let q = parse_query("SELECT (COUNT(?x) AS ?c) WHERE { ?e <http://p/x> ?x } GROUP BY ?e")
            .unwrap();
        assert!(matches!(
            q.as_select().unwrap().projection,
            Projection::Aggregate { .. }
        ));
        // Ungrouped COUNT keeps the dedicated shape.
        let q = parse_query("SELECT (COUNT(?x) AS ?c) WHERE { ?e <http://p/x> ?x }").unwrap();
        assert!(matches!(
            q.as_select().unwrap().projection,
            Projection::Count { .. }
        ));
    }

    #[test]
    fn parse_bind_and_minus() {
        let q = parse_query(
            "SELECT ?x ?y WHERE { ?x <http://p/v> ?v . BIND(?v + 1 AS ?y) MINUS { ?x <http://p/bad> ?z } }",
        )
        .unwrap();
        match q.pattern() {
            GraphPattern::Minus(inner, _) => {
                assert!(matches!(inner.as_ref(), GraphPattern::Bind(..)));
            }
            other => panic!("{other:?}"),
        }
        // MINUS binds nothing: scope comes from the left side plus BIND.
        let vars = q.pattern().in_scope_variables();
        assert!(vars.contains(&Variable::new("y")));
        assert!(!vars.contains(&Variable::new("z")));
    }

    #[test]
    fn star_only_for_count() {
        assert!(parse_query("SELECT (SUM(*) AS ?s) WHERE { ?a ?b ?c }").is_err());
    }

    #[test]
    fn parse_distinct() {
        let q = parse_query("SELECT DISTINCT ?x WHERE { ?x ?p ?o }").unwrap();
        assert!(q.as_select().unwrap().distinct);
    }
}
