//! The SPARQL abstract syntax tree / algebra.

use lusail_rdf::Term;
use std::fmt;

/// A SPARQL variable. Stored without the leading `?`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub String);

impl Variable {
    /// Construct a variable from its bare name (`"x"`, not `"?x"`).
    pub fn new(name: impl Into<String>) -> Self {
        Variable(name.into())
    }

    /// The bare name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl From<&str> for Variable {
    fn from(s: &str) -> Self {
        Variable::new(s)
    }
}

/// A subject/predicate/object slot in a triple pattern: either a variable or
/// a concrete term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermPattern {
    Var(Variable),
    Term(Term),
}

impl TermPattern {
    /// Shorthand for a variable slot.
    pub fn var(name: impl Into<String>) -> Self {
        TermPattern::Var(Variable::new(name))
    }

    /// Shorthand for an IRI slot.
    pub fn iri(iri: impl Into<String>) -> Self {
        TermPattern::Term(Term::iri(iri))
    }

    /// The variable, if this slot is one.
    pub fn as_var(&self) -> Option<&Variable> {
        match self {
            TermPattern::Var(v) => Some(v),
            TermPattern::Term(_) => None,
        }
    }

    /// The concrete term, if this slot is one.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            TermPattern::Var(_) => None,
            TermPattern::Term(t) => Some(t),
        }
    }

    /// True when the slot is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, TermPattern::Var(_))
    }
}

impl fmt::Display for TermPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TermPattern::Var(v) => write!(f, "{v}"),
            TermPattern::Term(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    pub subject: TermPattern,
    pub predicate: TermPattern,
    pub object: TermPattern,
}

impl TriplePattern {
    pub fn new(subject: TermPattern, predicate: TermPattern, object: TermPattern) -> Self {
        TriplePattern {
            subject,
            predicate,
            object,
        }
    }

    /// All variables in this pattern, in S,P,O order, deduplicated.
    pub fn variables(&self) -> Vec<&Variable> {
        let mut out: Vec<&Variable> = Vec::with_capacity(3);
        for slot in [&self.subject, &self.predicate, &self.object] {
            if let TermPattern::Var(v) = slot {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// True when `v` occurs in this pattern.
    pub fn mentions(&self, v: &Variable) -> bool {
        self.variables().contains(&v)
    }

    /// True when `v` is the subject slot.
    pub fn subject_is(&self, v: &Variable) -> bool {
        self.subject.as_var() == Some(v)
    }

    /// True when `v` is the object slot.
    pub fn object_is(&self, v: &Variable) -> bool {
        self.object.as_var() == Some(v)
    }

    /// Number of variable slots (0–3); a rough selectivity proxy.
    pub fn free_slots(&self) -> usize {
        [&self.subject, &self.predicate, &self.object]
            .iter()
            .filter(|s| s.is_var())
            .count()
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

/// A SPARQL expression (the `FILTER` language).
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    Var(Variable),
    Term(Term),
    And(Box<Expression>, Box<Expression>),
    Or(Box<Expression>, Box<Expression>),
    Not(Box<Expression>),
    Eq(Box<Expression>, Box<Expression>),
    Ne(Box<Expression>, Box<Expression>),
    Lt(Box<Expression>, Box<Expression>),
    Le(Box<Expression>, Box<Expression>),
    Gt(Box<Expression>, Box<Expression>),
    Ge(Box<Expression>, Box<Expression>),
    Add(Box<Expression>, Box<Expression>),
    Sub(Box<Expression>, Box<Expression>),
    Mul(Box<Expression>, Box<Expression>),
    Div(Box<Expression>, Box<Expression>),
    /// `BOUND(?v)`
    Bound(Variable),
    IsIri(Box<Expression>),
    IsLiteral(Box<Expression>),
    IsBlank(Box<Expression>),
    /// `STR(e)` — the lexical form / IRI string.
    Str(Box<Expression>),
    /// `LANG(e)` — the language tag or `""`.
    Lang(Box<Expression>),
    /// `DATATYPE(e)`.
    Datatype(Box<Expression>),
    /// `REGEX(text, pattern [, flags])`. We support a practical subset of
    /// regex syntax (see `lusail-store`'s evaluator).
    Regex(Box<Expression>, String, String),
    /// `CONTAINS(text, needle)`.
    Contains(Box<Expression>, Box<Expression>),
    /// `STRSTARTS(text, prefix)`.
    StrStarts(Box<Expression>, Box<Expression>),
    /// `SAMETERM(a, b)`.
    SameTerm(Box<Expression>, Box<Expression>),
    /// `EXISTS { … }`.
    Exists(Box<GraphPattern>),
    /// `NOT EXISTS { … }` — the core of Lusail's locality check queries.
    NotExists(Box<GraphPattern>),
}

impl Expression {
    /// All variables mentioned by the expression (excluding those scoped
    /// inside `EXISTS` patterns, which are correlated at evaluation time).
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut Vec<Variable>) {
        use Expression::*;
        match self {
            Var(v) | Bound(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Term(_) => {}
            And(a, b)
            | Or(a, b)
            | Eq(a, b)
            | Ne(a, b)
            | Lt(a, b)
            | Le(a, b)
            | Gt(a, b)
            | Ge(a, b)
            | Add(a, b)
            | Sub(a, b)
            | Mul(a, b)
            | Div(a, b)
            | Contains(a, b)
            | StrStarts(a, b)
            | SameTerm(a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Not(a) | IsIri(a) | IsLiteral(a) | IsBlank(a) | Str(a) | Lang(a) | Datatype(a) => {
                a.collect_variables(out)
            }
            Regex(a, _, _) => a.collect_variables(out),
            Exists(_) | NotExists(_) => {}
        }
    }
}

/// A graph pattern (the body of a `WHERE` clause).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphPattern {
    /// A basic graph pattern: a conjunction of triple patterns.
    Bgp(Vec<TriplePattern>),
    /// Sequential conjunction of two patterns.
    Join(Box<GraphPattern>, Box<GraphPattern>),
    /// `left OPTIONAL { right }`.
    LeftJoin(Box<GraphPattern>, Box<GraphPattern>),
    /// `{ left } UNION { right }`.
    Union(Box<GraphPattern>, Box<GraphPattern>),
    /// `pattern FILTER(expr)`.
    Filter(Box<GraphPattern>, Expression),
    /// Inline data: `VALUES (?a ?b) { (x y) … }`. `None` entries are `UNDEF`.
    Values(Vec<Variable>, Vec<Vec<Option<Term>>>),
    /// `BIND(expr AS ?v)`: extend every solution with a computed value.
    Bind(Box<GraphPattern>, Expression, Variable),
    /// `left MINUS { right }` (SPARQL 1.1 set difference).
    Minus(Box<GraphPattern>, Box<GraphPattern>),
    /// A nested `{ SELECT … }` subquery.
    SubSelect(Box<SelectQuery>),
}

impl GraphPattern {
    /// An empty BGP (the unit pattern).
    pub fn empty() -> Self {
        GraphPattern::Bgp(Vec::new())
    }

    /// All triple patterns anywhere in this pattern tree (including inside
    /// OPTIONAL / UNION arms, excluding EXISTS filters and subselects).
    pub fn all_triple_patterns(&self) -> Vec<&TriplePattern> {
        let mut out = Vec::new();
        self.collect_tps(&mut out);
        out
    }

    fn collect_tps<'a>(&'a self, out: &mut Vec<&'a TriplePattern>) {
        match self {
            GraphPattern::Bgp(tps) => out.extend(tps.iter()),
            GraphPattern::Join(a, b) | GraphPattern::LeftJoin(a, b) | GraphPattern::Union(a, b) => {
                a.collect_tps(out);
                b.collect_tps(out);
            }
            GraphPattern::Filter(p, _) | GraphPattern::Bind(p, _, _) => p.collect_tps(out),
            GraphPattern::Minus(a, b) => {
                a.collect_tps(out);
                b.collect_tps(out);
            }
            GraphPattern::Values(..) | GraphPattern::SubSelect(_) => {}
        }
    }

    /// All variables that can be bound by this pattern (its in-scope
    /// variables), in first-occurrence order.
    pub fn in_scope_variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        self.collect_scope(&mut out);
        out
    }

    fn collect_scope(&self, out: &mut Vec<Variable>) {
        let push = |v: &Variable, out: &mut Vec<Variable>| {
            if !out.contains(v) {
                out.push(v.clone());
            }
        };
        match self {
            GraphPattern::Bgp(tps) => {
                for tp in tps {
                    for v in tp.variables() {
                        push(v, out);
                    }
                }
            }
            GraphPattern::Join(a, b) | GraphPattern::LeftJoin(a, b) | GraphPattern::Union(a, b) => {
                a.collect_scope(out);
                b.collect_scope(out);
            }
            GraphPattern::Filter(p, _) => p.collect_scope(out),
            GraphPattern::Bind(p, _, v) => {
                p.collect_scope(out);
                push(v, out);
            }
            // MINUS binds nothing from its right side.
            GraphPattern::Minus(a, _) => a.collect_scope(out),
            GraphPattern::Values(vars, _) => {
                for v in vars {
                    push(v, out);
                }
            }
            GraphPattern::SubSelect(q) => {
                for v in q.projected_variables() {
                    push(&v, out);
                }
            }
        }
    }

    /// Conjoin two patterns, flattening BGPs where possible.
    pub fn join(self, other: GraphPattern) -> GraphPattern {
        match (self, other) {
            (GraphPattern::Bgp(mut a), GraphPattern::Bgp(b)) => {
                a.extend(b);
                GraphPattern::Bgp(a)
            }
            (GraphPattern::Bgp(a), other) if a.is_empty() => other,
            (this, GraphPattern::Bgp(b)) if b.is_empty() => this,
            (a, b) => GraphPattern::Join(Box::new(a), Box::new(b)),
        }
    }
}

/// An aggregate function (SPARQL 1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// The SPARQL keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One `(AGG(?x) AS ?v)` item in a projection.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    pub func: AggFunc,
    /// The aggregated variable; `None` is `COUNT(*)`.
    pub arg: Option<Variable>,
    pub distinct: bool,
    pub as_var: Variable,
}

/// What a `SELECT` projects.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `SELECT *`.
    All,
    /// `SELECT ?a ?b …`.
    Vars(Vec<Variable>),
    /// `SELECT (COUNT(*) AS ?v)` or `SELECT (COUNT(?x) AS ?v)` — the
    /// whole-result count, kept separate from [`Projection::Aggregate`]
    /// because it is the shape Lusail's cardinality probes use.
    Count {
        inner: Option<Variable>,
        distinct: bool,
        as_var: Variable,
    },
    /// Grouped aggregation: `SELECT ?k1 … (AGG(?x) AS ?v) … WHERE { … }
    /// GROUP BY ?k1 …`. `keys` are the projected group keys (must appear
    /// in the query's `group_by`).
    Aggregate {
        keys: Vec<Variable>,
        aggs: Vec<AggSpec>,
    },
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    pub distinct: bool,
    pub projection: Projection,
    pub pattern: GraphPattern,
    /// `GROUP BY` keys (empty for ungrouped queries).
    pub group_by: Vec<Variable>,
    /// `ORDER BY` keys: (variable, ascending).
    pub order_by: Vec<(Variable, bool)>,
    pub limit: Option<usize>,
    pub offset: Option<usize>,
}

impl SelectQuery {
    /// A plain `SELECT <vars> WHERE { pattern }`.
    pub fn new(projection: Projection, pattern: GraphPattern) -> Self {
        SelectQuery {
            distinct: false,
            projection,
            pattern,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// The variables this query outputs. For `*`, the pattern's in-scope
    /// variables; for an aggregate, the `AS` variable.
    pub fn projected_variables(&self) -> Vec<Variable> {
        match &self.projection {
            Projection::All => self.pattern.in_scope_variables(),
            Projection::Vars(vs) => vs.clone(),
            Projection::Count { as_var, .. } => vec![as_var.clone()],
            Projection::Aggregate { keys, aggs } => {
                let mut out = keys.clone();
                out.extend(aggs.iter().map(|a| a.as_var.clone()));
                out
            }
        }
    }
}

/// The query form.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    Select(SelectQuery),
    /// `ASK WHERE { … }`.
    Ask(GraphPattern),
}

/// A parsed SPARQL query: prefix declarations plus a form.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `(prefix, namespace)` pairs, kept for serialization fidelity.
    pub prefixes: Vec<(String, String)>,
    pub form: QueryForm,
}

impl Query {
    /// Wrap a `SELECT` query with no prefixes.
    pub fn select(q: SelectQuery) -> Self {
        Query {
            prefixes: Vec::new(),
            form: QueryForm::Select(q),
        }
    }

    /// Wrap an `ASK` pattern with no prefixes.
    pub fn ask(pattern: GraphPattern) -> Self {
        Query {
            prefixes: Vec::new(),
            form: QueryForm::Ask(pattern),
        }
    }

    /// The `SELECT` body, if this is a select query.
    pub fn as_select(&self) -> Option<&SelectQuery> {
        match &self.form {
            QueryForm::Select(s) => Some(s),
            QueryForm::Ask(_) => None,
        }
    }

    /// The query's graph pattern (either form).
    pub fn pattern(&self) -> &GraphPattern {
        match &self.form {
            QueryForm::Select(s) => &s.pattern,
            QueryForm::Ask(p) => p,
        }
    }

    /// All triple patterns in the query's pattern tree.
    pub fn all_triple_patterns(&self) -> Vec<&TriplePattern> {
        self.pattern().all_triple_patterns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let slot = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::var(v)
            } else {
                TermPattern::iri(x)
            }
        };
        TriplePattern::new(slot(s), slot(p), slot(o))
    }

    #[test]
    fn triple_pattern_variables() {
        let t = tp("?s", "http://p", "?s");
        assert_eq!(t.variables().len(), 1);
        assert_eq!(t.free_slots(), 2);
        assert!(t.subject_is(&Variable::new("s")));
        assert!(t.object_is(&Variable::new("s")));
    }

    #[test]
    fn bgp_flattening_join() {
        let a = GraphPattern::Bgp(vec![tp("?s", "http://p", "?o")]);
        let b = GraphPattern::Bgp(vec![tp("?o", "http://q", "?z")]);
        let j = a.join(b);
        match &j {
            GraphPattern::Bgp(tps) => assert_eq!(tps.len(), 2),
            other => panic!("expected flattened BGP, got {other:?}"),
        }
        assert_eq!(j.in_scope_variables().len(), 3);
    }

    #[test]
    fn scope_of_union_and_optional() {
        let a = GraphPattern::Bgp(vec![tp("?s", "http://p", "?o")]);
        let b = GraphPattern::Bgp(vec![tp("?s", "http://q", "?z")]);
        let u = GraphPattern::Union(Box::new(a.clone()), Box::new(b.clone()));
        assert_eq!(u.in_scope_variables().len(), 3);
        let l = GraphPattern::LeftJoin(Box::new(a), Box::new(b));
        assert_eq!(l.in_scope_variables().len(), 3);
    }

    #[test]
    fn expression_variables() {
        let e = Expression::And(
            Box::new(Expression::Gt(
                Box::new(Expression::Var(Variable::new("x"))),
                Box::new(Expression::Term(Term::integer(3))),
            )),
            Box::new(Expression::Bound(Variable::new("y"))),
        );
        let vars = e.variables();
        assert_eq!(vars, vec![Variable::new("x"), Variable::new("y")]);
    }

    #[test]
    fn projected_variables_for_count() {
        let q = SelectQuery::new(
            Projection::Count {
                inner: None,
                distinct: false,
                as_var: Variable::new("c"),
            },
            GraphPattern::empty(),
        );
        assert_eq!(q.projected_variables(), vec![Variable::new("c")]);
    }
}
