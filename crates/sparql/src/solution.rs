//! Solution sequences: the tabular results exchanged between endpoints and
//! the federated query processor.
//!
//! The multiset operators (`join`, `equi_join`, `minus`, `dedup`,
//! `distinct_values`) run on *interned* rows: each operator builds a
//! query-scoped [`Dictionary`], encodes the rows it touches once into
//! fixed-width [`SlotId`]s, and then hashes and compares plain `u32`s
//! instead of term strings. Terms are materialized again only when the
//! operator emits its output rows.

use crate::ast::Variable;
use lusail_rdf::dict::{Dictionary, KeyInterner, SlotId, UNBOUND};
use lusail_rdf::fxhash::FxHashMap;
use lusail_rdf::Term;

/// One solution row: a term (or unbound) per variable of the owning
/// [`Relation`]'s header.
pub type Row = Vec<Option<Term>>;

/// A solution sequence: a header of variables and a bag of rows.
///
/// This is the wire format of our simulated federation — endpoints return
/// `Relation`s, and all the federator's join operators consume and produce
/// them. Bag semantics (duplicates preserved) matches SPARQL `SELECT`
/// without `DISTINCT`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    vars: Vec<Variable>,
    rows: Vec<Row>,
}

impl Relation {
    /// An empty relation with the given header.
    pub fn new(vars: Vec<Variable>) -> Self {
        Relation {
            vars,
            rows: Vec::new(),
        }
    }

    /// Build a relation from a header and rows. Panics if a row's arity
    /// disagrees with the header (a programming error).
    pub fn from_rows(vars: Vec<Variable>, rows: Vec<Row>) -> Self {
        for r in &rows {
            assert_eq!(r.len(), vars.len(), "row arity mismatch");
        }
        Relation { vars, rows }
    }

    /// The header.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access to the rows (header is fixed).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Position of `v` in the header.
    pub fn index_of(&self, v: &Variable) -> Option<usize> {
        self.vars.iter().position(|x| x == v)
    }

    /// Append a row. Panics on arity mismatch.
    pub fn push(&mut self, row: Row) {
        assert_eq!(row.len(), self.vars.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Concatenate another relation with the *same header* (set union under
    /// bag semantics). Panics if headers differ.
    pub fn append(&mut self, other: Relation) {
        assert_eq!(self.vars, other.vars, "header mismatch in append");
        self.rows.extend(other.rows);
    }

    /// The distinct bound terms of variable `v` across all rows.
    pub fn distinct_values(&self, v: &Variable) -> Vec<Term> {
        let Some(i) = self.index_of(v) else {
            return Vec::new();
        };
        // The dictionary doubles as the dedup set: a term is new exactly
        // when interning it grows the dictionary, and duplicates cost a
        // hash probe without any clone.
        let mut dict = Dictionary::new();
        for row in &self.rows {
            if let Some(t) = &row[i] {
                dict.encode(t);
            }
        }
        dict.iter().map(|(_, t)| t.clone()).collect()
    }

    /// Project onto a subset of variables (keeping row multiplicity).
    /// Variables absent from the header come out unbound.
    pub fn project(&self, vars: &[Variable]) -> Relation {
        let idx: Vec<Option<usize>> = vars.iter().map(|v| self.index_of(v)).collect();
        let rows = self
            .rows
            .iter()
            .map(|row| idx.iter().map(|i| i.and_then(|i| row[i].clone())).collect())
            .collect();
        Relation {
            vars: vars.to_vec(),
            rows,
        }
    }

    /// Remove duplicate rows (SPARQL `DISTINCT`). Rows are interned and
    /// deduplicated as fixed-width slot tuples — no term is cloned or
    /// string-hashed more than once.
    pub fn dedup(&mut self) {
        let mut dict = Dictionary::new();
        let mut seen: lusail_rdf::fxhash::FxHashSet<Vec<SlotId>> = Default::default();
        self.rows.retain(|row| seen.insert(dict.encode_row(row)));
    }

    /// Hash join with `other` on their shared variables. The result header
    /// is `self.vars ∪ other.vars` (self's order first). Unbound join keys
    /// follow SPARQL compatibility: two rows are compatible if, for every
    /// shared variable, the values are equal *or at least one is unbound*;
    /// the bound value (if any) wins in the output.
    pub fn join(&self, other: &Relation) -> Relation {
        let shared: Vec<Variable> = self
            .vars
            .iter()
            .filter(|v| other.index_of(v).is_some())
            .cloned()
            .collect();
        let mut out_vars = self.vars.clone();
        for v in &other.vars {
            if !out_vars.contains(v) {
                out_vars.push(v.clone());
            }
        }
        let mut out = Relation::new(out_vars);

        if shared.is_empty() {
            // Cartesian product.
            for a in &self.rows {
                for b in &other.rows {
                    out.rows
                        .push(Self::merge_rows(self, other, a, b, &out.vars));
                }
            }
            return out;
        }

        // Intern only the join-key cells into one query-scoped dictionary:
        // each key string is hashed exactly once (at interning), and all
        // build/probe equality from here on is `u32` equality. Non-key
        // cells never touch the dictionary — output rows merge straight
        // from the original term rows.
        let self_shared_idx: Vec<usize> =
            shared.iter().map(|v| self.index_of(v).unwrap()).collect();
        let other_shared_idx: Vec<usize> =
            shared.iter().map(|v| other.index_of(v).unwrap()).collect();
        let mut dict = KeyInterner::new();
        let self_keys = encode_keys(&self.rows, &self_shared_idx, &mut dict);
        let other_keys = encode_keys(&other.rows, &other_shared_idx, &mut dict);
        let merge = MergePlan::new(self, other, &out.vars);

        let (small_rel, big_rel, small_keys, big_keys, small_is_self) =
            if self.rows.len() <= other.rows.len() {
                (self, other, &self_keys, &other_keys, true)
            } else {
                (other, self, &other_keys, &self_keys, false)
            };

        // Rows where every shared var is bound go into a hash table; rows
        // with unbound shared vars (possible after OPTIONAL) fall back to a
        // scan. The scan list is usually empty.
        let mut table: FxHashMap<&[SlotId], Vec<usize>> = FxHashMap::default();
        let mut loose: Vec<usize> = Vec::new();
        for (i, key) in small_keys.iter().enumerate() {
            if key.contains(&UNBOUND) {
                loose.push(i);
            } else {
                table.entry(key).or_default().push(i);
            }
        }

        // SPARQL compatibility on interned key cells: equal slots, or at
        // least one unbound. (Both key vectors follow `shared`'s order.)
        let compatible = |skey: &[SlotId], bkey: &[SlotId]| {
            skey.iter()
                .zip(bkey)
                .all(|(&s, &b)| s == b || s == UNBOUND || b == UNBOUND)
        };
        let emit = |si: usize, bi: usize, out: &mut Relation| {
            let (a, b) = if small_is_self {
                (&small_rel.rows[si], &big_rel.rows[bi])
            } else {
                (&big_rel.rows[bi], &small_rel.rows[si])
            };
            out.rows.push(merge.merge_terms(a, b));
        };

        for (bi, bkey) in big_keys.iter().enumerate() {
            let bound = !bkey.contains(&UNBOUND);
            if bound {
                if let Some(matches) = table.get(bkey) {
                    for &si in matches {
                        emit(si, bi, &mut out);
                    }
                }
            }
            // Loose rows (unbound shared vars) are compatibility-checked
            // directly.
            for &si in &loose {
                if compatible(small_keys.row(si), bkey) {
                    emit(si, bi, &mut out);
                }
            }
            // Symmetric case: the big row has an unbound shared var — check
            // against all hashed rows too.
            if !bound {
                for rows in table.values() {
                    for &si in rows {
                        if compatible(small_keys.row(si), bkey) {
                            emit(si, bi, &mut out);
                        }
                    }
                }
            }
        }
        out
    }

    fn merge_rows(
        left: &Relation,
        right: &Relation,
        a: &Row,
        b: &Row,
        out_vars: &[Variable],
    ) -> Row {
        // Term-level twin of [`MergePlan::merge`], for paths that never
        // intern (cartesian products, left_join).
        out_vars
            .iter()
            .map(|v| {
                let from_left = left.index_of(v).and_then(|i| a[i].clone());
                if from_left.is_some() {
                    from_left
                } else {
                    right.index_of(v).and_then(|i| b[i].clone())
                }
            })
            .collect()
    }

    /// Left outer join (SPARQL `OPTIONAL` without filter): every row of
    /// `self` appears at least once; matching rows of `other` extend it.
    pub fn left_join(&self, other: &Relation) -> Relation {
        let inner = self.join(other);
        let mut out_vars = self.vars.clone();
        for v in &other.vars {
            if !out_vars.contains(v) {
                out_vars.push(v.clone());
            }
        }
        // Identify which self-rows found a partner by re-deriving the match
        // predicate: a self-row survives if joining it alone yields rows.
        // Cheaper: count matches per left row index by joining with a tag.
        // We instead do the standard approach: build the join keyed by left
        // row identity.
        let shared: Vec<Variable> = self
            .vars
            .iter()
            .filter(|v| other.index_of(v).is_some())
            .cloned()
            .collect();
        let mut out = Relation::new(out_vars.clone());
        if shared.is_empty() && !other.rows.is_empty() {
            return inner; // pure product: every left row matched
        }
        let other_idx: Vec<usize> = shared.iter().map(|v| other.index_of(v).unwrap()).collect();
        let self_idx: Vec<usize> = shared.iter().map(|v| self.index_of(v).unwrap()).collect();
        let mut table: FxHashMap<Vec<&Term>, Vec<&Row>> = FxHashMap::default();
        let mut loose: Vec<&Row> = Vec::new();
        for row in &other.rows {
            let key: Option<Vec<&Term>> = other_idx.iter().map(|&i| row[i].as_ref()).collect();
            match key {
                Some(k) => table.entry(k).or_default().push(row),
                None => loose.push(row),
            }
        }
        for arow in &self.rows {
            let mut matched = false;
            let key: Option<Vec<&Term>> = self_idx.iter().map(|&i| arow[i].as_ref()).collect();
            let try_row = |brow: &Row, out: &mut Relation, matched: &mut bool| {
                let compatible = self_idx.iter().zip(other_idx.iter()).all(|(&si, &bi)| {
                    match (&arow[si], &brow[bi]) {
                        (Some(a), Some(b)) => a == b,
                        _ => true,
                    }
                });
                if compatible {
                    out.rows
                        .push(Self::merge_rows(self, other, arow, brow, &out_vars));
                    *matched = true;
                }
            };
            match &key {
                Some(k) => {
                    if let Some(rows) = table.get(k) {
                        for brow in rows {
                            try_row(brow, &mut out, &mut matched);
                        }
                    }
                }
                None => {
                    for rows in table.values() {
                        for brow in rows {
                            try_row(brow, &mut out, &mut matched);
                        }
                    }
                }
            }
            for brow in &loose {
                try_row(brow, &mut out, &mut matched);
            }
            if !matched {
                let row = out_vars
                    .iter()
                    .map(|v| self.index_of(v).and_then(|i| arow[i].clone()))
                    .collect();
                out.rows.push(row);
            }
        }
        out
    }

    /// Hash join on *renamed* keys: rows of `self` and `other` pair up when
    /// `self[a] == other[b]` for every `(a, b)` in `pairs` (both bound).
    /// Used to evaluate `FILTER(?a = ?b)` bridges between otherwise
    /// disconnected subqueries as a join instead of a cross product.
    pub fn equi_join(&self, other: &Relation, pairs: &[(Variable, Variable)]) -> Relation {
        let keys: Vec<(usize, usize)> = pairs
            .iter()
            .filter_map(|(a, b)| Some((self.index_of(a)?, other.index_of(b)?)))
            .collect();
        if keys.is_empty() {
            return self.join(other);
        }
        let mut out_vars = self.vars.clone();
        for v in &other.vars {
            if !out_vars.contains(v) {
                out_vars.push(v.clone());
            }
        }
        let mut out = Relation::new(out_vars);
        // Interned build/probe on the bridge-key columns only, as in
        // `join`: bridge keys must be bound on both sides, so there is no
        // loose-row fallback here.
        let self_idx: Vec<usize> = keys.iter().map(|&(i, _)| i).collect();
        let other_idx: Vec<usize> = keys.iter().map(|&(_, j)| j).collect();
        let mut dict = KeyInterner::new();
        let self_keys = encode_keys(&self.rows, &self_idx, &mut dict);
        let other_keys = encode_keys(&other.rows, &other_idx, &mut dict);
        let merge = MergePlan::new(self, other, &out.vars);
        let mut table: FxHashMap<&[SlotId], Vec<usize>> = FxHashMap::default();
        for (i, key) in other_keys.iter().enumerate() {
            if !key.contains(&UNBOUND) {
                table.entry(key).or_default().push(i);
            }
        }
        for (ai, key) in self_keys.iter().enumerate() {
            if key.contains(&UNBOUND) {
                continue;
            }
            if let Some(matches) = table.get(key) {
                for &bi in matches {
                    out.rows
                        .push(merge.merge_terms(&self.rows[ai], &other.rows[bi]));
                }
            }
        }
        out
    }

    /// SPARQL 1.1 `MINUS`: drop a row of `self` when some row of `other`
    /// shares at least one bound variable with it and agrees on every
    /// shared bound variable.
    pub fn minus(&self, other: &Relation) -> Relation {
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.index_of(v).map(|j| (i, j)))
            .collect();
        if shared.is_empty() {
            return self.clone();
        }
        // Intern only the shared columns once; the pairwise agreement scan
        // then compares fixed-width slots instead of terms.
        let self_idx: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
        let other_idx: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
        let mut dict = KeyInterner::new();
        let self_keys = encode_keys(&self.rows, &self_idx, &mut dict);
        let other_keys = encode_keys(&other.rows, &other_idx, &mut dict);
        let rows = self
            .rows
            .iter()
            .zip(self_keys.iter())
            .filter(|(_, lkey)| {
                !other_keys.iter().any(|rkey| {
                    let mut overlap = false;
                    for (&a, &b) in lkey.iter().zip(rkey.iter()) {
                        match (a, b) {
                            (UNBOUND, _) | (_, UNBOUND) => {}
                            (a, b) if a == b => overlap = true,
                            _ => return false,
                        }
                    }
                    overlap
                })
            })
            .map(|(row, _)| row.clone())
            .collect();
        Relation {
            vars: self.vars.clone(),
            rows,
        }
    }

    /// Estimated size in bytes when shipped over the (simulated) network:
    /// the sum of term string lengths plus small per-cell overhead. Used by
    /// the federation layer's bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        8 * self.vars.len() + self.rows.iter().map(|r| row_wire_size(r)).sum::<usize>()
    }
}

/// Precomputed source positions for merging a compatible (left, right)
/// slot-row pair into an output header: for each output variable, where
/// it lives in the left and right headers. The left cell wins when
/// bound, matching SPARQL's solution-merge semantics. Shared with the
/// budgeted/parallel join in `core::sape`, which runs the same interned
/// representation.
pub struct MergePlan {
    plan: Vec<(Option<usize>, Option<usize>)>,
}

impl MergePlan {
    /// A plan for merging rows of `left` and `right` into `out_vars`.
    pub fn new(left: &Relation, right: &Relation, out_vars: &[Variable]) -> MergePlan {
        MergePlan {
            plan: out_vars
                .iter()
                .map(|v| (left.index_of(v), right.index_of(v)))
                .collect(),
        }
    }

    /// Merge one pair of term rows (left cell wins when bound). Joins that
    /// intern only their key columns use this to emit output straight from
    /// the original rows, so non-key terms are cloned exactly once.
    pub fn merge_terms(&self, a: &Row, b: &Row) -> Row {
        self.plan
            .iter()
            .map(|&(l, r)| {
                let lv = l.and_then(|i| a[i].clone());
                if lv.is_some() {
                    lv
                } else {
                    r.and_then(|j| b[j].clone())
                }
            })
            .collect()
    }
}

/// A fixed-stride table of interned key rows: row `i`'s key slots are
/// `table.row(i)`. One contiguous allocation regardless of row count — the
/// per-row `Vec` a naive encoding would allocate is measurable join
/// overhead at federation scale.
pub struct KeyTable {
    slots: Vec<SlotId>,
    width: usize,
}

impl KeyTable {
    /// The interned key of row `i`.
    pub fn row(&self, i: usize) -> &[SlotId] {
        &self.slots[i * self.width..(i + 1) * self.width]
    }

    /// Iterate key rows in row order.
    pub fn iter(&self) -> impl Iterator<Item = &[SlotId]> {
        self.slots.chunks_exact(self.width)
    }
}

/// Intern one column subset of every row: `keys.row(r)[k]` is the slot of
/// `rows[r][idx[k]]`. Each distinct term is string-hashed once at
/// interning; all subsequent build/probe equality is `u32` equality.
/// Nothing is cloned — the interner borrows terms from the rows — and
/// non-key cells never touch it. `idx` must be non-empty.
pub fn encode_keys<'a>(rows: &'a [Row], idx: &[usize], dict: &mut KeyInterner<'a>) -> KeyTable {
    assert!(!idx.is_empty(), "key-only interning needs key columns");
    let mut slots = Vec::with_capacity(rows.len() * idx.len());
    for row in rows {
        for &i in idx {
            slots.push(dict.encode_slot(row[i].as_ref()));
        }
    }
    KeyTable {
        slots,
        width: idx.len(),
    }
}

/// Wire-size estimate of one row, using the same per-cell model as
/// [`Relation::wire_size`] (which adds a small per-relation header on
/// top). The engine's memory accounting charges admitted results row by
/// row with this.
pub fn row_wire_size(row: &Row) -> usize {
    row.iter()
        .map(|cell| 4 + cell.as_ref().map_or(0, term_wire_size))
        .sum()
}

fn term_wire_size(t: &Term) -> usize {
    match t {
        Term::Iri(s) => s.len() + 2,
        Term::BlankNode(s) => s.len() + 2,
        Term::Literal(l) => {
            l.lexical.len()
                + 2
                + l.datatype.as_ref().map_or(0, |d| d.len() + 4)
                + l.language.as_ref().map_or(0, |g| g.len() + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn iri(n: &str) -> Term {
        Term::iri(format!("http://x/{n}"))
    }

    #[test]
    fn join_on_shared_variable() {
        let mut a = Relation::new(vec![v("x"), v("y")]);
        a.push(vec![Some(iri("1")), Some(iri("a"))]);
        a.push(vec![Some(iri("2")), Some(iri("b"))]);
        let mut b = Relation::new(vec![v("y"), v("z")]);
        b.push(vec![Some(iri("a")), Some(iri("A"))]);
        b.push(vec![Some(iri("a")), Some(iri("B"))]);
        b.push(vec![Some(iri("c")), Some(iri("C"))]);
        let j = a.join(&b);
        assert_eq!(j.vars(), &[v("x"), v("y"), v("z")]);
        assert_eq!(j.len(), 2);
        for row in j.rows() {
            assert_eq!(row[0], Some(iri("1")));
            assert_eq!(row[1], Some(iri("a")));
        }
    }

    #[test]
    fn join_without_shared_is_product() {
        let mut a = Relation::new(vec![v("x")]);
        a.push(vec![Some(iri("1"))]);
        a.push(vec![Some(iri("2"))]);
        let mut b = Relation::new(vec![v("y")]);
        b.push(vec![Some(iri("a"))]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn join_with_unbound_is_compatible() {
        // SPARQL compatibility: unbound matches anything.
        let mut a = Relation::new(vec![v("x"), v("y")]);
        a.push(vec![Some(iri("1")), None]);
        let mut b = Relation::new(vec![v("y"), v("z")]);
        b.push(vec![Some(iri("a")), Some(iri("A"))]);
        let j = a.join(&b);
        assert_eq!(j.len(), 1);
        assert_eq!(j.rows()[0][1], Some(iri("a"))); // bound side wins
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let mut a = Relation::new(vec![v("x")]);
        a.push(vec![Some(iri("1"))]);
        a.push(vec![Some(iri("2"))]);
        let mut b = Relation::new(vec![v("x"), v("z")]);
        b.push(vec![Some(iri("1")), Some(iri("Z"))]);
        let lj = a.left_join(&b);
        assert_eq!(lj.len(), 2);
        let unmatched = lj.rows().iter().find(|r| r[0] == Some(iri("2"))).unwrap();
        assert_eq!(unmatched[1], None);
    }

    #[test]
    fn project_and_dedup() {
        let mut r = Relation::new(vec![v("x"), v("y")]);
        r.push(vec![Some(iri("1")), Some(iri("a"))]);
        r.push(vec![Some(iri("1")), Some(iri("b"))]);
        let mut p = r.project(&[v("x")]);
        assert_eq!(p.len(), 2);
        p.dedup();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn project_missing_var_is_unbound() {
        let mut r = Relation::new(vec![v("x")]);
        r.push(vec![Some(iri("1"))]);
        let p = r.project(&[v("x"), v("nope")]);
        assert_eq!(p.rows()[0][1], None);
    }

    #[test]
    fn distinct_values() {
        let mut r = Relation::new(vec![v("x")]);
        r.push(vec![Some(iri("1"))]);
        r.push(vec![Some(iri("1"))]);
        r.push(vec![None]);
        r.push(vec![Some(iri("2"))]);
        assert_eq!(r.distinct_values(&v("x")).len(), 2);
    }

    #[test]
    fn wire_size_grows_with_rows() {
        let mut r = Relation::new(vec![v("x")]);
        let s0 = r.wire_size();
        r.push(vec![Some(iri("aaaa"))]);
        assert!(r.wire_size() > s0);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(vec![v("x")]);
        r.push(vec![None, None]);
    }
}
