//! Solution sequences: the tabular results exchanged between endpoints and
//! the federated query processor.

use crate::ast::Variable;
use lusail_rdf::fxhash::FxHashMap;
use lusail_rdf::Term;

/// One solution row: a term (or unbound) per variable of the owning
/// [`Relation`]'s header.
pub type Row = Vec<Option<Term>>;

/// A solution sequence: a header of variables and a bag of rows.
///
/// This is the wire format of our simulated federation — endpoints return
/// `Relation`s, and all the federator's join operators consume and produce
/// them. Bag semantics (duplicates preserved) matches SPARQL `SELECT`
/// without `DISTINCT`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    vars: Vec<Variable>,
    rows: Vec<Row>,
}

impl Relation {
    /// An empty relation with the given header.
    pub fn new(vars: Vec<Variable>) -> Self {
        Relation {
            vars,
            rows: Vec::new(),
        }
    }

    /// Build a relation from a header and rows. Panics if a row's arity
    /// disagrees with the header (a programming error).
    pub fn from_rows(vars: Vec<Variable>, rows: Vec<Row>) -> Self {
        for r in &rows {
            assert_eq!(r.len(), vars.len(), "row arity mismatch");
        }
        Relation { vars, rows }
    }

    /// The header.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable access to the rows (header is fixed).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Position of `v` in the header.
    pub fn index_of(&self, v: &Variable) -> Option<usize> {
        self.vars.iter().position(|x| x == v)
    }

    /// Append a row. Panics on arity mismatch.
    pub fn push(&mut self, row: Row) {
        assert_eq!(row.len(), self.vars.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Concatenate another relation with the *same header* (set union under
    /// bag semantics). Panics if headers differ.
    pub fn append(&mut self, other: Relation) {
        assert_eq!(self.vars, other.vars, "header mismatch in append");
        self.rows.extend(other.rows);
    }

    /// The distinct bound terms of variable `v` across all rows.
    pub fn distinct_values(&self, v: &Variable) -> Vec<Term> {
        let Some(i) = self.index_of(v) else {
            return Vec::new();
        };
        let mut seen = lusail_rdf::fxhash::FxHashSet::default();
        let mut out = Vec::new();
        for row in &self.rows {
            if let Some(t) = &row[i] {
                if seen.insert(t.clone()) {
                    out.push(t.clone());
                }
            }
        }
        out
    }

    /// Project onto a subset of variables (keeping row multiplicity).
    /// Variables absent from the header come out unbound.
    pub fn project(&self, vars: &[Variable]) -> Relation {
        let idx: Vec<Option<usize>> = vars.iter().map(|v| self.index_of(v)).collect();
        let rows = self
            .rows
            .iter()
            .map(|row| idx.iter().map(|i| i.and_then(|i| row[i].clone())).collect())
            .collect();
        Relation {
            vars: vars.to_vec(),
            rows,
        }
    }

    /// Remove duplicate rows (SPARQL `DISTINCT`).
    pub fn dedup(&mut self) {
        let mut seen = lusail_rdf::fxhash::FxHashSet::default();
        self.rows.retain(|row| seen.insert(row.clone()));
    }

    /// Hash join with `other` on their shared variables. The result header
    /// is `self.vars ∪ other.vars` (self's order first). Unbound join keys
    /// follow SPARQL compatibility: two rows are compatible if, for every
    /// shared variable, the values are equal *or at least one is unbound*;
    /// the bound value (if any) wins in the output.
    pub fn join(&self, other: &Relation) -> Relation {
        let shared: Vec<Variable> = self
            .vars
            .iter()
            .filter(|v| other.index_of(v).is_some())
            .cloned()
            .collect();
        let mut out_vars = self.vars.clone();
        for v in &other.vars {
            if !out_vars.contains(v) {
                out_vars.push(v.clone());
            }
        }
        let mut out = Relation::new(out_vars);

        if shared.is_empty() {
            // Cartesian product.
            for a in &self.rows {
                for b in &other.rows {
                    out.rows
                        .push(Self::merge_rows(self, other, a, b, &out.vars));
                }
            }
            return out;
        }

        // Rows where every shared var is bound go into a hash table; rows
        // with unbound shared vars (possible after OPTIONAL) fall back to a
        // scan. The scan list is usually empty.
        let self_shared_idx: Vec<usize> =
            shared.iter().map(|v| self.index_of(v).unwrap()).collect();
        let other_shared_idx: Vec<usize> =
            shared.iter().map(|v| other.index_of(v).unwrap()).collect();

        let (small, big, small_idx, big_idx, small_is_self) = if self.rows.len() <= other.rows.len()
        {
            (self, other, &self_shared_idx, &other_shared_idx, true)
        } else {
            (other, self, &other_shared_idx, &self_shared_idx, false)
        };

        let mut table: FxHashMap<Vec<&Term>, Vec<&Row>> = FxHashMap::default();
        let mut loose: Vec<&Row> = Vec::new();
        for row in &small.rows {
            let key: Option<Vec<&Term>> = small_idx.iter().map(|&i| row[i].as_ref()).collect();
            match key {
                Some(k) => table.entry(k).or_default().push(row),
                None => loose.push(row),
            }
        }

        for brow in &big.rows {
            let key: Option<Vec<&Term>> = big_idx.iter().map(|&i| brow[i].as_ref()).collect();
            if let Some(k) = &key {
                if let Some(matches) = table.get(k) {
                    for srow in matches {
                        let (a, b) = if small_is_self {
                            (*srow, brow)
                        } else {
                            (brow, *srow)
                        };
                        out.rows
                            .push(Self::merge_rows(self, other, a, b, &out.vars));
                    }
                }
            }
            // Loose rows (unbound shared vars) are compatibility-checked
            // directly.
            for srow in &loose {
                let compatible = small_idx.iter().zip(big_idx.iter()).all(|(&si, &bi)| {
                    match (&srow[si], &brow[bi]) {
                        (Some(a), Some(b)) => a == b,
                        _ => true,
                    }
                });
                if compatible {
                    let (a, b) = if small_is_self {
                        (*srow, brow)
                    } else {
                        (brow, *srow)
                    };
                    out.rows
                        .push(Self::merge_rows(self, other, a, b, &out.vars));
                }
            }
            // Symmetric case: brow has an unbound shared var — check against
            // all hashed rows too.
            if key.is_none() {
                for rows in table.values() {
                    for srow in rows {
                        let compatible = small_idx.iter().zip(big_idx.iter()).all(|(&si, &bi)| {
                            match (&srow[si], &brow[bi]) {
                                (Some(a), Some(b)) => a == b,
                                _ => true,
                            }
                        });
                        if compatible {
                            let (a, b) = if small_is_self {
                                (*srow, brow)
                            } else {
                                (brow, *srow)
                            };
                            out.rows
                                .push(Self::merge_rows(self, other, a, b, &out.vars));
                        }
                    }
                }
            }
        }
        out
    }

    fn merge_rows(
        left: &Relation,
        right: &Relation,
        a: &Row,
        b: &Row,
        out_vars: &[Variable],
    ) -> Row {
        out_vars
            .iter()
            .map(|v| {
                let from_left = left.index_of(v).and_then(|i| a[i].clone());
                if from_left.is_some() {
                    from_left
                } else {
                    right.index_of(v).and_then(|i| b[i].clone())
                }
            })
            .collect()
    }

    /// Left outer join (SPARQL `OPTIONAL` without filter): every row of
    /// `self` appears at least once; matching rows of `other` extend it.
    pub fn left_join(&self, other: &Relation) -> Relation {
        let inner = self.join(other);
        let mut out_vars = self.vars.clone();
        for v in &other.vars {
            if !out_vars.contains(v) {
                out_vars.push(v.clone());
            }
        }
        // Identify which self-rows found a partner by re-deriving the match
        // predicate: a self-row survives if joining it alone yields rows.
        // Cheaper: count matches per left row index by joining with a tag.
        // We instead do the standard approach: build the join keyed by left
        // row identity.
        let shared: Vec<Variable> = self
            .vars
            .iter()
            .filter(|v| other.index_of(v).is_some())
            .cloned()
            .collect();
        let mut out = Relation::new(out_vars.clone());
        if shared.is_empty() && !other.rows.is_empty() {
            return inner; // pure product: every left row matched
        }
        let other_idx: Vec<usize> = shared.iter().map(|v| other.index_of(v).unwrap()).collect();
        let self_idx: Vec<usize> = shared.iter().map(|v| self.index_of(v).unwrap()).collect();
        let mut table: FxHashMap<Vec<&Term>, Vec<&Row>> = FxHashMap::default();
        let mut loose: Vec<&Row> = Vec::new();
        for row in &other.rows {
            let key: Option<Vec<&Term>> = other_idx.iter().map(|&i| row[i].as_ref()).collect();
            match key {
                Some(k) => table.entry(k).or_default().push(row),
                None => loose.push(row),
            }
        }
        for arow in &self.rows {
            let mut matched = false;
            let key: Option<Vec<&Term>> = self_idx.iter().map(|&i| arow[i].as_ref()).collect();
            let try_row = |brow: &Row, out: &mut Relation, matched: &mut bool| {
                let compatible = self_idx.iter().zip(other_idx.iter()).all(|(&si, &bi)| {
                    match (&arow[si], &brow[bi]) {
                        (Some(a), Some(b)) => a == b,
                        _ => true,
                    }
                });
                if compatible {
                    out.rows
                        .push(Self::merge_rows(self, other, arow, brow, &out_vars));
                    *matched = true;
                }
            };
            match &key {
                Some(k) => {
                    if let Some(rows) = table.get(k) {
                        for brow in rows {
                            try_row(brow, &mut out, &mut matched);
                        }
                    }
                }
                None => {
                    for rows in table.values() {
                        for brow in rows {
                            try_row(brow, &mut out, &mut matched);
                        }
                    }
                }
            }
            for brow in &loose {
                try_row(brow, &mut out, &mut matched);
            }
            if !matched {
                let row = out_vars
                    .iter()
                    .map(|v| self.index_of(v).and_then(|i| arow[i].clone()))
                    .collect();
                out.rows.push(row);
            }
        }
        out
    }

    /// Hash join on *renamed* keys: rows of `self` and `other` pair up when
    /// `self[a] == other[b]` for every `(a, b)` in `pairs` (both bound).
    /// Used to evaluate `FILTER(?a = ?b)` bridges between otherwise
    /// disconnected subqueries as a join instead of a cross product.
    pub fn equi_join(&self, other: &Relation, pairs: &[(Variable, Variable)]) -> Relation {
        let keys: Vec<(usize, usize)> = pairs
            .iter()
            .filter_map(|(a, b)| Some((self.index_of(a)?, other.index_of(b)?)))
            .collect();
        if keys.is_empty() {
            return self.join(other);
        }
        let mut out_vars = self.vars.clone();
        for v in &other.vars {
            if !out_vars.contains(v) {
                out_vars.push(v.clone());
            }
        }
        let mut out = Relation::new(out_vars);
        let mut table: FxHashMap<Vec<&Term>, Vec<&Row>> = FxHashMap::default();
        for row in &other.rows {
            let key: Option<Vec<&Term>> = keys.iter().map(|&(_, j)| row[j].as_ref()).collect();
            if let Some(k) = key {
                table.entry(k).or_default().push(row);
            }
        }
        for arow in &self.rows {
            let key: Option<Vec<&Term>> = keys.iter().map(|&(i, _)| arow[i].as_ref()).collect();
            let Some(k) = key else { continue };
            if let Some(matches) = table.get(&k) {
                for brow in matches {
                    out.rows
                        .push(Self::merge_rows(self, other, arow, brow, &out.vars));
                }
            }
        }
        out
    }

    /// SPARQL 1.1 `MINUS`: drop a row of `self` when some row of `other`
    /// shares at least one bound variable with it and agrees on every
    /// shared bound variable.
    pub fn minus(&self, other: &Relation) -> Relation {
        let shared: Vec<(usize, usize)> = self
            .vars
            .iter()
            .enumerate()
            .filter_map(|(i, v)| other.index_of(v).map(|j| (i, j)))
            .collect();
        if shared.is_empty() {
            return self.clone();
        }
        let rows = self
            .rows
            .iter()
            .filter(|lrow| {
                !other.rows.iter().any(|rrow| {
                    let mut overlap = false;
                    for &(i, j) in &shared {
                        match (&lrow[i], &rrow[j]) {
                            (None, _) | (_, None) => {}
                            (Some(a), Some(b)) if a == b => overlap = true,
                            _ => return false,
                        }
                    }
                    overlap
                })
            })
            .cloned()
            .collect();
        Relation {
            vars: self.vars.clone(),
            rows,
        }
    }

    /// Estimated size in bytes when shipped over the (simulated) network:
    /// the sum of term string lengths plus small per-cell overhead. Used by
    /// the federation layer's bandwidth accounting.
    pub fn wire_size(&self) -> usize {
        8 * self.vars.len() + self.rows.iter().map(|r| row_wire_size(r)).sum::<usize>()
    }
}

/// Wire-size estimate of one row, using the same per-cell model as
/// [`Relation::wire_size`] (which adds a small per-relation header on
/// top). The engine's memory accounting charges admitted results row by
/// row with this.
pub fn row_wire_size(row: &Row) -> usize {
    row.iter()
        .map(|cell| 4 + cell.as_ref().map_or(0, term_wire_size))
        .sum()
}

fn term_wire_size(t: &Term) -> usize {
    match t {
        Term::Iri(s) => s.len() + 2,
        Term::BlankNode(s) => s.len() + 2,
        Term::Literal(l) => {
            l.lexical.len()
                + 2
                + l.datatype.as_ref().map_or(0, |d| d.len() + 4)
                + l.language.as_ref().map_or(0, |g| g.len() + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn iri(n: &str) -> Term {
        Term::iri(format!("http://x/{n}"))
    }

    #[test]
    fn join_on_shared_variable() {
        let mut a = Relation::new(vec![v("x"), v("y")]);
        a.push(vec![Some(iri("1")), Some(iri("a"))]);
        a.push(vec![Some(iri("2")), Some(iri("b"))]);
        let mut b = Relation::new(vec![v("y"), v("z")]);
        b.push(vec![Some(iri("a")), Some(iri("A"))]);
        b.push(vec![Some(iri("a")), Some(iri("B"))]);
        b.push(vec![Some(iri("c")), Some(iri("C"))]);
        let j = a.join(&b);
        assert_eq!(j.vars(), &[v("x"), v("y"), v("z")]);
        assert_eq!(j.len(), 2);
        for row in j.rows() {
            assert_eq!(row[0], Some(iri("1")));
            assert_eq!(row[1], Some(iri("a")));
        }
    }

    #[test]
    fn join_without_shared_is_product() {
        let mut a = Relation::new(vec![v("x")]);
        a.push(vec![Some(iri("1"))]);
        a.push(vec![Some(iri("2"))]);
        let mut b = Relation::new(vec![v("y")]);
        b.push(vec![Some(iri("a"))]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn join_with_unbound_is_compatible() {
        // SPARQL compatibility: unbound matches anything.
        let mut a = Relation::new(vec![v("x"), v("y")]);
        a.push(vec![Some(iri("1")), None]);
        let mut b = Relation::new(vec![v("y"), v("z")]);
        b.push(vec![Some(iri("a")), Some(iri("A"))]);
        let j = a.join(&b);
        assert_eq!(j.len(), 1);
        assert_eq!(j.rows()[0][1], Some(iri("a"))); // bound side wins
    }

    #[test]
    fn left_join_keeps_unmatched() {
        let mut a = Relation::new(vec![v("x")]);
        a.push(vec![Some(iri("1"))]);
        a.push(vec![Some(iri("2"))]);
        let mut b = Relation::new(vec![v("x"), v("z")]);
        b.push(vec![Some(iri("1")), Some(iri("Z"))]);
        let lj = a.left_join(&b);
        assert_eq!(lj.len(), 2);
        let unmatched = lj.rows().iter().find(|r| r[0] == Some(iri("2"))).unwrap();
        assert_eq!(unmatched[1], None);
    }

    #[test]
    fn project_and_dedup() {
        let mut r = Relation::new(vec![v("x"), v("y")]);
        r.push(vec![Some(iri("1")), Some(iri("a"))]);
        r.push(vec![Some(iri("1")), Some(iri("b"))]);
        let mut p = r.project(&[v("x")]);
        assert_eq!(p.len(), 2);
        p.dedup();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn project_missing_var_is_unbound() {
        let mut r = Relation::new(vec![v("x")]);
        r.push(vec![Some(iri("1"))]);
        let p = r.project(&[v("x"), v("nope")]);
        assert_eq!(p.rows()[0][1], None);
    }

    #[test]
    fn distinct_values() {
        let mut r = Relation::new(vec![v("x")]);
        r.push(vec![Some(iri("1"))]);
        r.push(vec![Some(iri("1"))]);
        r.push(vec![None]);
        r.push(vec![Some(iri("2"))]);
        assert_eq!(r.distinct_values(&v("x")).len(), 2);
    }

    #[test]
    fn wire_size_grows_with_rows() {
        let mut r = Relation::new(vec![v("x")]);
        let s0 = r.wire_size();
        r.push(vec![Some(iri("aaaa"))]);
        assert!(r.wire_size() > s0);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(vec![v("x")]);
        r.push(vec![None, None]);
    }
}
