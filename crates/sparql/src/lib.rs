//! # lusail-sparql
//!
//! The SPARQL substrate for Lusail: an abstract syntax tree / algebra for the
//! SPARQL fragment the system needs, a hand-written recursive-descent parser,
//! a serializer (so engines can ship queries to endpoints as text and count
//! the bytes), and the solution-sequence types exchanged between endpoints
//! and the federator.
//!
//! ## Supported fragment
//!
//! `SELECT` (with `DISTINCT`, projection lists, `*`, and a
//! `(COUNT(…) AS ?v)` aggregate) and `ASK` forms; basic graph patterns with
//! all shortcut syntaxes; `FILTER` expressions including `EXISTS` /
//! `NOT EXISTS` with nested sub-`SELECT`s (the shape of Lusail's check
//! queries, Figure 5 of the paper); `OPTIONAL`; `UNION`; `VALUES` (both the
//! single-variable and full-row forms — SAPE's bound joins append `VALUES`
//! blocks to delayed subqueries); `ORDER BY`; `LIMIT` / `OFFSET`.
//!
//! The paper's query workloads (LUBM, QFed, LargeRDFBench S/C/B) are all
//! expressible in this fragment.

pub mod aggregate;
pub mod ast;
pub mod parser;
pub mod serializer;
pub mod solution;

pub use ast::{
    Expression, GraphPattern, Projection, Query, QueryForm, SelectQuery, TermPattern,
    TriplePattern, Variable,
};
pub use parser::{parse_query, ParseError};
pub use solution::{Relation, Row};
