//! Relation-level grouped aggregation (SPARQL 1.1 `GROUP BY`), applied at
//! the federator after the global join — aggregates are never pushed to
//! endpoints by the federated engines (only the dedicated `COUNT` probes
//! are, and those use [`crate::ast::Projection::Count`]).

use crate::ast::{AggFunc, AggSpec, Variable};
use crate::solution::Relation;
use lusail_rdf::fxhash::FxHashMap;
use lusail_rdf::{Literal, Term};

/// Group `rel` by `group_by` (falling back to `keys` when empty) and
/// compute the aggregates. The output header is `keys ++ agg.as_var…`,
/// rows sorted by key for determinism.
pub fn aggregate_relation(
    rel: &Relation,
    group_by: &[Variable],
    keys: &[Variable],
    aggs: &[AggSpec],
) -> Relation {
    let group_keys: &[Variable] = if group_by.is_empty() { keys } else { group_by };
    let key_idx: Vec<Option<usize>> = group_keys.iter().map(|v| rel.index_of(v)).collect();
    let mut groups: FxHashMap<Vec<Option<Term>>, Vec<usize>> = FxHashMap::default();
    for (ri, row) in rel.rows().iter().enumerate() {
        let key: Vec<Option<Term>> = key_idx
            .iter()
            .map(|i| i.and_then(|i| row[i].clone()))
            .collect();
        groups.entry(key).or_default().push(ri);
    }
    if groups.is_empty() && group_keys.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }

    let mut out_vars: Vec<Variable> = keys.to_vec();
    out_vars.extend(aggs.iter().map(|a| a.as_var.clone()));
    let mut out = Relation::new(out_vars);

    for (key, row_ids) in groups {
        let mut out_row: Vec<Option<Term>> = Vec::new();
        for v in keys {
            let pos = group_keys.iter().position(|k| k == v);
            out_row.push(pos.and_then(|p| key[p].clone()));
        }
        for agg in aggs {
            out_row.push(compute(rel, &row_ids, agg));
        }
        out.push(out_row);
    }
    out.rows_mut()
        .sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out
}

fn compute(rel: &Relation, row_ids: &[usize], agg: &AggSpec) -> Option<Term> {
    let arg_idx = agg.arg.as_ref().and_then(|v| rel.index_of(v));
    let mut values: Vec<Option<&Term>> = match (&agg.arg, arg_idx) {
        (None, _) => row_ids.iter().map(|_| None).collect(), // COUNT(*)
        (Some(_), None) => Vec::new(),
        (Some(_), Some(i)) => row_ids
            .iter()
            .filter_map(|&ri| rel.rows()[ri][i].as_ref().map(Some))
            .collect(),
    };
    if agg.distinct && agg.arg.is_some() {
        let mut seen = lusail_rdf::fxhash::FxHashSet::default();
        values.retain(|v| seen.insert(v.map(|t| t.to_string())));
    }
    match agg.func {
        AggFunc::Count => Some(Term::integer(values.len() as i64)),
        AggFunc::Sum | AggFunc::Avg => {
            let nums: Vec<f64> = values
                .iter()
                .filter_map(|v| (*v)?.as_literal().and_then(|l| l.as_f64()))
                .collect();
            if nums.is_empty() {
                return Some(Term::integer(0));
            }
            let sum: f64 = nums.iter().sum();
            let v = if agg.func == AggFunc::Avg {
                sum / nums.len() as f64
            } else {
                sum
            };
            Some(if v.fract() == 0.0 {
                Term::integer(v as i64)
            } else {
                Term::Literal(Literal::double(v))
            })
        }
        AggFunc::Min | AggFunc::Max => {
            let mut terms: Vec<&Term> = values.into_iter().flatten().collect();
            terms.sort_by(|a, b| {
                match (
                    a.as_literal().and_then(|l| l.as_f64()),
                    b.as_literal().and_then(|l| l.as_f64()),
                ) {
                    (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                    _ => a.cmp(b),
                }
            });
            let pick = if agg.func == AggFunc::Min {
                terms.first()
            } else {
                terms.last()
            };
            pick.map(|t| (*t).clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::AggSpec;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn sample() -> Relation {
        let mut r = Relation::new(vec![v("g"), v("x")]);
        for (g, x) in [("a", 1), ("a", 3), ("b", 5), ("b", 5), ("b", 7)] {
            r.push(vec![Some(Term::literal(g)), Some(Term::integer(x))]);
        }
        r
    }

    fn spec(func: AggFunc, arg: Option<&str>, distinct: bool) -> AggSpec {
        AggSpec {
            func,
            arg: arg.map(v),
            distinct,
            as_var: v("out"),
        }
    }

    fn agg_one(func: AggFunc, arg: Option<&str>, distinct: bool) -> Vec<(String, String)> {
        let out = aggregate_relation(
            &sample(),
            &[v("g")],
            &[v("g")],
            &[spec(func, arg, distinct)],
        );
        out.rows()
            .iter()
            .map(|r| {
                (
                    r[0].as_ref().unwrap().as_literal().unwrap().lexical.clone(),
                    r[1].as_ref().unwrap().as_literal().unwrap().lexical.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn count_per_group() {
        assert_eq!(
            agg_one(AggFunc::Count, None, false),
            vec![("a".into(), "2".into()), ("b".into(), "3".into())]
        );
        assert_eq!(
            agg_one(AggFunc::Count, Some("x"), true),
            vec![("a".into(), "2".into()), ("b".into(), "2".into())]
        );
    }

    #[test]
    fn sum_avg_min_max() {
        assert_eq!(
            agg_one(AggFunc::Sum, Some("x"), false),
            vec![("a".into(), "4".into()), ("b".into(), "17".into())]
        );
        assert_eq!(
            agg_one(AggFunc::Avg, Some("x"), false),
            vec![
                ("a".into(), "2".into()),
                ("b".into(), "5.666666666666667".into())
            ]
        );
        assert_eq!(
            agg_one(AggFunc::Min, Some("x"), false),
            vec![("a".into(), "1".into()), ("b".into(), "5".into())]
        );
        assert_eq!(
            agg_one(AggFunc::Max, Some("x"), false),
            vec![("a".into(), "3".into()), ("b".into(), "7".into())]
        );
        // DISTINCT sum: b's duplicate 5 counted once.
        assert_eq!(
            agg_one(AggFunc::Sum, Some("x"), true),
            vec![("a".into(), "4".into()), ("b".into(), "12".into())]
        );
    }

    #[test]
    fn ungrouped_aggregate_over_empty_input() {
        let r = Relation::new(vec![v("x")]);
        let out = aggregate_relation(&r, &[], &[], &[spec(AggFunc::Count, None, false)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Some(Term::integer(0)));
    }
}
