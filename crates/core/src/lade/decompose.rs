//! Query decomposition — Algorithm 2 of the paper.
//!
//! Given the GJV set, partition the branch's triple patterns into
//! subqueries such that (i) every pattern in a subquery has the same
//! relevant sources and (ii) no two non-type patterns in one subquery share
//! a GJV ("once a common variable is found to be a GJV, the triple
//! patterns cannot be combined in the same subquery"). The traversal is
//! rooted at each GJV in turn; the decomposition with the lowest estimated
//! cost wins.

use crate::lade::gjv::{is_type_pattern, GjvAnalysis};
use lusail_federation::EndpointId;
use lusail_rdf::fxhash::FxHashSet;
use lusail_sparql::ast::{TermPattern, TriplePattern, Variable};

/// A subquery under construction: indices into the branch's pattern list.
#[derive(Debug, Clone, PartialEq)]
pub struct SubqueryDraft {
    /// Pattern indices (order preserved from discovery).
    pub patterns: Vec<usize>,
    /// The common source set of all patterns in this draft.
    pub sources: Vec<EndpointId>,
}

/// A complete decomposition of one branch.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    pub subqueries: Vec<SubqueryDraft>,
    /// The estimated cost under which this decomposition won.
    pub cost: f64,
}

/// Decompose `patterns` (with per-pattern `sources`) under the GJV set.
///
/// `estimate` scores a candidate decomposition; Algorithm 2 keeps the
/// minimum (the engine wires SAPE's cardinality model in here).
pub fn decompose(
    patterns: &[TriplePattern],
    sources: &[Vec<EndpointId>],
    analysis: &GjvAnalysis,
    estimate: &dyn Fn(&[SubqueryDraft]) -> f64,
) -> Decomposition {
    // Line 3: no GJVs → the whole branch is one subquery (provided all
    // sources agree; with no GJVs, source mismatch cannot occur because a
    // mismatch on any shared variable *makes* it a GJV — but completely
    // disconnected patterns can still differ, so split by source set).
    if analysis.gjvs.is_empty() {
        let drafts = group_by_sources(patterns, sources);
        let cost = estimate(&drafts);
        return Decomposition {
            subqueries: drafts,
            cost,
        };
    }

    let mut best: Option<Decomposition> = None;
    for root in &analysis.gjvs {
        let drafts = decompose_from_root(patterns, sources, analysis, root);
        let cost = estimate(&drafts);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Decomposition {
                subqueries: drafts,
                cost,
            });
        }
    }
    best.expect("at least one GJV root")
}

/// With no GJVs, patterns group by their source sets (one subquery per
/// distinct source set keeps the "same relevant endpoints" invariant).
fn group_by_sources(patterns: &[TriplePattern], sources: &[Vec<EndpointId>]) -> Vec<SubqueryDraft> {
    let mut drafts: Vec<SubqueryDraft> = Vec::new();
    for (i, srcs) in sources.iter().enumerate().take(patterns.len()) {
        match drafts.iter_mut().find(|d| &d.sources == srcs) {
            Some(d) => d.patterns.push(i),
            None => drafts.push(SubqueryDraft {
                patterns: vec![i],
                sources: srcs.clone(),
            }),
        }
    }
    drafts
}

/// One traversal of Algorithm 2 rooted at `root`.
fn decompose_from_root(
    patterns: &[TriplePattern],
    sources: &[Vec<EndpointId>],
    analysis: &GjvAnalysis,
    root: &Variable,
) -> Vec<SubqueryDraft> {
    // The query graph: vertices are term-pattern keys; edges are the
    // non-type patterns (type patterns are attached afterwards).
    let edge_idxs: Vec<usize> = (0..patterns.len())
        .filter(|&i| !is_type_pattern(&patterns[i]))
        .collect();
    let vertex = |slot: &TermPattern| -> String {
        match slot {
            TermPattern::Var(v) => format!("?{}", v.name()),
            TermPattern::Term(t) => t.to_string(),
        }
    };

    let mut visited: FxHashSet<usize> = FxHashSet::default();
    let mut drafts: Vec<SubqueryDraft> = Vec::new();
    let mut stack: Vec<String> = vec![format!("?{}", root.name())];
    let mut seen_nodes: FxHashSet<String> = FxHashSet::default();

    // Process connected component(s); restart from any unvisited edge so
    // disconnected query subgraphs are still decomposed.
    loop {
        while let Some(vrtx) = stack.pop() {
            let incident: Vec<usize> = edge_idxs
                .iter()
                .copied()
                .filter(|&i| {
                    !visited.contains(&i)
                        && (vertex(&patterns[i].subject) == vrtx
                            || vertex(&patterns[i].object) == vrtx)
                })
                .collect();
            for e in incident {
                if visited.contains(&e) {
                    continue;
                }
                let parent = find_parent(&drafts, patterns, &vrtx, &vertex);
                let placed = match parent {
                    Some(pi) if can_add(&drafts[pi], e, patterns, sources, analysis) => {
                        drafts[pi].patterns.push(e);
                        true
                    }
                    _ => false,
                };
                if !placed {
                    drafts.push(SubqueryDraft {
                        patterns: vec![e],
                        sources: sources[e].clone(),
                    });
                }
                visited.insert(e);
                // Push the far end of the edge.
                for slot in [&patterns[e].subject, &patterns[e].object] {
                    let node = vertex(slot);
                    if node != vrtx && seen_nodes.insert(node.clone()) {
                        stack.push(node);
                    }
                }
            }
        }
        match edge_idxs.iter().find(|i| !visited.contains(i)) {
            Some(&e) => {
                stack.push(vertex(&patterns[e].subject));
                seen_nodes.insert(vertex(&patterns[e].subject));
            }
            None => break,
        }
    }

    merge_drafts(&mut drafts, patterns, analysis);
    attach_type_patterns(&mut drafts, patterns, sources);
    drafts
}

/// The first draft containing an edge incident to `vrtx`
/// (`getParentSubquery` in the paper's pseudocode).
fn find_parent(
    drafts: &[SubqueryDraft],
    patterns: &[TriplePattern],
    vrtx: &str,
    vertex: &dyn Fn(&TermPattern) -> String,
) -> Option<usize> {
    drafts.iter().position(|d| {
        d.patterns
            .iter()
            .any(|&i| vertex(&patterns[i].subject) == vrtx || vertex(&patterns[i].object) == vrtx)
    })
}

/// `canBeAddedToSubQ`: same sources and no GJV shared with any pattern
/// already in the draft.
fn can_add(
    draft: &SubqueryDraft,
    edge: usize,
    patterns: &[TriplePattern],
    sources: &[Vec<EndpointId>],
    analysis: &GjvAnalysis,
) -> bool {
    if draft.sources != sources[edge] {
        return false;
    }
    !conflicts(&draft.patterns, edge, patterns, analysis)
}

/// Would adding `edge` put two patterns sharing a GJV in the same subquery?
fn conflicts(
    members: &[usize],
    edge: usize,
    patterns: &[TriplePattern],
    analysis: &GjvAnalysis,
) -> bool {
    let edge_vars = patterns[edge].variables();
    members.iter().any(|&m| {
        patterns[m]
            .variables()
            .iter()
            .any(|v| edge_vars.contains(v) && analysis.is_gjv(v))
    })
}

/// The merging phase: fuse drafts that share a variable, have the same
/// sources, and create no GJV conflict.
fn merge_drafts(
    drafts: &mut Vec<SubqueryDraft>,
    patterns: &[TriplePattern],
    analysis: &GjvAnalysis,
) {
    let share_var = |a: &SubqueryDraft, b: &SubqueryDraft| -> bool {
        a.patterns.iter().any(|&i| {
            b.patterns.iter().any(|&j| {
                patterns[i]
                    .variables()
                    .iter()
                    .any(|v| patterns[j].mentions(v))
            })
        })
    };
    let mut changed = true;
    while changed {
        changed = false;
        'outer: for a in 0..drafts.len() {
            for b in a + 1..drafts.len() {
                if drafts[a].sources == drafts[b].sources
                    && share_var(&drafts[a], &drafts[b])
                    && drafts[b]
                        .patterns
                        .iter()
                        .all(|&e| !conflicts(&drafts[a].patterns, e, patterns, analysis))
                {
                    let moved = drafts.remove(b);
                    drafts[a].patterns.extend(moved.patterns);
                    changed = true;
                    break 'outer;
                }
            }
        }
    }
}

/// Attach each `⟨?v, rdf:type, C⟩` pattern to a draft that binds `?v` with
/// the same source set; otherwise it becomes its own subquery (this is how
/// the paper's LUBM Q3 splits into "students of university0" and the
/// all-endpoint type pattern).
fn attach_type_patterns(
    drafts: &mut Vec<SubqueryDraft>,
    patterns: &[TriplePattern],
    sources: &[Vec<EndpointId>],
) {
    for (i, tp) in patterns.iter().enumerate() {
        if !is_type_pattern(tp) {
            continue;
        }
        let v = tp
            .subject
            .as_var()
            .expect("type pattern has variable subject");
        let home = drafts.iter().position(|d| {
            d.sources == sources[i] && d.patterns.iter().any(|&j| patterns[j].mentions(v))
        });
        match home {
            Some(h) => drafts[h].patterns.push(i),
            None => drafts.push(SubqueryDraft {
                patterns: vec![i],
                sources: sources[i].clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::vocab;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let slot = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::var(v)
            } else {
                TermPattern::iri(x)
            }
        };
        TriplePattern::new(slot(s), slot(p), slot(o))
    }

    fn flat_cost(drafts: &[SubqueryDraft]) -> f64 {
        drafts.len() as f64
    }

    /// The paper's Q_a (Figure 2): 8 patterns, GJVs {?U, ?P} (Figure 6).
    fn qa() -> Vec<TriplePattern> {
        let ub = |l: &str| format!("{}{l}", vocab::ub::NS);
        vec![
            tp("?S", &ub("advisor"), "?P"),                        // 0
            tp("?P", &ub("teacherOf"), "?C"),                      // 1
            tp("?S", &ub("takesCourse"), "?C"),                    // 2
            tp("?P", &ub("PhDDegreeFrom"), "?U"),                  // 3
            tp("?S", vocab::rdf::TYPE, &ub("GraduateStudent")),    // 4
            tp("?P", vocab::rdf::TYPE, &ub("AssociateProfessor")), // 5
            tp("?C", vocab::rdf::TYPE, &ub("GraduateCourse")),     // 6
            tp("?U", &ub("address"), "?A"),                        // 7
        ]
    }

    #[test]
    fn no_gjvs_single_subquery() {
        let pats = qa();
        let sources = vec![vec![0, 1]; pats.len()];
        let d = decompose(&pats, &sources, &GjvAnalysis::default(), &flat_cost);
        assert_eq!(d.subqueries.len(), 1);
        assert_eq!(d.subqueries[0].patterns.len(), 8);
    }

    #[test]
    fn no_gjvs_different_sources_split() {
        // Disconnected patterns with disjoint sources stay apart.
        let pats = vec![tp("?a", "http://p", "?b"), tp("?c", "http://q", "?d")];
        let sources = vec![vec![0], vec![1]];
        let d = decompose(&pats, &sources, &GjvAnalysis::default(), &flat_cost);
        assert_eq!(d.subqueries.len(), 2);
    }

    #[test]
    fn qa_with_paper_gjvs_matches_figure6() {
        let pats = qa();
        let sources = vec![vec![0, 1]; pats.len()];
        let analysis = GjvAnalysis {
            gjvs: vec![Variable::new("U"), Variable::new("P")],
            ..Default::default()
        };
        let d = decompose(&pats, &sources, &analysis, &flat_cost);
        // With GJVs {?U, ?P}, the four non-type patterns split into four
        // groups minus one mergeable pair (takesCourse joins either the
        // advisor or the teacherOf group via non-global ?S / ?C), giving
        // the 4-subquery decompositions of Figure 6.
        assert_eq!(d.subqueries.len(), 4, "{:?}", d.subqueries);

        // No subquery may contain two non-type patterns sharing ?P or ?U.
        for sq in &d.subqueries {
            let non_type: Vec<usize> = sq
                .patterns
                .iter()
                .copied()
                .filter(|&i| !is_type_pattern(&pats[i]))
                .collect();
            for (a, &i) in non_type.iter().enumerate() {
                for &j in &non_type[a + 1..] {
                    for v in ["U", "P"] {
                        let v = Variable::new(v);
                        assert!(
                            !(pats[i].mentions(&v) && pats[j].mentions(&v)),
                            "patterns {i} and {j} share GJV {v} in one subquery"
                        );
                    }
                }
            }
        }

        // Every pattern is assigned exactly once.
        let mut all: Vec<usize> = d
            .subqueries
            .iter()
            .flat_map(|s| s.patterns.clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());

        // takesCourse (2) merges with either advisor (0, via local ?S) or
        // teacherOf (1, via local ?C) — both appear in Figure 6.
        let home = |idx: usize| d.subqueries.iter().position(|s| s.patterns.contains(&idx));
        assert!(home(2) == home(0) || home(2) == home(1));
        // PhDDegreeFrom (3) and address (7) share GJV ?U → different.
        assert_ne!(home(3), home(7));
        // advisor (0) and teacherOf (1) share GJV ?P → different.
        assert_ne!(home(0), home(1));
        // PhDDegreeFrom conflicts with both advisor and teacherOf on ?P.
        assert_ne!(home(3), home(0));
        assert_ne!(home(3), home(1));
    }

    #[test]
    fn type_pattern_with_different_sources_becomes_own_subquery() {
        // The LUBM Q3 situation: the type pattern is relevant everywhere,
        // the degree pattern only where university0 is referenced.
        let ub = |l: &str| format!("{}{l}", vocab::ub::NS);
        let pats = vec![
            tp(
                "?x",
                &ub("undergraduateDegreeFrom"),
                "http://univ0.example.org/univ",
            ),
            tp("?x", vocab::rdf::TYPE, &ub("GraduateStudent")),
        ];
        let sources = vec![vec![0], vec![0, 1, 2, 3]];
        // Sources differ → detect_gjvs would flag ?x; emulate that.
        let analysis = GjvAnalysis {
            gjvs: vec![Variable::new("x")],
            ..Default::default()
        };
        let d = decompose(&pats, &sources, &analysis, &flat_cost);
        assert_eq!(d.subqueries.len(), 2);
        let type_sq = d
            .subqueries
            .iter()
            .find(|s| s.patterns.contains(&1))
            .unwrap();
        assert_eq!(type_sq.patterns, vec![1]);
        assert_eq!(type_sq.sources, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cost_selects_cheaper_root() {
        // Two GJVs produce different decompositions; the estimate function
        // prefers fewer subqueries — whichever root achieves that wins.
        let pats = qa();
        let sources = vec![vec![0, 1]; pats.len()];
        let analysis = GjvAnalysis {
            gjvs: vec![Variable::new("U"), Variable::new("P")],
            ..Default::default()
        };
        let d1 = decompose(&pats, &sources, &analysis, &flat_cost);
        // An estimate preferring MANY subqueries inverts the choice (or at
        // least never yields a worse flat cost than the flat-cost winner).
        let d2 = decompose(&pats, &sources, &analysis, &|drafts| -(drafts.len() as f64));
        assert!(d1.subqueries.len() <= d2.subqueries.len());
    }

    #[test]
    fn merging_reunites_fragments() {
        // a-p-b, b-q-c, a-r-c: no GJVs, same sources → one subquery after
        // merging regardless of traversal order.
        let pats = vec![
            tp("?a", "http://p", "?b"),
            tp("?b", "http://q", "?c"),
            tp("?a", "http://r", "?c"),
        ];
        let sources = vec![vec![0, 1]; 3];
        let d = decompose(&pats, &sources, &GjvAnalysis::default(), &flat_cost);
        assert_eq!(d.subqueries.len(), 1);
    }
}
