//! Global join variable detection — Algorithm 1 of the paper.

use crate::cache::{pattern_key, QueryCache};
use crate::error::EngineError;
use crate::run::RunContext;
use lusail_federation::{EndpointError, EndpointId, Federation, RequestHandler};
use lusail_rdf::fxhash::FxHashSet;
use lusail_rdf::vocab;
use lusail_sparql::ast::{
    GraphPattern, Projection, Query, SelectQuery, TermPattern, TriplePattern, Variable,
};

/// The result of GJV analysis for one conjunctive branch.
#[derive(Debug, Clone, Default)]
pub struct GjvAnalysis {
    /// The global join variables, in detection order.
    pub gjvs: Vec<Variable>,
    /// How many check queries were actually sent (cache misses).
    pub check_queries_sent: usize,
    /// How many check answers came from the cache.
    pub check_cache_hits: usize,
}

impl GjvAnalysis {
    /// Is `v` global?
    pub fn is_gjv(&self, v: &Variable) -> bool {
        self.gjvs.contains(v)
    }
}

/// Is this pattern an `rdf:type` pattern with constant class — `⟨?v, rdf:type, C⟩`?
///
/// Type patterns are not themselves checked for locality; instead they are
/// *used by* the check queries to narrow the candidate instances
/// (Figure 5: "If there is a triple pattern setting a type for v, we use it
/// to limit the check"), and the decomposition attaches them to a subquery
/// that binds their variable.
pub fn is_type_pattern(tp: &TriplePattern) -> bool {
    matches!(&tp.predicate, TermPattern::Term(t) if t.as_iri() == Some(vocab::rdf::TYPE))
        && tp.subject.is_var()
        && !tp.object.is_var()
}

/// Detect the global join variables of a conjunction (Algorithm 1).
///
/// `patterns` are the branch's required triple patterns and `sources[i]`
/// the relevant endpoints of `patterns[i]` (from source selection).
pub fn detect_gjvs(
    federation: &Federation,
    handler: &RequestHandler,
    cache: Option<&QueryCache>,
    patterns: &[TriplePattern],
    sources: &[Vec<EndpointId>],
    ctx: &RunContext,
) -> Result<GjvAnalysis, EngineError> {
    detect_gjvs_with(federation, handler, cache, patterns, sources, false, ctx)
}

/// [`detect_gjvs`] with the paranoid-locality switch (see
/// `LusailConfig::paranoid_locality`): when `paranoid` is set, any join
/// variable whose patterns are relevant to more than one endpoint is
/// declared global without instance checks.
///
/// Check queries respect `ctx`: under the partial policy an unanswerable
/// check conservatively declares the variable global (sound by Lemma 2)
/// with a warning, and its outcome is not cached.
#[allow(clippy::too_many_arguments)]
pub fn detect_gjvs_with(
    federation: &Federation,
    handler: &RequestHandler,
    cache: Option<&QueryCache>,
    patterns: &[TriplePattern],
    sources: &[Vec<EndpointId>],
    paranoid: bool,
    ctx: &RunContext,
) -> Result<GjvAnalysis, EngineError> {
    let mut analysis = GjvAnalysis::default();
    let type_of = type_patterns_by_var(patterns);

    // Variables appearing in predicate position join in a way our locality
    // checks cannot certify; conservatively global (Lemma 2 keeps this
    // correct).
    let mut pred_vars: FxHashSet<&Variable> = FxHashSet::default();
    for tp in patterns {
        if let TermPattern::Var(v) = &tp.predicate {
            pred_vars.insert(v);
        }
    }

    // Join entities: variables in ≥ 2 non-type patterns (subject/object
    // slots).
    let vars = join_variables(patterns);

    // The check-query batch is assembled across all variables, then sent in
    // one parallel wave through the ERH.
    struct PendingCheck {
        var: Variable,
        query: Query,
        key: String,
        ep: EndpointId,
    }
    let mut pending: Vec<PendingCheck> = Vec::new();

    'vars: for var in vars {
        if pred_vars.contains(&var) {
            analysis.gjvs.push(var.clone());
            continue;
        }
        let occ: Vec<usize> = occurrences(patterns, &var);

        // Line 8–11: differing source sets make the variable global with no
        // endpoint communication at all. In paranoid mode, any
        // multi-endpoint pair does too (instances may repeat across
        // endpoints — §3.3 Case 2).
        for (a, &i) in occ.iter().enumerate() {
            for &j in &occ[a + 1..] {
                if sources[i] != sources[j] || (paranoid && sources[i].len() > 1) {
                    analysis.gjvs.push(var.clone());
                    continue 'vars;
                }
            }
        }

        // Lines 13–16: formulate instance checks.
        let subj_occ: Vec<usize> = occ
            .iter()
            .copied()
            .filter(|&i| patterns[i].subject_is(&var))
            .collect();
        let obj_occ: Vec<usize> = occ
            .iter()
            .copied()
            .filter(|&i| patterns[i].object_is(&var))
            .collect();

        let mut checks: Vec<(usize, usize)> = Vec::new();
        if subj_occ.len() >= 2 {
            // subject-only pairs: both directions.
            for (a, &i) in subj_occ.iter().enumerate() {
                for &j in &subj_occ[a + 1..] {
                    checks.push((i, j));
                    checks.push((j, i));
                }
            }
        }
        if obj_occ.len() >= 2 {
            for (a, &i) in obj_occ.iter().enumerate() {
                for &j in &obj_occ[a + 1..] {
                    checks.push((i, j));
                    checks.push((j, i));
                }
            }
        }
        // object × subject: one direction — does every instance bound as
        // *object* in tp_i appear locally as *subject* in tp_j?
        for &i in &obj_occ {
            for &j in &subj_occ {
                if i != j {
                    checks.push((i, j));
                }
            }
        }

        let type_tp = type_of
            .iter()
            .find(|(v, _)| v == &var)
            .map(|(_, idx)| &patterns[*idx]);
        for (i, j) in checks {
            let query = check_query(&var, &patterns[i], &patterns[j], type_tp);
            let key = check_key(&var, &patterns[i], &patterns[j]);
            for &ep in &sources[i] {
                pending.push(PendingCheck {
                    var: var.clone(),
                    query: query.clone(),
                    key: key.clone(),
                    ep,
                });
            }
        }
    }

    // Resolve from cache, then send the misses in parallel.
    let mut to_send: Vec<usize> = Vec::new();
    let mut hits: Vec<(Variable, bool)> = Vec::new();
    for (idx, p) in pending.iter().enumerate() {
        match cache.and_then(|c| c.get_check(&p.key, p.ep)) {
            Some(nonempty) => {
                analysis.check_cache_hits += 1;
                hits.push((p.var.clone(), nonempty));
            }
            None => to_send.push(idx),
        }
    }
    analysis.check_queries_sent = to_send.len();
    let answers = handler.map_cancellable(
        to_send.clone(),
        ctx.deadline.clone(),
        |_| Err(EndpointError::deadline("locality check")),
        |idx| {
            let p = &pending[idx];
            federation
                .endpoint(p.ep)
                .select_within(&p.query, ctx.deadline.clone())
                .map(|rel| !rel.is_empty())
        },
    );
    for (idx, nonempty) in to_send.into_iter().zip(answers) {
        let p = &pending[idx];
        // An unanswerable check conservatively reports "instances escape
        // locality" → the variable becomes global, which is always sound.
        let what = format!("locality check for ?{}", p.var.name());
        let (nonempty, degraded) = ctx.absorb_flagged(&what, true, nonempty)?;
        if let Some(c) = cache {
            if !degraded {
                c.put_check(p.key.clone(), p.ep, nonempty);
            }
        }
        hits.push((p.var.clone(), nonempty));
    }
    for (var, nonempty) in hits {
        if nonempty && !analysis.gjvs.contains(&var) {
            analysis.gjvs.push(var);
        }
    }
    Ok(analysis)
}

/// `⟨?v, rdf:type, C⟩` patterns indexed by variable.
fn type_patterns_by_var(patterns: &[TriplePattern]) -> Vec<(Variable, usize)> {
    patterns
        .iter()
        .enumerate()
        .filter(|(_, tp)| is_type_pattern(tp))
        .filter_map(|(i, tp)| tp.subject.as_var().map(|v| (v.clone(), i)))
        .collect()
}

/// Variables occurring (as subject or object) in at least two non-type
/// patterns.
fn join_variables(patterns: &[TriplePattern]) -> Vec<Variable> {
    let mut seen: Vec<(Variable, usize)> = Vec::new();
    for tp in patterns.iter().filter(|tp| !is_type_pattern(tp)) {
        for slot in [&tp.subject, &tp.object] {
            if let TermPattern::Var(v) = slot {
                match seen.iter_mut().find(|(x, _)| x == v) {
                    Some((_, n)) => *n += 1,
                    None => seen.push((v.clone(), 1)),
                }
            }
        }
        // A variable used twice within one pattern still counts once per
        // pattern for join purposes; correct the double count.
        if tp.subject.as_var().is_some() && tp.subject == tp.object {
            if let Some((_, n)) = seen
                .iter_mut()
                .find(|(x, _)| Some(x) == tp.subject.as_var())
            {
                *n -= 1;
            }
        }
    }
    seen.into_iter()
        .filter(|(_, n)| *n >= 2)
        .map(|(v, _)| v)
        .collect()
}

fn occurrences(patterns: &[TriplePattern], v: &Variable) -> Vec<usize> {
    patterns
        .iter()
        .enumerate()
        .filter(|(_, tp)| !is_type_pattern(tp) && (tp.subject_is(v) || tp.object_is(v)))
        .map(|(i, _)| i)
        .collect()
}

/// Build the Figure 5 check query testing whether some binding of `v` from
/// `tp_from` has no local counterpart in `tp_to`:
///
/// ```sparql
/// SELECT ?v WHERE {
///   [ ?v rdf:type T . ]             # when a type pattern narrows v
///   <tp_from> .
///   FILTER NOT EXISTS { SELECT ?v WHERE { <tp_to>' . } }
/// } LIMIT 1
/// ```
///
/// Variables of `tp_to` other than `v` are renamed fresh so the inner
/// pattern correlates on `v` alone (set difference, not a wider join).
pub fn check_query(
    v: &Variable,
    tp_from: &TriplePattern,
    tp_to: &TriplePattern,
    type_tp: Option<&TriplePattern>,
) -> Query {
    let mut outer = Vec::new();
    if let Some(t) = type_tp {
        outer.push(t.clone());
    }
    outer.push(tp_from.clone());

    let inner_tp = rename_other_vars(tp_to, v);
    let inner = SelectQuery::new(
        Projection::Vars(vec![v.clone()]),
        GraphPattern::Bgp(vec![inner_tp]),
    );
    let pattern = GraphPattern::Filter(
        Box::new(GraphPattern::Bgp(outer)),
        lusail_sparql::ast::Expression::NotExists(Box::new(GraphPattern::SubSelect(Box::new(
            inner,
        )))),
    );
    let mut select = SelectQuery::new(Projection::Vars(vec![v.clone()]), pattern);
    select.limit = Some(1);
    Query::select(select)
}

fn rename_other_vars(tp: &TriplePattern, keep: &Variable) -> TriplePattern {
    let mut n = 0;
    let mut rename = |slot: &TermPattern| -> TermPattern {
        match slot {
            TermPattern::Var(v) if v != keep => {
                n += 1;
                TermPattern::var(format!("lusail_f{n}"))
            }
            other => other.clone(),
        }
    };
    TriplePattern::new(
        rename(&tp.subject),
        rename(&tp.predicate),
        rename(&tp.object),
    )
}

/// Cache key for one check (direction-sensitive).
fn check_key(v: &Variable, tp_from: &TriplePattern, tp_to: &TriplePattern) -> String {
    format!(
        "{}|{}|{}",
        v.name(),
        pattern_key(tp_from),
        pattern_key(tp_to)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_sparql::parse_query;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let slot = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::var(v)
            } else {
                TermPattern::iri(x)
            }
        };
        TriplePattern::new(slot(s), slot(p), slot(o))
    }

    #[test]
    fn type_pattern_detection() {
        assert!(is_type_pattern(&tp("?x", vocab::rdf::TYPE, "http://c/T")));
        assert!(!is_type_pattern(&tp("?x", "http://p", "http://c/T")));
        assert!(!is_type_pattern(&tp("?x", vocab::rdf::TYPE, "?t")));
    }

    #[test]
    fn join_variable_extraction() {
        let pats = [
            tp("?s", "http://a", "?p"),
            tp("?p", "http://b", "?c"),
            tp("?s", "http://c", "?c"),
            tp("?s", vocab::rdf::TYPE, "http://T"),
            tp("?lonely", "http://d", "?x"),
        ];
        let vars = join_variables(&pats);
        assert!(vars.contains(&Variable::new("s")));
        assert!(vars.contains(&Variable::new("p")));
        assert!(vars.contains(&Variable::new("c")));
        assert!(!vars.contains(&Variable::new("lonely")));
        assert!(!vars.contains(&Variable::new("x")));
    }

    #[test]
    fn check_query_matches_figure5_shape() {
        let q = check_query(
            &Variable::new("P"),
            &tp("?S", "http://x/advisor", "?P"),
            &tp("?P", "http://x/teacherOf", "?C"),
            Some(&tp("?P", vocab::rdf::TYPE, "http://x/Prof")),
        );
        let text = lusail_sparql::serializer::serialize_query(&q);
        assert!(text.contains("FILTER NOT EXISTS"), "{text}");
        assert!(text.contains("LIMIT 1"), "{text}");
        assert!(text.contains("http://x/Prof"), "{text}");
        // Inner variables are renamed; ?C must not leak.
        assert!(!text.contains("?C"), "{text}");
        // And it must re-parse at the endpoint.
        parse_query(&text).unwrap();
    }

    #[test]
    fn check_key_is_direction_sensitive() {
        let a = tp("?x", "http://p", "?v");
        let b = tp("?v", "http://q", "?y");
        let v = Variable::new("v");
        assert_ne!(check_key(&v, &a, &b), check_key(&v, &b, &a));
    }
}
