//! LADE: Locality-Aware DEcomposition (Section 3 of the paper).
//!
//! LADE answers one question per join variable: *can every relevant
//! endpoint join these triple patterns locally without missing results?*
//! Variables for which the answer is "no" are **global join variables**
//! (GJVs); triple patterns sharing a GJV are placed in different subqueries
//! and joined at the federator. Everything else is grouped and pushed to
//! the endpoints whole.
//!
//! * [`gjv`] implements Algorithm 1: GJV detection from source-set
//!   mismatches and from instance-level check queries (Figure 5).
//! * [`decompose()`](decompose::decompose) implements Algorithm 2: building the cheapest
//!   decomposition by rooting a traversal at each GJV, then merging.

pub mod decompose;
pub mod gjv;

pub use decompose::{decompose, Decomposition, SubqueryDraft};
pub use gjv::{detect_gjvs, GjvAnalysis};
