//! Per-query execution context: the deadline budget, the result policy,
//! and the warning sink that partial-results mode fills.
//!
//! One [`RunContext`] is created per [`crate::LusailEngine::execute`] call
//! and threaded through source selection, LADE's check queries, SAPE's
//! subquery waves, and the residual MINUS evaluation. Every blocking
//! endpoint call goes through `*_within` with the context's [`Deadline`],
//! and every fallible endpoint result comes back through
//! [`RunContext::absorb`], which decides — per the configured
//! [`ResultPolicy`] — whether a failure aborts the query or degrades it
//! to a warning.

use crate::budget::{MemoryBudget, MemoryPhase};
use crate::config::{LusailConfig, ResultPolicy};
use crate::error::EngineError;
pub use lusail_federation::{CancelReason, CancelToken};
use lusail_federation::{Deadline, EndpointError, FailureKind};
use lusail_sparql::solution::row_wire_size;
use lusail_sparql::Relation;
use std::sync::Mutex;
use std::time::Duration;

/// How many rows [`RunContext::admit_relation`] charges per budget check.
/// The accounted peak can overshoot the memory budget by at most one
/// chunk's bytes before the overflow is handled.
pub const ADMISSION_CHUNK_ROWS: usize = 256;

/// One piece of work that partial-results mode skipped, naming the
/// endpoint that was unreachable and the subquery (or probe) affected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionWarning {
    /// The endpoint that could not be reached.
    pub endpoint: String,
    /// What was being executed against it (a subquery label or probe
    /// description).
    pub subquery: String,
    /// The underlying failure, e.g. "giving up after 3 attempts: …".
    pub message: String,
}

impl std::fmt::Display for ExecutionWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "endpoint {:?} skipped for {}: {}",
            self.endpoint, self.subquery, self.message
        )
    }
}

/// The execution context of one query.
#[derive(Debug)]
pub struct RunContext {
    /// Absolute time budget for the whole query.
    pub deadline: Deadline,
    /// Fail-fast or partial-results.
    pub policy: ResultPolicy,
    /// The configured budget, echoed in [`EngineError::Timeout`].
    budget: Option<Duration>,
    /// Memory accounting for materialized intermediate state.
    pub memory: MemoryBudget,
    /// Cap on rows admitted from any single endpoint response.
    max_result_rows: Option<usize>,
    warnings: Mutex<Vec<ExecutionWarning>>,
}

impl RunContext {
    /// The context for one query under `config`: the deadline starts now.
    pub fn new(config: &LusailConfig) -> Self {
        let deadline = match config.timeout {
            Some(t) => Deadline::within(t),
            None => Deadline::none(),
        };
        RunContext {
            deadline,
            policy: config.result_policy,
            budget: config.timeout,
            memory: MemoryBudget::new(config.memory_budget),
            max_result_rows: config.max_result_rows,
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// A context assembled from externally owned parts — the federation
    /// service path, where the deadline starts at admission, the memory
    /// ledger is carved from a shared [`crate::budget::MemoryPool`], and
    /// the row cap is the service's, not the engine's.
    pub fn with_parts(
        policy: ResultPolicy,
        timeout: Option<Duration>,
        memory: MemoryBudget,
        max_result_rows: Option<usize>,
    ) -> Self {
        RunContext {
            deadline: match timeout {
                Some(t) => Deadline::within(t),
                None => Deadline::none(),
            },
            policy,
            budget: timeout,
            memory,
            max_result_rows,
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// A fail-fast context with an explicit deadline (used by the
    /// baselines, which have no partial mode).
    pub fn fail_fast(deadline: Deadline, budget: Option<Duration>) -> Self {
        RunContext {
            deadline,
            policy: ResultPolicy::FailFast,
            budget,
            memory: MemoryBudget::unbounded(),
            max_result_rows: None,
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// No deadline, fail-fast: for tests and internal probes.
    pub fn unbounded() -> Self {
        RunContext::fail_fast(Deadline::none(), None)
    }

    /// Attach a cancellation token: from here on every deadline check —
    /// [`check`](Self::check), `map_cancellable`, per-attempt clamps,
    /// retry/backoff sleeps — doubles as a cancellation point.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.deadline = self.deadline.with_token(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.deadline.token()
    }

    /// Why this query was cancelled, if its token tripped.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        self.deadline.cancel_reason()
    }

    /// The timeout error carrying the configured budget.
    pub fn timeout_error(&self) -> EngineError {
        EngineError::Timeout(self.budget.unwrap_or_default())
    }

    /// Fail once the budget is spent: [`EngineError::Cancelled`] when the
    /// token tripped (cancellation beats the clock — the reason explains
    /// *why* the query died, which an undifferentiated timeout would
    /// hide), [`EngineError::Timeout`] for plain deadline expiry.
    pub fn check(&self) -> Result<(), EngineError> {
        if let Some(reason) = self.deadline.cancel_reason() {
            Err(EngineError::Cancelled(reason))
        } else if self.deadline.expired() {
            Err(self.timeout_error())
        } else {
            Ok(())
        }
    }

    /// Record a warning (partial mode).
    pub fn warn(&self, warning: ExecutionWarning) {
        self.warnings
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(warning);
    }

    /// Drain the accumulated warnings, deduplicated per (endpoint,
    /// subquery): a flapping endpoint that fails the same phase many
    /// times (e.g. once per bound-join chunk, or once per failover
    /// attempt) yields one warning, not a flood. The first occurrence
    /// wins, so the message describes the initial failure, and relative
    /// order is preserved.
    pub fn take_warnings(&self) -> Vec<ExecutionWarning> {
        let raw = std::mem::take(&mut *self.warnings.lock().unwrap_or_else(|p| p.into_inner()));
        let mut seen: Vec<(String, String)> = Vec::new();
        raw.into_iter()
            .filter(|w| {
                let key = (w.endpoint.clone(), w.subquery.clone());
                if seen.contains(&key) {
                    false
                } else {
                    seen.push(key);
                    true
                }
            })
            .collect()
    }

    /// Resolve one endpoint result under the policy, additionally
    /// reporting whether the value is degraded (a substituted default):
    ///
    /// * `Ok(v)` passes through;
    /// * a deadline failure becomes [`EngineError::Timeout`];
    /// * under [`ResultPolicy::Partial`], a skippable failure (transport
    ///   or open breaker) records a warning naming the endpoint and
    ///   `what`, and substitutes `default`;
    /// * anything else aborts with [`EngineError::Endpoint`].
    ///
    /// Degraded values must not be written to the analysis cache: they
    /// describe the outage, not the data.
    pub fn absorb_flagged<T>(
        &self,
        what: &str,
        default: T,
        result: Result<T, EndpointError>,
    ) -> Result<(T, bool), EngineError> {
        match result {
            Ok(v) => Ok((v, false)),
            Err(e) if e.kind == FailureKind::Cancelled => {
                // Prefer the token's reason; a bare Cancelled error from a
                // transport without the token in hand still maps sensibly.
                let reason = self
                    .deadline
                    .cancel_reason()
                    .unwrap_or(CancelReason::AdminCancelled);
                Err(EngineError::Cancelled(reason))
            }
            Err(e) if e.kind == FailureKind::Deadline => match self.deadline.cancel_reason() {
                Some(reason) => Err(EngineError::Cancelled(reason)),
                None => Err(self.timeout_error()),
            },
            Err(e) if self.policy == ResultPolicy::Partial && e.is_skippable() => {
                self.warn(ExecutionWarning {
                    endpoint: e.endpoint,
                    subquery: what.to_string(),
                    message: e.message,
                });
                Ok((default, true))
            }
            Err(e) => Err(EngineError::Endpoint(e)),
        }
    }

    /// The structured budget-exhaustion error for fail-fast mode.
    pub fn budget_error(&self, what: &str, endpoint: &str) -> EngineError {
        EngineError::BudgetExceeded {
            limit: self.memory.limit().unwrap_or(0),
            subquery: what.to_string(),
            endpoint: endpoint.to_string(),
        }
    }

    /// Admit one endpoint response into the query's accounted memory.
    ///
    /// Enforcement happens in two layers, mirroring how the HTTP client
    /// treats a real wire response:
    ///
    /// * the `--max-result-rows` cap rejects (fail-fast) or truncates
    ///   (partial) an oversized response outright;
    /// * the memory budget is charged in [`ADMISSION_CHUNK_ROWS`]-row
    ///   chunks, so the accounted peak overshoots the limit by at most
    ///   one chunk. On overflow, fail-fast aborts with
    ///   [`EngineError::BudgetExceeded`] naming `what` and `endpoint`;
    ///   partial mode keeps the rows already admitted and records an
    ///   [`ExecutionWarning`].
    ///
    /// Admitted bytes stay charged for the rest of the query (wave
    /// results are live until the global join consumes them); the ledger
    /// dies with the context.
    pub fn admit_relation(
        &self,
        what: &str,
        endpoint: &str,
        phase: MemoryPhase,
        mut rel: Relation,
    ) -> Result<Relation, EngineError> {
        if let Some(cap) = self.max_result_rows {
            if rel.len() > cap {
                match self.policy {
                    ResultPolicy::FailFast => {
                        return Err(EngineError::Endpoint(EndpointError::rejected(
                            endpoint,
                            format!(
                                "result of {} rows exceeds the --max-result-rows cap of {cap}",
                                rel.len()
                            ),
                        )));
                    }
                    ResultPolicy::Partial => {
                        let total = rel.len();
                        rel.rows_mut().truncate(cap);
                        self.warn(ExecutionWarning {
                            endpoint: endpoint.to_string(),
                            subquery: what.to_string(),
                            message: format!(
                                "result truncated from {total} to {cap} rows (--max-result-rows)"
                            ),
                        });
                    }
                }
            }
        }

        // Under --partial a single response may claim at most half of the
        // budget still free when it arrives: a result bomb then degrades
        // only itself, leaving headroom for later subqueries and the join
        // phase instead of starving every admission after it. Fail-fast
        // admits up to the full budget — exhaustion aborts the query
        // anyway, so holding back headroom would only lower the effective
        // limit.
        let allowance = match self.policy {
            ResultPolicy::Partial if self.memory.is_bounded() => self.memory.remaining() / 2,
            _ => usize::MAX,
        };

        // Header charge, then row chunks.
        let mut pending = 8 * rel.vars().len();
        let mut admitted_rows = 0;
        let mut charged = 0;
        let mut exhausted = false;
        while admitted_rows < rel.len() {
            let chunk_end = (admitted_rows + ADMISSION_CHUNK_ROWS).min(rel.len());
            pending += rel.rows()[admitted_rows..chunk_end]
                .iter()
                .map(|r| row_wire_size(r))
                .sum::<usize>();
            if charged + pending > allowance || self.memory.try_charge(phase, pending).is_err() {
                exhausted = true;
                break;
            }
            charged += pending;
            pending = 0;
            admitted_rows = chunk_end;
        }
        if !exhausted && pending > 0 {
            // Empty relation: only the header was pending.
            exhausted = self.memory.try_charge(phase, pending).is_err();
        }
        if exhausted {
            match self.policy {
                ResultPolicy::FailFast => {
                    self.memory.release(charged);
                    return Err(self.budget_error(what, endpoint));
                }
                ResultPolicy::Partial => {
                    let total = rel.len();
                    rel.rows_mut().truncate(admitted_rows);
                    self.warn(ExecutionWarning {
                        endpoint: endpoint.to_string(),
                        subquery: what.to_string(),
                        message: format!(
                            "memory budget exhausted: result truncated from {total} to \
                             {admitted_rows} rows"
                        ),
                    });
                }
            }
        }
        Ok(rel)
    }

    /// [`RunContext::absorb_flagged`] without the degraded flag.
    pub fn absorb<T>(
        &self,
        what: &str,
        default: T,
        result: Result<T, EndpointError>,
    ) -> Result<T, EngineError> {
        self.absorb_flagged(what, default, result).map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transport_err() -> EndpointError {
        EndpointError::transport("ep1", "connection refused")
    }

    #[test]
    fn fail_fast_propagates_transport_errors() {
        let ctx = RunContext::unbounded();
        let r: Result<bool, EngineError> = ctx.absorb("probe", false, Err(transport_err()));
        match r {
            Err(EngineError::Endpoint(e)) => assert_eq!(e.endpoint, "ep1"),
            other => panic!("expected endpoint error, got {other:?}"),
        }
        assert!(ctx.take_warnings().is_empty());
    }

    #[test]
    fn partial_absorbs_and_warns() {
        let cfg = LusailConfig {
            result_policy: ResultPolicy::Partial,
            ..Default::default()
        };
        let ctx = RunContext::new(&cfg);
        let (v, degraded) = ctx
            .absorb_flagged("subquery #1", true, Err(transport_err()))
            .unwrap();
        assert!(v && degraded);
        let warnings = ctx.take_warnings();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].endpoint, "ep1");
        assert_eq!(warnings[0].subquery, "subquery #1");
        assert!(warnings[0].to_string().contains("ep1"));
        // Drained.
        assert!(ctx.take_warnings().is_empty());
    }

    #[test]
    fn take_warnings_dedupes_per_endpoint_and_phase() {
        let ctx = RunContext::unbounded();
        // A flapping endpoint fails the same phase three times, a second
        // phase once, and a different endpoint fails the first phase too.
        for i in 0..3 {
            ctx.warn(ExecutionWarning {
                endpoint: "ep1".into(),
                subquery: "subquery #0".into(),
                message: format!("attempt {i} dropped"),
            });
        }
        ctx.warn(ExecutionWarning {
            endpoint: "ep1".into(),
            subquery: "MINUS block".into(),
            message: "dropped".into(),
        });
        ctx.warn(ExecutionWarning {
            endpoint: "ep2".into(),
            subquery: "subquery #0".into(),
            message: "dropped".into(),
        });
        let warnings = ctx.take_warnings();
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        // First occurrence wins, order preserved.
        assert_eq!(warnings[0].endpoint, "ep1");
        assert_eq!(warnings[0].subquery, "subquery #0");
        assert_eq!(warnings[0].message, "attempt 0 dropped");
        assert_eq!(warnings[1].subquery, "MINUS block");
        assert_eq!(warnings[2].endpoint, "ep2");
    }

    #[test]
    fn deadline_failures_become_timeout_even_in_partial_mode() {
        let cfg = LusailConfig {
            result_policy: ResultPolicy::Partial,
            timeout: Some(Duration::from_secs(7)),
            ..Default::default()
        };
        let ctx = RunContext::new(&cfg);
        let r: Result<(), EngineError> = ctx.absorb("x", (), Err(EndpointError::deadline("ep1")));
        assert_eq!(r, Err(EngineError::Timeout(Duration::from_secs(7))));
    }

    #[test]
    fn rejections_always_propagate() {
        let cfg = LusailConfig {
            result_policy: ResultPolicy::Partial,
            ..Default::default()
        };
        let ctx = RunContext::new(&cfg);
        let r: Result<(), EngineError> =
            ctx.absorb("x", (), Err(EndpointError::rejected("ep1", "413")));
        assert!(matches!(r, Err(EngineError::Endpoint(_))));
        assert!(ctx.take_warnings().is_empty());
    }

    fn sample_relation(rows: usize) -> Relation {
        let mut rel = Relation::new(vec!["x".into()]);
        for i in 0..rows {
            rel.push(vec![Some(lusail_rdf::Term::iri(format!(
                "http://x/item-{i:06}"
            )))]);
        }
        rel
    }

    fn budgeted_ctx(policy: ResultPolicy, budget: usize) -> RunContext {
        RunContext::new(&LusailConfig {
            result_policy: policy,
            memory_budget: Some(budget),
            ..Default::default()
        })
    }

    #[test]
    fn admit_row_cap_rejects_under_fail_fast_and_truncates_under_partial() {
        let strict = RunContext::new(&LusailConfig {
            max_result_rows: Some(10),
            ..Default::default()
        });
        let err = strict
            .admit_relation(
                "subquery #0",
                "ep-bomb",
                MemoryPhase::Wave,
                sample_relation(50),
            )
            .unwrap_err();
        match err {
            EngineError::Endpoint(e) => {
                assert_eq!(e.endpoint, "ep-bomb");
                assert!(e.message.contains("--max-result-rows"), "{}", e.message);
            }
            other => panic!("expected rejection, got {other:?}"),
        }

        let lax = RunContext::new(&LusailConfig {
            max_result_rows: Some(10),
            result_policy: ResultPolicy::Partial,
            ..Default::default()
        });
        let rel = lax
            .admit_relation(
                "subquery #0",
                "ep-bomb",
                MemoryPhase::Wave,
                sample_relation(50),
            )
            .unwrap();
        assert_eq!(rel.len(), 10);
        let warnings = lax.take_warnings();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].endpoint, "ep-bomb");
        assert!(warnings[0].message.contains("truncated from 50 to 10"));
    }

    #[test]
    fn admit_budget_overflow_fails_fast_with_structured_error() {
        let ctx = budgeted_ctx(ResultPolicy::FailFast, 1024);
        let err = ctx
            .admit_relation(
                "subquery #3",
                "ep-bomb",
                MemoryPhase::Wave,
                sample_relation(5000),
            )
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::BudgetExceeded {
                limit: 1024,
                subquery: "subquery #3".into(),
                endpoint: "ep-bomb".into(),
            }
        );
        assert!(err.to_string().contains("subquery #3"));
        assert!(err.to_string().contains("ep-bomb"));
        assert_eq!(
            ctx.memory.used(),
            0,
            "failed admission must release its charges"
        );
    }

    #[test]
    fn admit_budget_overflow_truncates_with_warning_under_partial() {
        let limit = 64 * 1024;
        let ctx = budgeted_ctx(ResultPolicy::Partial, limit);
        let rel = ctx
            .admit_relation(
                "subquery #3",
                "ep-bomb",
                MemoryPhase::Wave,
                sample_relation(20_000),
            )
            .unwrap();
        assert!(rel.len() < 20_000, "oversized result must be truncated");
        assert!(!rel.is_empty(), "some rows fit under a 64 KiB budget");
        // Peak accounting never ran past the limit: overflowing chunks are
        // rejected, not booked.
        assert!(ctx.memory.stats().peak_bytes <= limit);
        let warnings = ctx.take_warnings();
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].message.contains("memory budget exhausted"));
    }

    #[test]
    fn admit_within_budget_charges_the_phase() {
        let ctx = budgeted_ctx(ResultPolicy::FailFast, 1 << 20);
        let rel = ctx
            .admit_relation(
                "subquery #0",
                "ep-0",
                MemoryPhase::BoundJoin,
                sample_relation(100),
            )
            .unwrap();
        assert_eq!(rel.len(), 100);
        let stats = ctx.memory.stats();
        assert!(stats.bound_join_peak_bytes > 0);
        assert_eq!(stats.peak_bytes, ctx.memory.used());
    }

    #[test]
    fn expired_deadline_fails_check() {
        let cfg = LusailConfig {
            timeout: Some(Duration::ZERO),
            ..Default::default()
        };
        let ctx = RunContext::new(&cfg);
        assert!(matches!(ctx.check(), Err(EngineError::Timeout(_))));
        assert!(RunContext::unbounded().check().is_ok());
    }
}
