//! Per-query execution context: the deadline budget, the result policy,
//! and the warning sink that partial-results mode fills.
//!
//! One [`RunContext`] is created per [`crate::LusailEngine::execute`] call
//! and threaded through source selection, LADE's check queries, SAPE's
//! subquery waves, and the residual MINUS evaluation. Every blocking
//! endpoint call goes through `*_within` with the context's [`Deadline`],
//! and every fallible endpoint result comes back through
//! [`RunContext::absorb`], which decides — per the configured
//! [`ResultPolicy`] — whether a failure aborts the query or degrades it
//! to a warning.

use crate::config::{LusailConfig, ResultPolicy};
use crate::error::EngineError;
use lusail_federation::{Deadline, EndpointError, FailureKind};
use std::sync::Mutex;
use std::time::Duration;

/// One piece of work that partial-results mode skipped, naming the
/// endpoint that was unreachable and the subquery (or probe) affected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionWarning {
    /// The endpoint that could not be reached.
    pub endpoint: String,
    /// What was being executed against it (a subquery label or probe
    /// description).
    pub subquery: String,
    /// The underlying failure, e.g. "giving up after 3 attempts: …".
    pub message: String,
}

impl std::fmt::Display for ExecutionWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "endpoint {:?} skipped for {}: {}",
            self.endpoint, self.subquery, self.message
        )
    }
}

/// The execution context of one query.
#[derive(Debug)]
pub struct RunContext {
    /// Absolute time budget for the whole query.
    pub deadline: Deadline,
    /// Fail-fast or partial-results.
    pub policy: ResultPolicy,
    /// The configured budget, echoed in [`EngineError::Timeout`].
    budget: Option<Duration>,
    warnings: Mutex<Vec<ExecutionWarning>>,
}

impl RunContext {
    /// The context for one query under `config`: the deadline starts now.
    pub fn new(config: &LusailConfig) -> Self {
        let deadline = match config.timeout {
            Some(t) => Deadline::within(t),
            None => Deadline::none(),
        };
        RunContext {
            deadline,
            policy: config.result_policy,
            budget: config.timeout,
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// A fail-fast context with an explicit deadline (used by the
    /// baselines, which have no partial mode).
    pub fn fail_fast(deadline: Deadline, budget: Option<Duration>) -> Self {
        RunContext {
            deadline,
            policy: ResultPolicy::FailFast,
            budget,
            warnings: Mutex::new(Vec::new()),
        }
    }

    /// No deadline, fail-fast: for tests and internal probes.
    pub fn unbounded() -> Self {
        RunContext::fail_fast(Deadline::none(), None)
    }

    /// The timeout error carrying the configured budget.
    pub fn timeout_error(&self) -> EngineError {
        EngineError::Timeout(self.budget.unwrap_or_default())
    }

    /// Fail with [`EngineError::Timeout`] once the budget is spent.
    pub fn check(&self) -> Result<(), EngineError> {
        if self.deadline.expired() {
            Err(self.timeout_error())
        } else {
            Ok(())
        }
    }

    /// Record a warning (partial mode).
    pub fn warn(&self, warning: ExecutionWarning) {
        self.warnings
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(warning);
    }

    /// Drain the accumulated warnings, deduplicated per (endpoint,
    /// subquery): a flapping endpoint that fails the same phase many
    /// times (e.g. once per bound-join chunk, or once per failover
    /// attempt) yields one warning, not a flood. The first occurrence
    /// wins, so the message describes the initial failure, and relative
    /// order is preserved.
    pub fn take_warnings(&self) -> Vec<ExecutionWarning> {
        let raw = std::mem::take(&mut *self.warnings.lock().unwrap_or_else(|p| p.into_inner()));
        let mut seen: Vec<(String, String)> = Vec::new();
        raw.into_iter()
            .filter(|w| {
                let key = (w.endpoint.clone(), w.subquery.clone());
                if seen.contains(&key) {
                    false
                } else {
                    seen.push(key);
                    true
                }
            })
            .collect()
    }

    /// Resolve one endpoint result under the policy, additionally
    /// reporting whether the value is degraded (a substituted default):
    ///
    /// * `Ok(v)` passes through;
    /// * a deadline failure becomes [`EngineError::Timeout`];
    /// * under [`ResultPolicy::Partial`], a skippable failure (transport
    ///   or open breaker) records a warning naming the endpoint and
    ///   `what`, and substitutes `default`;
    /// * anything else aborts with [`EngineError::Endpoint`].
    ///
    /// Degraded values must not be written to the analysis cache: they
    /// describe the outage, not the data.
    pub fn absorb_flagged<T>(
        &self,
        what: &str,
        default: T,
        result: Result<T, EndpointError>,
    ) -> Result<(T, bool), EngineError> {
        match result {
            Ok(v) => Ok((v, false)),
            Err(e) if e.kind == FailureKind::Deadline => Err(self.timeout_error()),
            Err(e) if self.policy == ResultPolicy::Partial && e.is_skippable() => {
                self.warn(ExecutionWarning {
                    endpoint: e.endpoint,
                    subquery: what.to_string(),
                    message: e.message,
                });
                Ok((default, true))
            }
            Err(e) => Err(EngineError::Endpoint(e)),
        }
    }

    /// [`RunContext::absorb_flagged`] without the degraded flag.
    pub fn absorb<T>(
        &self,
        what: &str,
        default: T,
        result: Result<T, EndpointError>,
    ) -> Result<T, EngineError> {
        self.absorb_flagged(what, default, result).map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transport_err() -> EndpointError {
        EndpointError::transport("ep1", "connection refused")
    }

    #[test]
    fn fail_fast_propagates_transport_errors() {
        let ctx = RunContext::unbounded();
        let r: Result<bool, EngineError> = ctx.absorb("probe", false, Err(transport_err()));
        match r {
            Err(EngineError::Endpoint(e)) => assert_eq!(e.endpoint, "ep1"),
            other => panic!("expected endpoint error, got {other:?}"),
        }
        assert!(ctx.take_warnings().is_empty());
    }

    #[test]
    fn partial_absorbs_and_warns() {
        let cfg = LusailConfig {
            result_policy: ResultPolicy::Partial,
            ..Default::default()
        };
        let ctx = RunContext::new(&cfg);
        let (v, degraded) = ctx
            .absorb_flagged("subquery #1", true, Err(transport_err()))
            .unwrap();
        assert!(v && degraded);
        let warnings = ctx.take_warnings();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].endpoint, "ep1");
        assert_eq!(warnings[0].subquery, "subquery #1");
        assert!(warnings[0].to_string().contains("ep1"));
        // Drained.
        assert!(ctx.take_warnings().is_empty());
    }

    #[test]
    fn take_warnings_dedupes_per_endpoint_and_phase() {
        let ctx = RunContext::unbounded();
        // A flapping endpoint fails the same phase three times, a second
        // phase once, and a different endpoint fails the first phase too.
        for i in 0..3 {
            ctx.warn(ExecutionWarning {
                endpoint: "ep1".into(),
                subquery: "subquery #0".into(),
                message: format!("attempt {i} dropped"),
            });
        }
        ctx.warn(ExecutionWarning {
            endpoint: "ep1".into(),
            subquery: "MINUS block".into(),
            message: "dropped".into(),
        });
        ctx.warn(ExecutionWarning {
            endpoint: "ep2".into(),
            subquery: "subquery #0".into(),
            message: "dropped".into(),
        });
        let warnings = ctx.take_warnings();
        assert_eq!(warnings.len(), 3, "{warnings:?}");
        // First occurrence wins, order preserved.
        assert_eq!(warnings[0].endpoint, "ep1");
        assert_eq!(warnings[0].subquery, "subquery #0");
        assert_eq!(warnings[0].message, "attempt 0 dropped");
        assert_eq!(warnings[1].subquery, "MINUS block");
        assert_eq!(warnings[2].endpoint, "ep2");
    }

    #[test]
    fn deadline_failures_become_timeout_even_in_partial_mode() {
        let cfg = LusailConfig {
            result_policy: ResultPolicy::Partial,
            timeout: Some(Duration::from_secs(7)),
            ..Default::default()
        };
        let ctx = RunContext::new(&cfg);
        let r: Result<(), EngineError> = ctx.absorb("x", (), Err(EndpointError::deadline("ep1")));
        assert_eq!(r, Err(EngineError::Timeout(Duration::from_secs(7))));
    }

    #[test]
    fn rejections_always_propagate() {
        let cfg = LusailConfig {
            result_policy: ResultPolicy::Partial,
            ..Default::default()
        };
        let ctx = RunContext::new(&cfg);
        let r: Result<(), EngineError> =
            ctx.absorb("x", (), Err(EndpointError::rejected("ep1", "413")));
        assert!(matches!(r, Err(EngineError::Endpoint(_))));
        assert!(ctx.take_warnings().is_empty());
    }

    #[test]
    fn expired_deadline_fails_check() {
        let cfg = LusailConfig {
            timeout: Some(Duration::ZERO),
            ..Default::default()
        };
        let ctx = RunContext::new(&cfg);
        assert!(matches!(ctx.check(), Err(EngineError::Timeout(_))));
        assert!(RunContext::unbounded().check().is_ok());
    }
}
