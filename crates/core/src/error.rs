//! Engine errors.

use lusail_federation::EndpointError;
use std::time::Duration;

/// Why a federated query failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The configured per-query time limit elapsed. The paper uses a
    /// one-hour limit; the benches scale it down.
    Timeout(Duration),
    /// The query uses a construct this engine does not support (e.g. the
    /// FedX baseline on disjoint subgraphs joined by a filter variable —
    /// queries C5/B5/B6, which only Lusail supports).
    Unsupported(String),
    /// An endpoint rejected a request (the paper's Table 2 "RE" rows).
    Endpoint(EndpointError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Timeout(d) => write!(f, "query timed out after {d:?}"),
            EngineError::Unsupported(what) => write!(f, "unsupported query feature: {what}"),
            EngineError::Endpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<EndpointError> for EngineError {
    fn from(e: EndpointError) -> Self {
        EngineError::Endpoint(e)
    }
}
