//! Engine errors.

use lusail_federation::{CancelReason, EndpointError};
use std::time::Duration;

/// Why a federated query failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The configured per-query time limit elapsed. The paper uses a
    /// one-hour limit; the benches scale it down.
    Timeout(Duration),
    /// The query's cancellation token tripped before it finished: the
    /// client disconnected, an operator cancelled it, the lifecycle
    /// watchdog reaped it, or the server is draining.
    Cancelled(CancelReason),
    /// The query uses a construct this engine does not support (e.g. the
    /// FedX baseline on disjoint subgraphs joined by a filter variable —
    /// queries C5/B5/B6, which only Lusail supports).
    Unsupported(String),
    /// An endpoint rejected a request (the paper's Table 2 "RE" rows).
    Endpoint(EndpointError),
    /// The per-query memory budget was exhausted while materializing
    /// results under fail-fast, naming what was being built and — when
    /// attributable to a single response — the endpoint that sent it.
    BudgetExceeded {
        /// The configured `--memory-budget` in bytes.
        limit: usize,
        /// What was being materialized ("subquery #3", "global join", …).
        subquery: String,
        /// The endpoint whose results crossed the budget; empty when the
        /// overflow happened in a federator-side join of many inputs.
        endpoint: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Timeout(d) => write!(f, "query timed out after {d:?}"),
            EngineError::Cancelled(reason) => write!(f, "query cancelled: {reason}"),
            EngineError::Unsupported(what) => write!(f, "unsupported query feature: {what}"),
            EngineError::Endpoint(e) => write!(f, "{e}"),
            EngineError::BudgetExceeded {
                limit,
                subquery,
                endpoint,
            } => {
                write!(
                    f,
                    "memory budget of {limit} bytes exceeded while materializing {subquery}"
                )?;
                if !endpoint.is_empty() {
                    write!(f, " from endpoint {endpoint:?}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<EndpointError> for EngineError {
    fn from(e: EndpointError) -> Self {
        EngineError::Endpoint(e)
    }
}
