//! Per-query memory accounting: the space analogue of the [`crate::run`]
//! deadline budget.
//!
//! A [`MemoryBudget`] tracks the bytes of materialized intermediate state
//! a query is holding — admitted endpoint responses, join outputs — using
//! the same cheap wire-size estimate the simulated network charges
//! ([`lusail_sparql::solution::Relation::wire_size`]). Charging is
//! chunked: callers admit relations a block of rows at a time, so the
//! accounted peak can overshoot the limit by at most one admission chunk
//! before the overflow is seen and handled (truncation under partial
//! results, a structured [`crate::EngineError::BudgetExceeded`] under
//! fail-fast).
//!
//! The budget also records *spills*: joins that would not fit in memory
//! fall back to an external sort-merge join (see [`crate::sape::join`]),
//! and the run/byte counts of those spilled runs surface in
//! [`MemoryStats`] for `lusail query --stats`.

use std::sync::{Arc, Mutex};

/// Which execution phase a charge belongs to, for per-phase peak stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryPhase {
    /// Phase-1 subquery wave results (and MINUS-block contributions).
    Wave,
    /// Global join intermediates and outputs.
    Join,
    /// Phase-2 bound-join (VALUES block) results.
    BoundJoin,
}

/// A charge that did not fit: the budget's limit, the bytes accounted at
/// the time, and the size of the rejected charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    pub limit: usize,
    pub used: usize,
    pub requested: usize,
}

#[derive(Debug, Default)]
struct Inner {
    used: usize,
    peak: usize,
    /// Peak accounted bytes observed while each phase was charging,
    /// indexed by [`MemoryPhase`] discriminant.
    phase_peaks: [usize; 3],
    spill_count: u64,
    spill_bytes: u64,
}

/// Memory accounting snapshot for one query (behind `--stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// The configured limit, if any.
    pub limit: Option<usize>,
    /// Highest accounted bytes at any point of the query.
    pub peak_bytes: usize,
    /// Peak accounted bytes while subquery-wave results were charging.
    pub wave_peak_bytes: usize,
    /// Peak accounted bytes while join outputs were charging.
    pub join_peak_bytes: usize,
    /// Peak accounted bytes while bound-join results were charging.
    pub bound_join_peak_bytes: usize,
    /// Sorted runs written by spilling joins.
    pub spill_count: u64,
    /// Total bytes written to spill runs.
    pub spill_bytes: u64,
}

/// Shared, thread-safe accounting handle; clones refer to one ledger.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    limit: Option<usize>,
    inner: Arc<Mutex<Inner>>,
}

impl MemoryBudget {
    /// A budget capped at `limit` bytes (`None` accounts without a cap).
    pub fn new(limit: Option<usize>) -> Self {
        MemoryBudget {
            limit,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// Accounting only, never rejects a charge.
    pub fn unbounded() -> Self {
        MemoryBudget::new(None)
    }

    /// The configured cap.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Whether a cap is configured at all.
    pub fn is_bounded(&self) -> bool {
        self.limit.is_some()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Bytes currently accounted.
    pub fn used(&self) -> usize {
        self.lock().used
    }

    /// Bytes left under the cap (`usize::MAX` when unbounded).
    pub fn remaining(&self) -> usize {
        match self.limit {
            None => usize::MAX,
            Some(limit) => limit.saturating_sub(self.lock().used),
        }
    }

    /// Whether `bytes` more would still fit under the cap.
    pub fn would_fit(&self, bytes: usize) -> bool {
        self.remaining() >= bytes
    }

    /// Account `bytes` against the budget, failing when the cap would be
    /// crossed (the ledger is left unchanged on failure).
    pub fn try_charge(&self, phase: MemoryPhase, bytes: usize) -> Result<(), BudgetExhausted> {
        let mut inner = self.lock();
        if let Some(limit) = self.limit {
            if inner.used.saturating_add(bytes) > limit {
                return Err(BudgetExhausted {
                    limit,
                    used: inner.used,
                    requested: bytes,
                });
            }
        }
        inner.used += bytes;
        inner.peak = inner.peak.max(inner.used);
        let used = inner.used;
        let p = &mut inner.phase_peaks[phase as usize];
        *p = (*p).max(used);
        Ok(())
    }

    /// Return `bytes` to the budget (e.g. a consumed intermediate).
    pub fn release(&self, bytes: usize) {
        let mut inner = self.lock();
        inner.used = inner.used.saturating_sub(bytes);
    }

    /// Record one spilled sort run of `bytes` written to disk.
    pub fn record_spill(&self, bytes: u64) {
        let mut inner = self.lock();
        inner.spill_count += 1;
        inner.spill_bytes += bytes;
    }

    /// Snapshot the ledger for profiling output.
    pub fn stats(&self) -> MemoryStats {
        let inner = self.lock();
        MemoryStats {
            limit: self.limit,
            peak_bytes: inner.peak,
            wave_peak_bytes: inner.phase_peaks[MemoryPhase::Wave as usize],
            join_peak_bytes: inner.phase_peaks[MemoryPhase::Join as usize],
            bound_join_peak_bytes: inner.phase_peaks[MemoryPhase::BoundJoin as usize],
            spill_count: inner.spill_count,
            spill_bytes: inner.spill_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_release() {
        let b = MemoryBudget::new(Some(100));
        b.try_charge(MemoryPhase::Wave, 40).unwrap();
        b.try_charge(MemoryPhase::Join, 40).unwrap();
        assert_eq!(b.used(), 80);
        assert_eq!(b.remaining(), 20);
        b.release(40);
        assert_eq!(b.used(), 40);
        // Peak survives the release.
        assert_eq!(b.stats().peak_bytes, 80);
    }

    #[test]
    fn overflow_is_rejected_without_mutating_the_ledger() {
        let b = MemoryBudget::new(Some(100));
        b.try_charge(MemoryPhase::Wave, 90).unwrap();
        let err = b.try_charge(MemoryPhase::Wave, 20).unwrap_err();
        assert_eq!(
            err,
            BudgetExhausted {
                limit: 100,
                used: 90,
                requested: 20
            }
        );
        assert_eq!(b.used(), 90, "a rejected charge must not be booked");
        assert!(b.would_fit(10));
        assert!(!b.would_fit(11));
    }

    #[test]
    fn unbounded_never_rejects_but_still_accounts() {
        let b = MemoryBudget::unbounded();
        assert!(!b.is_bounded());
        b.try_charge(MemoryPhase::BoundJoin, usize::MAX / 2)
            .unwrap();
        assert_eq!(b.remaining(), usize::MAX);
        assert_eq!(b.stats().bound_join_peak_bytes, usize::MAX / 2);
    }

    #[test]
    fn phase_peaks_track_total_used_during_that_phase() {
        let b = MemoryBudget::new(Some(1000));
        b.try_charge(MemoryPhase::Wave, 300).unwrap();
        b.try_charge(MemoryPhase::Join, 200).unwrap();
        let s = b.stats();
        assert_eq!(s.wave_peak_bytes, 300);
        // The join charge lands while the wave bytes are still held.
        assert_eq!(s.join_peak_bytes, 500);
        assert_eq!(s.peak_bytes, 500);
    }

    #[test]
    fn spills_are_counted() {
        let b = MemoryBudget::unbounded();
        b.record_spill(1024);
        b.record_spill(2048);
        let s = b.stats();
        assert_eq!(s.spill_count, 2);
        assert_eq!(s.spill_bytes, 3072);
    }

    #[test]
    fn clones_share_one_ledger() {
        let b = MemoryBudget::new(Some(100));
        let c = b.clone();
        c.try_charge(MemoryPhase::Wave, 60).unwrap();
        assert_eq!(b.used(), 60);
    }
}
