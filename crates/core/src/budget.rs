//! Per-query memory accounting: the space analogue of the [`crate::run`]
//! deadline budget.
//!
//! A [`MemoryBudget`] tracks the bytes of materialized intermediate state
//! a query is holding — admitted endpoint responses, join outputs — using
//! the same cheap wire-size estimate the simulated network charges
//! ([`lusail_sparql::solution::Relation::wire_size`]). Charging is
//! chunked: callers admit relations a block of rows at a time, so the
//! accounted peak can overshoot the limit by at most one admission chunk
//! before the overflow is seen and handled (truncation under partial
//! results, a structured [`crate::EngineError::BudgetExceeded`] under
//! fail-fast).
//!
//! The budget also records *spills*: joins that would not fit in memory
//! fall back to an external sort-merge join (see [`crate::sape::join`]),
//! and the run/byte counts of those spilled runs surface in
//! [`MemoryStats`] for `lusail query --stats`.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Which execution phase a charge belongs to, for per-phase peak stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryPhase {
    /// Phase-1 subquery wave results (and MINUS-block contributions).
    Wave,
    /// Global join intermediates and outputs.
    Join,
    /// Phase-2 bound-join (VALUES block) results.
    BoundJoin,
}

/// A charge that did not fit: the budget's limit, the bytes accounted at
/// the time, and the size of the rejected charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExhausted {
    pub limit: usize,
    pub used: usize,
    pub requested: usize,
}

#[derive(Debug, Default)]
struct Inner {
    used: usize,
    peak: usize,
    /// Peak accounted bytes observed while each phase was charging,
    /// indexed by [`MemoryPhase`] discriminant.
    phase_peaks: [usize; 3],
    spill_count: u64,
    spill_bytes: u64,
}

/// Memory accounting snapshot for one query (behind `--stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// The configured limit, if any.
    pub limit: Option<usize>,
    /// Highest accounted bytes at any point of the query.
    pub peak_bytes: usize,
    /// Peak accounted bytes while subquery-wave results were charging.
    pub wave_peak_bytes: usize,
    /// Peak accounted bytes while join outputs were charging.
    pub join_peak_bytes: usize,
    /// Peak accounted bytes while bound-join results were charging.
    pub bound_join_peak_bytes: usize,
    /// Sorted runs written by spilling joins.
    pub spill_count: u64,
    /// Total bytes written to spill runs.
    pub spill_bytes: u64,
}

/// Shared, thread-safe accounting handle; clones refer to one ledger.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    limit: Option<usize>,
    inner: Arc<Mutex<Inner>>,
}

impl MemoryBudget {
    /// A budget capped at `limit` bytes (`None` accounts without a cap).
    pub fn new(limit: Option<usize>) -> Self {
        MemoryBudget {
            limit,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// Accounting only, never rejects a charge.
    pub fn unbounded() -> Self {
        MemoryBudget::new(None)
    }

    /// The configured cap.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Whether a cap is configured at all.
    pub fn is_bounded(&self) -> bool {
        self.limit.is_some()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Bytes currently accounted.
    pub fn used(&self) -> usize {
        self.lock().used
    }

    /// Bytes left under the cap (`usize::MAX` when unbounded).
    pub fn remaining(&self) -> usize {
        match self.limit {
            None => usize::MAX,
            Some(limit) => limit.saturating_sub(self.lock().used),
        }
    }

    /// Whether `bytes` more would still fit under the cap.
    pub fn would_fit(&self, bytes: usize) -> bool {
        self.remaining() >= bytes
    }

    /// Account `bytes` against the budget, failing when the cap would be
    /// crossed (the ledger is left unchanged on failure).
    pub fn try_charge(&self, phase: MemoryPhase, bytes: usize) -> Result<(), BudgetExhausted> {
        let mut inner = self.lock();
        if let Some(limit) = self.limit {
            if inner.used.saturating_add(bytes) > limit {
                return Err(BudgetExhausted {
                    limit,
                    used: inner.used,
                    requested: bytes,
                });
            }
        }
        inner.used += bytes;
        inner.peak = inner.peak.max(inner.used);
        let used = inner.used;
        let p = &mut inner.phase_peaks[phase as usize];
        *p = (*p).max(used);
        Ok(())
    }

    /// Return `bytes` to the budget (e.g. a consumed intermediate).
    pub fn release(&self, bytes: usize) {
        let mut inner = self.lock();
        inner.used = inner.used.saturating_sub(bytes);
    }

    /// Record one spilled sort run of `bytes` written to disk.
    pub fn record_spill(&self, bytes: u64) {
        let mut inner = self.lock();
        inner.spill_count += 1;
        inner.spill_bytes += bytes;
    }

    /// Snapshot the ledger for profiling output.
    pub fn stats(&self) -> MemoryStats {
        let inner = self.lock();
        MemoryStats {
            limit: self.limit,
            peak_bytes: inner.peak,
            wave_peak_bytes: inner.phase_peaks[MemoryPhase::Wave as usize],
            join_peak_bytes: inner.phase_peaks[MemoryPhase::Join as usize],
            bound_join_peak_bytes: inner.phase_peaks[MemoryPhase::BoundJoin as usize],
            spill_count: inner.spill_count,
            spill_bytes: inner.spill_bytes,
        }
    }
}

/// Why a [`MemoryPool`] carve attempt was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolRejection {
    /// Every ledger was taken and the admission queue was full.
    QueueFull,
    /// A queue slot was granted but no ledger freed up within the wait
    /// budget.
    TimedOut,
}

impl std::fmt::Display for PoolRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolRejection::QueueFull => write!(f, "memory pool exhausted and admission queue full"),
            PoolRejection::TimedOut => {
                write!(f, "memory pool exhausted and queue wait budget spent")
            }
        }
    }
}

/// A snapshot of one [`MemoryPool`]'s lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Ledgers handed out over the pool's lifetime.
    pub carved: u64,
    /// Carve attempts turned away (queue full or wait budget spent).
    pub shed: u64,
    /// Carve attempts that had to wait in the admission queue first.
    pub queued: u64,
    /// Highest number of ledgers simultaneously outstanding.
    pub peak_ledgers: usize,
    /// Ledgers currently outstanding.
    pub in_use: usize,
    /// Callers currently waiting in the admission queue.
    pub waiting: usize,
}

#[derive(Debug, Default)]
struct PoolState {
    in_use: usize,
    waiting: usize,
    carved: u64,
    shed: u64,
    queued: u64,
    peak_ledgers: usize,
}

/// A global memory pool carved into per-query [`MemoryBudget`] ledgers —
/// the admission-control primitive behind `lusail serve --federate`.
///
/// The pool holds `capacity` bytes; each carve hands out a ledger of
/// `ledger_bytes`, so at most `capacity / ledger_bytes` queries hold
/// memory at once. When every ledger is taken, further carves wait in a
/// bounded admission queue; when the queue is full (or the wait budget is
/// spent) the carve is *shed* — the service layer turns that into an HTTP
/// 503 with `Retry-After`. Dropping a [`PooledBudget`] returns its ledger
/// and wakes one queued waiter.
///
/// The sum of concurrently outstanding ledgers can never exceed the pool,
/// and each query's charges are capped by its own ledger, so total
/// accounted intermediate-state bytes stay under `capacity` by
/// construction.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity: usize,
    ledger_bytes: usize,
    max_ledgers: usize,
    inner: Arc<(Mutex<PoolState>, Condvar)>,
}

impl MemoryPool {
    /// A pool of `capacity` bytes handing out ledgers of `ledger_bytes`.
    /// Both are clamped to at least one byte, and a ledger larger than the
    /// pool shrinks to the pool (one query at a time, full budget).
    pub fn new(capacity: usize, ledger_bytes: usize) -> Self {
        let capacity = capacity.max(1);
        let ledger_bytes = ledger_bytes.clamp(1, capacity);
        MemoryPool {
            capacity,
            ledger_bytes,
            max_ledgers: (capacity / ledger_bytes).max(1),
            inner: Arc::new((Mutex::new(PoolState::default()), Condvar::new())),
        }
    }

    /// Total pool bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes per carved ledger.
    pub fn ledger_bytes(&self) -> usize {
        self.ledger_bytes
    }

    /// Concurrent ledgers the pool can sustain.
    pub fn max_ledgers(&self) -> usize {
        self.max_ledgers
    }

    /// Ledgers currently outstanding.
    pub fn in_use(&self) -> usize {
        self.lock_state().in_use
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.inner.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Carve one ledger without waiting; `None` when all are taken.
    pub fn try_carve(&self) -> Option<PooledBudget> {
        let mut state = self.lock_state();
        if state.in_use >= self.max_ledgers {
            state.shed += 1;
            return None;
        }
        Some(self.grant(&mut state))
    }

    /// Carve one ledger, waiting in the admission queue when the pool is
    /// saturated: at most `max_waiting` callers queue at once, each for at
    /// most `wait`. A full queue or a spent wait budget sheds the caller.
    pub fn carve_queued(
        &self,
        max_waiting: usize,
        wait: Duration,
    ) -> Result<PooledBudget, PoolRejection> {
        let (lock, cv) = (&self.inner.0, &self.inner.1);
        let mut state = lock.lock().unwrap_or_else(|p| p.into_inner());
        if state.in_use < self.max_ledgers {
            return Ok(self.grant(&mut state));
        }
        if state.waiting >= max_waiting {
            state.shed += 1;
            return Err(PoolRejection::QueueFull);
        }
        state.waiting += 1;
        state.queued += 1;
        let deadline = std::time::Instant::now() + wait;
        loop {
            let remaining = match deadline.checked_duration_since(std::time::Instant::now()) {
                Some(r) if !r.is_zero() => r,
                _ => {
                    state.waiting -= 1;
                    state.shed += 1;
                    return Err(PoolRejection::TimedOut);
                }
            };
            let (next, timeout) = cv
                .wait_timeout(state, remaining)
                .unwrap_or_else(|p| p.into_inner());
            state = next;
            if state.in_use < self.max_ledgers {
                state.waiting -= 1;
                return Ok(self.grant(&mut state));
            }
            if timeout.timed_out() {
                state.waiting -= 1;
                state.shed += 1;
                return Err(PoolRejection::TimedOut);
            }
        }
    }

    fn grant(&self, state: &mut PoolState) -> PooledBudget {
        state.in_use += 1;
        state.carved += 1;
        state.peak_ledgers = state.peak_ledgers.max(state.in_use);
        PooledBudget {
            budget: MemoryBudget::new(Some(self.ledger_bytes)),
            pool: Arc::clone(&self.inner),
        }
    }

    /// Lifetime counters plus current occupancy.
    pub fn stats(&self) -> PoolStats {
        let state = self.lock_state();
        PoolStats {
            carved: state.carved,
            shed: state.shed,
            queued: state.queued,
            peak_ledgers: state.peak_ledgers,
            in_use: state.in_use,
            waiting: state.waiting,
        }
    }
}

/// One carved ledger: a [`MemoryBudget`] whose capacity is reserved out of
/// a [`MemoryPool`]. Dropping it returns the reservation and wakes one
/// queued waiter.
#[derive(Debug)]
pub struct PooledBudget {
    budget: MemoryBudget,
    pool: Arc<(Mutex<PoolState>, Condvar)>,
}

impl PooledBudget {
    /// The per-query ledger (clones share this carve's accounting).
    pub fn budget(&self) -> MemoryBudget {
        self.budget.clone()
    }
}

impl Drop for PooledBudget {
    fn drop(&mut self) {
        let mut state = self.pool.0.lock().unwrap_or_else(|p| p.into_inner());
        state.in_use = state.in_use.saturating_sub(1);
        drop(state);
        self.pool.1.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_release() {
        let b = MemoryBudget::new(Some(100));
        b.try_charge(MemoryPhase::Wave, 40).unwrap();
        b.try_charge(MemoryPhase::Join, 40).unwrap();
        assert_eq!(b.used(), 80);
        assert_eq!(b.remaining(), 20);
        b.release(40);
        assert_eq!(b.used(), 40);
        // Peak survives the release.
        assert_eq!(b.stats().peak_bytes, 80);
    }

    #[test]
    fn overflow_is_rejected_without_mutating_the_ledger() {
        let b = MemoryBudget::new(Some(100));
        b.try_charge(MemoryPhase::Wave, 90).unwrap();
        let err = b.try_charge(MemoryPhase::Wave, 20).unwrap_err();
        assert_eq!(
            err,
            BudgetExhausted {
                limit: 100,
                used: 90,
                requested: 20
            }
        );
        assert_eq!(b.used(), 90, "a rejected charge must not be booked");
        assert!(b.would_fit(10));
        assert!(!b.would_fit(11));
    }

    #[test]
    fn unbounded_never_rejects_but_still_accounts() {
        let b = MemoryBudget::unbounded();
        assert!(!b.is_bounded());
        b.try_charge(MemoryPhase::BoundJoin, usize::MAX / 2)
            .unwrap();
        assert_eq!(b.remaining(), usize::MAX);
        assert_eq!(b.stats().bound_join_peak_bytes, usize::MAX / 2);
    }

    #[test]
    fn phase_peaks_track_total_used_during_that_phase() {
        let b = MemoryBudget::new(Some(1000));
        b.try_charge(MemoryPhase::Wave, 300).unwrap();
        b.try_charge(MemoryPhase::Join, 200).unwrap();
        let s = b.stats();
        assert_eq!(s.wave_peak_bytes, 300);
        // The join charge lands while the wave bytes are still held.
        assert_eq!(s.join_peak_bytes, 500);
        assert_eq!(s.peak_bytes, 500);
    }

    #[test]
    fn spills_are_counted() {
        let b = MemoryBudget::unbounded();
        b.record_spill(1024);
        b.record_spill(2048);
        let s = b.stats();
        assert_eq!(s.spill_count, 2);
        assert_eq!(s.spill_bytes, 3072);
    }

    #[test]
    fn clones_share_one_ledger() {
        let b = MemoryBudget::new(Some(100));
        let c = b.clone();
        c.try_charge(MemoryPhase::Wave, 60).unwrap();
        assert_eq!(b.used(), 60);
    }

    #[test]
    fn pool_carves_bounded_ledgers_and_returns_them_on_drop() {
        let pool = MemoryPool::new(1000, 400);
        assert_eq!(pool.max_ledgers(), 2);
        assert_eq!(pool.ledger_bytes(), 400);
        let a = pool.try_carve().expect("first ledger");
        let b = pool.try_carve().expect("second ledger");
        assert_eq!(pool.in_use(), 2);
        assert!(pool.try_carve().is_none(), "pool must be exhausted");
        // Each ledger enforces its own slice of the pool.
        assert_eq!(a.budget().limit(), Some(400));
        assert!(a.budget().try_charge(MemoryPhase::Wave, 500).is_err());
        drop(a);
        assert_eq!(pool.in_use(), 1);
        let c = pool.try_carve().expect("freed ledger is reusable");
        drop((b, c));
        let stats = pool.stats();
        assert_eq!(stats.carved, 3);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.peak_ledgers, 2);
        assert_eq!(stats.in_use, 0);
    }

    #[test]
    fn pool_oversized_ledger_shrinks_to_pool() {
        let pool = MemoryPool::new(100, 1000);
        assert_eq!(pool.ledger_bytes(), 100);
        assert_eq!(pool.max_ledgers(), 1);
    }

    #[test]
    fn pool_queue_full_sheds_immediately() {
        let pool = MemoryPool::new(100, 100);
        let _held = pool.try_carve().unwrap();
        // max_waiting = 0: a saturated pool sheds without waiting.
        let err = pool
            .carve_queued(0, Duration::from_secs(5))
            .expect_err("no queue slots");
        assert_eq!(err, PoolRejection::QueueFull);
        assert_eq!(pool.stats().shed, 1);
    }

    #[test]
    fn pool_queued_waiter_gets_a_freed_ledger() {
        let pool = MemoryPool::new(100, 100);
        let held = pool.try_carve().unwrap();
        let pool2 = pool.clone();
        let waiter = std::thread::spawn(move || pool2.carve_queued(1, Duration::from_secs(10)));
        // Give the waiter time to park in the queue, then free the ledger.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(pool.stats().waiting, 1);
        drop(held);
        let carved = waiter.join().unwrap().expect("waiter must be woken");
        assert_eq!(carved.budget().limit(), Some(100));
        let stats = pool.stats();
        assert_eq!(stats.queued, 1);
        assert_eq!(stats.waiting, 0);
    }

    #[test]
    fn pool_queue_wait_budget_times_out() {
        let pool = MemoryPool::new(100, 100);
        let _held = pool.try_carve().unwrap();
        let err = pool
            .carve_queued(4, Duration::from_millis(30))
            .expect_err("nothing frees the ledger");
        assert_eq!(err, PoolRejection::TimedOut);
        assert_eq!(pool.stats().waiting, 0);
    }
}
