//! The delayed / non-delayed split (Section 4.1, Figure 7).
//!
//! SAPE delays subqueries expected to return large results (or touching
//! many endpoints) and evaluates them later as bound joins over the
//! bindings already found. The population of cardinalities is cleaned with
//! Chauvenet's criterion before computing μ and σ.
//!
//! One deliberate deviation from the paper's prose: the paper delays on
//! `C(sq) > μ + σ` (strict). With the very small subquery counts real
//! decompositions produce (2–5), the strict inequality can never fire for
//! n = 2 — the larger of two values is exactly μ + σ under a population σ —
//! even though the paper's own LUBM Q3/Q4 walkthrough delays the generic
//! subquery in a 2-subquery decomposition. We therefore use `≥` together
//! with a guard that the most selective subquery is never delayed, which
//! reproduces the paper's described behaviour on its own examples.

use crate::config::DelayThreshold;
use crate::sape::stats::{chauvenet_outliers, clean_mean_std};
use crate::subquery::Subquery;

/// The execution schedule for one branch's subqueries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Indices (into the subquery list) evaluated concurrently up front.
    pub non_delayed: Vec<usize>,
    /// Indices evaluated afterwards as bound joins, in no particular order
    /// (the executor re-picks by refined cardinality each round).
    pub delayed: Vec<usize>,
}

/// Classify subqueries given their estimated cardinalities.
pub fn make_schedule(
    subqueries: &[Subquery],
    cardinalities: &[usize],
    threshold: DelayThreshold,
) -> Schedule {
    assert_eq!(subqueries.len(), cardinalities.len());
    let mut schedule = Schedule {
        non_delayed: Vec::new(),
        delayed: Vec::new(),
    };

    // Optional subqueries are always delayed (category (iii) in §4.1).
    let required: Vec<usize> = (0..subqueries.len())
        .filter(|&i| !subqueries[i].optional)
        .collect();
    for (i, sq) in subqueries.iter().enumerate() {
        if sq.optional {
            schedule.delayed.push(i);
        }
    }
    if required.len() <= 1 {
        schedule.non_delayed.extend(required);
        return schedule;
    }

    let cards: Vec<f64> = required.iter().map(|&i| cardinalities[i] as f64).collect();
    let n_eps: Vec<f64> = required
        .iter()
        .map(|&i| subqueries[i].sources.len() as f64)
        .collect();
    let (mu_c, sigma_c) = clean_mean_std(&cards);
    let (mu_e, sigma_e) = clean_mean_std(&n_eps);
    let card_outliers = chauvenet_outliers(&cards);
    let ep_outliers = chauvenet_outliers(&n_eps);

    let min_card = cards.iter().copied().fold(f64::INFINITY, f64::min);

    for (pos, &i) in required.iter().enumerate() {
        let c = cards[pos];
        let e = n_eps[pos];
        // Chauvenet-rejected values are "significantly larger than the
        // majority" by construction and are delayed under every threshold
        // (they are excluded from μ/σ precisely so the threshold can catch
        // them).
        let over_card = card_outliers[pos]
            || match threshold {
                DelayThreshold::Mu => c >= mu_c,
                DelayThreshold::MuSigma => c >= mu_c + sigma_c,
                DelayThreshold::Mu2Sigma => c >= mu_c + 2.0 * sigma_c,
                DelayThreshold::OutliersOnly => false,
            };
        let over_eps = ep_outliers[pos]
            || match threshold {
                DelayThreshold::OutliersOnly => false,
                _ => e >= mu_e + sigma_e && sigma_e > 0.0,
            };
        // Never delay the most selective subquery: phase 2 needs seed
        // bindings from somewhere.
        let is_min = c <= min_card;
        if (over_card || over_eps) && !is_min {
            schedule.delayed.push(i);
        } else {
            schedule.non_delayed.push(i);
        }
    }
    // Degenerate guard: at least one required subquery must run up front.
    if schedule.non_delayed.is_empty() {
        let first = required[0];
        schedule.delayed.retain(|&i| i != first);
        schedule.non_delayed.push(first);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_sparql::ast::{TermPattern, TriplePattern};

    fn sq(id: usize, n_sources: usize, optional: bool) -> Subquery {
        Subquery {
            id,
            patterns: vec![TriplePattern::new(
                TermPattern::var("s"),
                TermPattern::iri(format!("http://p{id}")),
                TermPattern::var("o"),
            )],
            filters: vec![],
            sources: (0..n_sources).collect(),
            projection: vec![],
            optional,
        }
    }

    #[test]
    fn two_subqueries_delay_the_generic_one() {
        // The paper's LUBM Q3 shape: a selective subquery at one endpoint
        // and a generic type subquery at all endpoints.
        let sqs = vec![sq(0, 1, false), sq(1, 4, false)];
        let s = make_schedule(&sqs, &[500, 40_000], DelayThreshold::MuSigma);
        assert_eq!(s.non_delayed, vec![0]);
        assert_eq!(s.delayed, vec![1]);
    }

    #[test]
    fn equal_cardinalities_delay_nothing() {
        let sqs = vec![sq(0, 2, false), sq(1, 2, false), sq(2, 2, false)];
        let s = make_schedule(&sqs, &[100, 100, 100], DelayThreshold::MuSigma);
        assert_eq!(s.delayed, Vec::<usize>::new());
        assert_eq!(s.non_delayed.len(), 3);
    }

    #[test]
    fn optional_subqueries_always_delayed() {
        let sqs = vec![sq(0, 2, false), sq(1, 2, true)];
        let s = make_schedule(&sqs, &[10, 10], DelayThreshold::MuSigma);
        assert_eq!(s.non_delayed, vec![0]);
        assert_eq!(s.delayed, vec![1]);
    }

    #[test]
    fn mu_threshold_is_most_aggressive() {
        let sqs: Vec<Subquery> = (0..4).map(|i| sq(i, 2, false)).collect();
        let cards = [10, 200, 300, 400];
        let mu = make_schedule(&sqs, &cards, DelayThreshold::Mu);
        let musig = make_schedule(&sqs, &cards, DelayThreshold::MuSigma);
        let mu2 = make_schedule(&sqs, &cards, DelayThreshold::Mu2Sigma);
        assert!(mu.delayed.len() >= musig.delayed.len());
        assert!(musig.delayed.len() >= mu2.delayed.len());
        // μ delays everything above the mean but keeps the most selective.
        assert!(mu.non_delayed.contains(&0));
    }

    #[test]
    fn outliers_only_delays_true_outliers() {
        let sqs: Vec<Subquery> = (0..6).map(|i| sq(i, 2, false)).collect();
        let cards = [10, 11, 9, 10, 12, 1_000_000];
        let s = make_schedule(&sqs, &cards, DelayThreshold::OutliersOnly);
        assert_eq!(s.delayed, vec![5]);
    }

    #[test]
    fn single_subquery_never_delayed() {
        let sqs = vec![sq(0, 8, false)];
        let s = make_schedule(&sqs, &[1_000_000], DelayThreshold::Mu);
        assert_eq!(s.non_delayed, vec![0]);
        assert!(s.delayed.is_empty());
    }

    #[test]
    fn endpoint_fanout_triggers_delay() {
        // Same cardinalities, one subquery touches far more endpoints.
        let sqs = vec![sq(0, 2, false), sq(1, 2, false), sq(2, 64, false)];
        let s = make_schedule(&sqs, &[101, 100, 102], DelayThreshold::MuSigma);
        assert!(s.delayed.contains(&2), "{s:?}");
    }
}
