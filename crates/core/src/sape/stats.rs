//! Statistical helpers: mean / standard deviation and Chauvenet's
//! criterion for outlier rejection (Section 4.1 cites Chauvenet's test \[7\]
//! for cleaning the cardinality population before computing μ and σ).

/// Mean of a sample. Empty samples yield 0.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation. Empty and singleton samples yield 0.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The complementary error function, via the Abramowitz & Stegun 7.1.26
/// polynomial approximation (|error| ≤ 1.5e-7 — far tighter than the
/// heuristic needs).
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x_abs);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x_abs * x_abs).exp();
    if sign_negative {
        1.0 + erf
    } else {
        1.0 - erf
    }
}

/// Apply Chauvenet's criterion: a point is rejected when the expected
/// number of points as extreme as it (under a normal fit) is below ½, i.e.
/// `n · erfc(|x − μ| / (√2 σ)) < 0.5`. Returns a boolean "is outlier" mask.
pub fn chauvenet_outliers(xs: &[f64]) -> Vec<bool> {
    let n = xs.len();
    if n < 3 {
        // With fewer than 3 points the criterion cannot separate signal
        // from noise; keep everything.
        return vec![false; n];
    }
    let m = mean(xs);
    let s = std_dev(xs);
    if s == 0.0 {
        return vec![false; n];
    }
    xs.iter()
        .map(|&x| {
            let z = (x - m).abs() / (std::f64::consts::SQRT_2 * s);
            (n as f64) * erfc(z) < 0.5
        })
        .collect()
}

/// Mean and standard deviation of the sample after removing Chauvenet
/// outliers.
pub fn clean_mean_std(xs: &[f64]) -> (f64, f64) {
    let mask = chauvenet_outliers(xs);
    let kept: Vec<f64> = xs
        .iter()
        .zip(&mask)
        .filter(|(_, &out)| !out)
        .map(|(&x, _)| x)
        .collect();
    (mean(&kept), std_dev(&kept))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let s = std_dev(&[2.0, 4.0]);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(∞) → 0, erfc(-x) = 2 - erfc(x).
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(3.0) < 3e-5);
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-7);
        // erfc(1) ≈ 0.157299.
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
    }

    #[test]
    fn chauvenet_flags_the_obvious_outlier() {
        let xs = [10.0, 11.0, 9.0, 10.5, 9.5, 1_000_000.0];
        let mask = chauvenet_outliers(&xs);
        assert!(mask[5]);
        assert!(mask[..5].iter().all(|&b| !b));
    }

    #[test]
    fn chauvenet_keeps_small_or_uniform_samples() {
        assert_eq!(chauvenet_outliers(&[1.0, 1e9]), vec![false, false]);
        assert_eq!(chauvenet_outliers(&[5.0; 10]), vec![false; 10]);
    }

    #[test]
    fn clean_stats_exclude_outlier() {
        let xs = [10.0, 11.0, 9.0, 10.5, 9.5, 1_000_000.0];
        let (m, s) = clean_mean_std(&xs);
        assert!(m < 20.0, "outlier leaked into mean: {m}");
        assert!(s < 5.0);
    }
}
