//! SAPE's cardinality model (Section 4.1).
//!
//! During query analysis, Lusail issues one `SELECT COUNT` probe per triple
//! pattern per relevant endpoint, with any filter that only touches that
//! pattern's variables pushed into the probe. Composition rules:
//!
//! * `C(sq, v, ep) = min over patterns of sq containing v of C(tp, ep)`
//! * `C(sq, v)     = Σ over relevant endpoints of C(sq, v, ep)`
//! * `C(sq)        = max over projected variables v of C(sq, v)`
//!
//! The same counts serve two purposes: they score candidate decompositions
//! inside Algorithm 2 (`estimateCost`) and they drive the delayed-subquery
//! split. The paper reports a median q-error of 1.09 for this model on
//! LargeRDFBench; the `qerror` bench reproduces that measurement.

use crate::cache::{pattern_key, QueryCache};
use crate::error::EngineError;
use crate::run::RunContext;
use lusail_federation::{EndpointError, EndpointId, Federation, RequestHandler};
use lusail_rdf::fxhash::FxHashMap;
use lusail_sparql::ast::{
    Expression, GraphPattern, Projection, Query, SelectQuery, TriplePattern, Variable,
};

/// Per-pattern, per-endpoint counts: `counts[i][&ep]` is the number of
/// matches of pattern `i` (with its pushable filters) at endpoint `ep`.
pub type TpCounts = Vec<FxHashMap<EndpointId, usize>>;

/// The filters from `filters` that can be pushed into a probe for `tp`
/// (every variable covered by the pattern).
pub fn pushable_filters<'a>(tp: &TriplePattern, filters: &'a [Expression]) -> Vec<&'a Expression> {
    let tp_vars = tp.variables();
    filters
        .iter()
        .filter(|f| {
            let vars = f.variables();
            !vars.is_empty() && vars.iter().all(|v| tp_vars.contains(&v))
        })
        .collect()
}

/// The `SELECT (COUNT(*) AS ?c)` probe for one pattern.
pub fn count_query(tp: &TriplePattern, filters: &[Expression]) -> Query {
    let mut p = GraphPattern::Bgp(vec![tp.clone()]);
    for f in pushable_filters(tp, filters) {
        p = GraphPattern::Filter(Box::new(p), f.clone());
    }
    Query::select(SelectQuery::new(
        Projection::Count {
            inner: None,
            distinct: false,
            as_var: Variable::new("lusail_c"),
        },
        p,
    ))
}

/// Collect `COUNT` probes for every pattern at its relevant endpoints, in
/// one parallel wave, consulting and filling the cache.
///
/// Probes respect `ctx`: under the partial policy an unanswerable probe
/// contributes a count of 0 (with a warning) and is not cached.
pub fn collect_tp_counts(
    federation: &Federation,
    handler: &RequestHandler,
    cache: Option<&QueryCache>,
    patterns: &[TriplePattern],
    filters: &[Expression],
    sources: &[Vec<EndpointId>],
    ctx: &RunContext,
) -> Result<TpCounts, EngineError> {
    let mut counts: TpCounts = vec![FxHashMap::default(); patterns.len()];
    let mut probes: Vec<(usize, EndpointId, String)> = Vec::new();
    for (i, tp) in patterns.iter().enumerate() {
        let filter_tag: String = pushable_filters(tp, filters)
            .iter()
            .map(|f| format!("{f:?}"))
            .collect();
        let key = format!("{}|{}", pattern_key(tp), filter_tag);
        for &ep in &sources[i] {
            match cache.and_then(|c| c.get_count(&key, ep)) {
                Some(n) => {
                    counts[i].insert(ep, n);
                }
                None => probes.push((i, ep, key.clone())),
            }
        }
    }
    let answers = handler.map_cancellable(
        (0..probes.len()).collect(),
        ctx.deadline.clone(),
        |_| Err(EndpointError::deadline("cardinality probe")),
        |pi| {
            let (i, ep, _) = &probes[pi];
            federation
                .endpoint(*ep)
                .count_within(&count_query(&patterns[*i], filters), ctx.deadline.clone())
        },
    );
    for ((i, ep, key), n) in probes.into_iter().zip(answers) {
        let what = format!("COUNT probe for {}", pattern_key(&patterns[i]));
        let (n, degraded) = ctx.absorb_flagged(&what, 0, n)?;
        if let Some(c) = cache {
            if !degraded {
                c.put_count(key, ep, n);
            }
        }
        counts[i].insert(ep, n);
    }
    Ok(counts)
}

/// `C(sq, v)` for a draft subquery given as pattern indices.
pub fn variable_cardinality(
    member_patterns: &[usize],
    sq_sources: &[EndpointId],
    patterns: &[TriplePattern],
    counts: &TpCounts,
    v: &Variable,
) -> usize {
    let containing: Vec<usize> = member_patterns
        .iter()
        .copied()
        .filter(|&i| patterns[i].mentions(v))
        .collect();
    if containing.is_empty() {
        return 0;
    }
    sq_sources
        .iter()
        .map(|ep| {
            containing
                .iter()
                .map(|&i| counts[i].get(ep).copied().unwrap_or(0))
                .min()
                .unwrap_or(0)
        })
        .sum()
}

/// `C(sq)`: the max variable cardinality over `proj` (all subquery
/// variables when `proj` is empty or disjoint).
pub fn subquery_cardinality(
    member_patterns: &[usize],
    sq_sources: &[EndpointId],
    patterns: &[TriplePattern],
    counts: &TpCounts,
    proj: &[Variable],
) -> usize {
    let mut vars: Vec<Variable> = Vec::new();
    for &i in member_patterns {
        for v in patterns[i].variables() {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
    }
    let scoped: Vec<&Variable> = if proj.is_empty() {
        vars.iter().collect()
    } else {
        let filtered: Vec<&Variable> = vars.iter().filter(|v| proj.contains(v)).collect();
        if filtered.is_empty() {
            vars.iter().collect()
        } else {
            filtered
        }
    };
    if scoped.is_empty() {
        // Fully-ground subquery: max pattern count summed over sources.
        return sq_sources
            .iter()
            .map(|ep| {
                member_patterns
                    .iter()
                    .map(|&i| counts[i].get(ep).copied().unwrap_or(0))
                    .max()
                    .unwrap_or(0)
            })
            .sum();
    }
    scoped
        .iter()
        .map(|v| variable_cardinality(member_patterns, sq_sources, patterns, counts, v))
        .max()
        .unwrap_or(0)
}

/// The q-error metric of Moerkotte et al.: `max(e/a, a/e)`, with the
/// convention that a correct estimate of an empty result is 1.
pub fn q_error(estimated: usize, actual: usize) -> f64 {
    match (estimated, actual) {
        (0, 0) => 1.0,
        (0, _) | (_, 0) => f64::INFINITY,
        (e, a) => {
            let (e, a) = (e as f64, a as f64);
            (e / a).max(a / e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::Term;
    use lusail_sparql::ast::TermPattern;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let slot = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::var(v)
            } else {
                TermPattern::iri(x)
            }
        };
        TriplePattern::new(slot(s), slot(p), slot(o))
    }

    #[test]
    fn variable_cardinality_is_min_then_sum() {
        let pats = vec![tp("?s", "http://a", "?v"), tp("?v", "http://b", "?z")];
        // ep0: counts 100 and 10 → min 10; ep1: 5 and 50 → min 5.
        let counts: TpCounts = vec![
            [(0, 100), (1, 5)].into_iter().collect(),
            [(0, 10), (1, 50)].into_iter().collect(),
        ];
        assert_eq!(
            variable_cardinality(&[0, 1], &[0, 1], &pats, &counts, &Variable::new("v")),
            15
        );
        assert_eq!(
            variable_cardinality(&[0, 1], &[0, 1], &pats, &counts, &Variable::new("s")),
            105
        );
    }

    #[test]
    fn subquery_cardinality_is_max_over_projection() {
        let pats = vec![tp("?s", "http://a", "?v"), tp("?v", "http://b", "?z")];
        let counts: TpCounts = vec![
            [(0, 100)].into_iter().collect(),
            [(0, 10)].into_iter().collect(),
        ];
        assert_eq!(
            subquery_cardinality(&[0, 1], &[0], &pats, &counts, &[Variable::new("v")]),
            10
        );
        assert_eq!(
            subquery_cardinality(
                &[0, 1],
                &[0],
                &pats,
                &counts,
                &[Variable::new("s"), Variable::new("v")]
            ),
            100
        );
        // Empty projection falls back to all variables (s, v, z).
        assert_eq!(
            subquery_cardinality(&[0, 1], &[0], &pats, &counts, &[]),
            100
        );
    }

    #[test]
    fn pushable_filters_respect_coverage() {
        let pattern = tp("?s", "http://a", "?v");
        let on_v = Expression::Gt(
            Box::new(Expression::Var(Variable::new("v"))),
            Box::new(Expression::Term(Term::integer(3))),
        );
        let on_z = Expression::Bound(Variable::new("z"));
        let filters = vec![on_v.clone(), on_z];
        let pushed = pushable_filters(&pattern, &filters);
        assert_eq!(pushed, vec![&on_v]);
    }

    #[test]
    fn count_query_shape() {
        let q = count_query(
            &tp("?s", "http://a", "?v"),
            &[Expression::Bound(Variable::new("v"))],
        );
        let text = lusail_sparql::serializer::serialize_query(&q);
        assert!(text.contains("COUNT"), "{text}");
        assert!(text.contains("FILTER"), "{text}");
        lusail_sparql::parse_query(&text).unwrap();
    }

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10, 10), 1.0);
        assert_eq!(q_error(20, 10), 2.0);
        assert_eq!(q_error(10, 20), 2.0);
        assert_eq!(q_error(0, 0), 1.0);
        assert!(q_error(0, 5).is_infinite());
    }
}
