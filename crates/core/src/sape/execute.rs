//! Algorithm 3: selectivity-aware evaluation of subqueries.

use crate::budget::MemoryPhase;
use crate::config::{LusailConfig, ResultPolicy};
use crate::error::EngineError;
use crate::run::{ExecutionWarning, RunContext};
use crate::sape::join::{budgeted_join, charge_output, dp_join_order};
use crate::sape::recover;
use crate::sape::schedule::Schedule;
use crate::subquery::Subquery;
use lusail_federation::{
    EndpointError, EndpointId, FailureKind, Federation, IntegrityRegistry, QuarantineTransition,
    RequestHandler, SelectResponse,
};
use lusail_rdf::dict::{Dictionary, TermId};
use lusail_rdf::fxhash::{FxHashMap, FxHashSet};
use lusail_rdf::Term;
use lusail_sparql::ast::{GraphPattern, Query, Variable};
use lusail_sparql::solution::Relation;

/// The result of executing one branch's subqueries.
#[derive(Debug)]
pub struct SapeOutcome {
    /// Required subqueries joined, with optional subqueries left-joined on.
    pub relation: Relation,
    /// `(subquery id, estimated cardinality, actual rows)` for non-delayed
    /// multi-pattern subqueries — the data behind the paper's q-error
    /// claim (§4.1: median 1.09 on LargeRDFBench).
    pub estimates: Vec<(usize, usize, usize)>,
    /// How many subqueries were evaluated as bound joins.
    pub delayed_executed: usize,
}

/// Executes one branch's scheduled subqueries against the federation.
pub struct SapeExecutor<'a> {
    pub federation: &'a Federation,
    pub handler: &'a RequestHandler,
    pub config: &'a LusailConfig,
    /// Deadline, result policy and warning sink for this query.
    pub ctx: &'a RunContext,
    /// Cross-query result-integrity ledger: learned caps, watch flags,
    /// and quarantine membership, shared by every query on this engine.
    pub integrity: &'a IntegrityRegistry,
}

impl SapeExecutor<'_> {
    /// Run Algorithm 3 over `subqueries` with the given schedule and
    /// estimated cardinalities (parallel to `subqueries`). `bridges` are
    /// `FILTER(?a = ?b)` variable equalities from the branch: disconnected
    /// subquery results joined through them use a hash join on the bridge
    /// keys instead of a cross product (the paper's "disjoint subgraphs
    /// joined by a filter variable", C5/B5/B6).
    /// `expected` (parallel to `subqueries`, possibly shorter) carries
    /// the per-endpoint row counts the SAPE `COUNT` probes predicted for
    /// single-pattern subqueries; a delivery below the prediction is a
    /// truncation signal.
    pub fn execute(
        &self,
        subqueries: &[Subquery],
        schedule: &Schedule,
        cardinalities: &[usize],
        bridges: &[(Variable, Variable)],
        expected: &[FxHashMap<EndpointId, usize>],
    ) -> Result<SapeOutcome, EngineError> {
        let mut partials: Vec<Option<Relation>> = vec![None; subqueries.len()];
        let mut estimates = Vec::new();

        // ---- Phase 1: non-delayed subqueries, one concurrent wave ------
        self.ctx.check()?;
        // Pre-seed empty results so a subquery with no relevant sources
        // correctly contributes an *empty* relation (not "no relation",
        // which would drop it from the join and fabricate answers).
        for &i in schedule.non_delayed.iter().chain(&schedule.delayed) {
            partials[i] = Some(Relation::new(subqueries[i].projection.clone()));
        }
        let wave: Vec<(usize, EndpointId)> = schedule
            .non_delayed
            .iter()
            .flat_map(|&i| subqueries[i].sources.iter().map(move |&ep| (i, ep)))
            .collect();
        let results = self.handler.map_cancellable(
            wave.clone(),
            self.ctx.deadline.clone(),
            |_| Err(EndpointError::deadline("subquery wave")),
            |(i, ep)| {
                self.federation
                    .endpoint(ep)
                    .select_with_meta(&subqueries[i].to_query(), self.ctx.deadline.clone())
            },
        );
        for ((i, ep), resp) in wave.into_iter().zip(results) {
            // A skipped endpoint contributes nothing to this subquery's
            // partial: under `--partial`, answers from the remaining
            // sources still flow through.
            let what = format!("subquery #{}", subqueries[i].id);
            let empty = SelectResponse {
                rows: Relation::new(subqueries[i].projection.clone()),
                truncated: false,
            };
            let (resp, degraded) = self.ctx.absorb_flagged(&what, empty, resp)?;
            let rel = if degraded {
                resp.rows
            } else {
                let exp = expected.get(i).and_then(|m| m.get(&ep)).copied();
                self.verify_and_recover(&what, ep, &subqueries[i].to_query(), resp, exp)?
            };
            let rel = self.ctx.admit_relation(
                &what,
                self.federation.endpoint(ep).name(),
                MemoryPhase::Wave,
                rel,
            )?;
            match &mut partials[i] {
                Some(existing) => existing.append(rel),
                slot @ None => *slot = Some(rel),
            }
        }
        self.ctx.check()?;

        for &i in &schedule.non_delayed {
            if subqueries[i].patterns.len() > 1 {
                let actual = partials[i].as_ref().map_or(0, |r| r.len());
                estimates.push((subqueries[i].id, cardinalities[i], actual));
            }
        }

        // ---- Found bindings: join connected non-delayed results --------
        // (§4.2: "Whenever possible, the results of non-delayed subqueries
        // are joined together. This reduces the number of found bindings.")
        let mut bindings = FoundBindings::default();
        {
            let executed: Vec<usize> = schedule
                .non_delayed
                .iter()
                .copied()
                .filter(|&i| partials[i].is_some())
                .collect();
            for component in connected_components(&executed, subqueries) {
                let rels: Vec<&Relation> = component
                    .iter()
                    .map(|&i| partials[i].as_ref().unwrap())
                    .collect();
                let joined = join_all(&rels, self.handler, self.ctx)?;
                for v in joined.vars() {
                    bindings.update(v, joined.distinct_values(v));
                }
            }
        }

        // ---- Phase 2: delayed subqueries as bound joins -----------------
        // Required delayed subqueries first (they produce bindings),
        // optional ones after (they only consume).
        let mut remaining: Vec<usize> = schedule
            .delayed
            .iter()
            .copied()
            .filter(|&i| !subqueries[i].optional)
            .collect();
        let optionals: Vec<usize> = schedule
            .delayed
            .iter()
            .copied()
            .filter(|&i| subqueries[i].optional)
            .collect();
        let mut delayed_executed = 0;

        while !remaining.is_empty() {
            self.ctx.check()?;
            // Most selective next, by refined cardinality (§4.2).
            let pick_pos = (0..remaining.len())
                .min_by_key(|&p| {
                    let i = remaining[p];
                    refined_cardinality(&subqueries[i], cardinalities[i], &bindings)
                })
                .unwrap();
            let i = remaining.swap_remove(pick_pos);
            let rel = self.run_bound(&subqueries[i], &bindings, expected.get(i))?;
            for v in subqueries[i].projection.clone() {
                let vals = rel.distinct_values(&v);
                bindings.update(&v, vals);
            }
            partials[i] = Some(rel);
            delayed_executed += 1;
        }

        // ---- Final join of required partials ----------------------------
        let required: Vec<usize> = (0..subqueries.len())
            .filter(|&i| !subqueries[i].optional && partials[i].is_some())
            .collect();
        let rels: Vec<&Relation> = required
            .iter()
            .map(|&i| partials[i].as_ref().unwrap())
            .collect();
        let mut result = join_all_bridged(&rels, bridges, self.handler, self.ctx)?;

        // ---- Optional subqueries: bound-evaluate, then left-join --------
        for &i in &optionals {
            self.ctx.check()?;
            let rel = self.run_bound(&subqueries[i], &bindings, expected.get(i))?;
            delayed_executed += 1;
            result = result.left_join(&rel);
        }

        Ok(SapeOutcome {
            relation: result,
            estimates,
            delayed_executed,
        })
    }

    /// Evaluate one subquery with its variables bound to already-found
    /// bindings, in `VALUES` blocks (lines 11–17 of Algorithm 3). Falls
    /// back to unbound evaluation when no binding variable overlaps.
    fn run_bound(
        &self,
        sq: &Subquery,
        bindings: &FoundBindings,
        expected: Option<&FxHashMap<EndpointId, usize>>,
    ) -> Result<Relation, EngineError> {
        // Choose the overlap variable with the fewest found bindings.
        let bind_var = sq
            .variables()
            .into_iter()
            .filter(|v| bindings.contains(v))
            .min_by_key(|v| bindings.count(v));

        let sources = self.refine_sources(sq, bind_var.as_ref(), bindings)?;

        let what = format!("subquery #{}", sq.id);
        let mut out = Relation::new(sq.projection.clone());
        match bind_var {
            None => {
                let wave: Vec<EndpointId> = sources;
                let results = self.handler.map_cancellable(
                    wave.clone(),
                    self.ctx.deadline.clone(),
                    |_| Err(EndpointError::deadline("bound join")),
                    |ep| {
                        self.federation
                            .endpoint(ep)
                            .select_with_meta(&sq.to_query(), self.ctx.deadline.clone())
                    },
                );
                for (ep, resp) in wave.into_iter().zip(results) {
                    let empty = SelectResponse {
                        rows: Relation::new(sq.projection.clone()),
                        truncated: false,
                    };
                    let (resp, degraded) = self.ctx.absorb_flagged(&what, empty, resp)?;
                    let rel = if degraded {
                        resp.rows
                    } else {
                        let exp = expected.and_then(|m| m.get(&ep)).copied();
                        self.verify_and_recover(&what, ep, &sq.to_query(), resp, exp)?
                    };
                    out.append(self.ctx.admit_relation(
                        &what,
                        self.federation.endpoint(ep).name(),
                        MemoryPhase::BoundJoin,
                        rel,
                    )?);
                }
            }
            Some(v) => {
                // Bindings live as interned ids; terms materialize only
                // here, where they go onto the wire in VALUES blocks.
                let values = bindings.terms(&v);
                let blocks = chunk_by_size(
                    &values,
                    self.config.bound_block_size.max(1),
                    self.config.bound_block_max_bytes.max(64),
                );
                let wave: Vec<(usize, EndpointId)> = (0..blocks.len())
                    .flat_map(|b| sources.iter().map(move |&ep| (b, ep)))
                    .collect();
                let results = self.handler.map_cancellable(
                    wave.clone(),
                    self.ctx.deadline.clone(),
                    |_| Err(EndpointError::deadline("bound join")),
                    |(b, ep)| {
                        let q = sq.to_bound_query(std::slice::from_ref(&v), &blocks[b]);
                        self.federation
                            .endpoint(ep)
                            .select_with_meta(&q, self.ctx.deadline.clone())
                    },
                );
                for ((b, ep), resp) in wave.into_iter().zip(results) {
                    // Bound queries may expose the bind variable even if it
                    // is not projected; align headers.
                    let empty = SelectResponse {
                        rows: Relation::new(sq.projection.clone()),
                        truncated: false,
                    };
                    let (resp, degraded) = self.ctx.absorb_flagged(&what, empty, resp)?;
                    let rel = if degraded {
                        resp.rows
                    } else {
                        // The probes' expected counts describe the unbound
                        // pattern; a `VALUES`-restricted result is smaller,
                        // so only the advertisement/heuristics apply here.
                        let q = sq.to_bound_query(std::slice::from_ref(&v), &blocks[b]);
                        self.verify_and_recover(&what, ep, &q, resp, None)?
                    };
                    let rel = self.ctx.admit_relation(
                        &what,
                        self.federation.endpoint(ep).name(),
                        MemoryPhase::BoundJoin,
                        rel.project(&sq.projection.clone()),
                    )?;
                    out.append(rel);
                }
            }
        }
        self.ctx.check()?;
        Ok(out)
    }

    /// Source-selection refinement for generic subqueries (line 13 of
    /// Algorithm 3): when the subquery contains an unconstrained pattern
    /// (three variables, or a variable predicate), re-`ASK` each source
    /// with a sample of the found bindings attached and drop sources that
    /// answer no.
    fn refine_sources(
        &self,
        sq: &Subquery,
        bind_var: Option<&Variable>,
        bindings: &FoundBindings,
    ) -> Result<Vec<EndpointId>, EngineError> {
        let generic = sq
            .patterns
            .iter()
            .any(|tp| tp.free_slots() == 3 || tp.predicate.is_var());
        let (Some(v), true) = (bind_var, generic) else {
            return Ok(sq.sources.clone());
        };
        let sample: Vec<Vec<Option<Term>>> = bindings
            .sample(v, 32)
            .into_iter()
            .map(|t| vec![Some(t)])
            .collect();
        let probe = Query::ask(
            GraphPattern::Bgp(sq.patterns.clone())
                .join(GraphPattern::Values(vec![v.clone()], sample)),
        );
        let answers = self.handler.map_cancellable(
            sq.sources.clone(),
            self.ctx.deadline.clone(),
            |_| Err(EndpointError::deadline("source refinement")),
            |ep| {
                self.federation
                    .endpoint(ep)
                    .ask_within(&probe, self.ctx.deadline.clone())
            },
        );
        let what = format!("source refinement for subquery #{}", sq.id);
        let mut kept: Vec<EndpointId> = Vec::new();
        for (ep, yes) in sq.sources.iter().copied().zip(answers) {
            // Default `true`: keeping an unreachable source is safe — the
            // actual subquery wave will skip (or fail on) it under the
            // active policy.
            if self.ctx.absorb(&what, true, yes)? {
                kept.push(ep);
            }
        }
        if kept.is_empty() {
            // A sample miss must not orphan the subquery entirely.
            Ok(sq.sources.clone())
        } else {
            Ok(kept)
        }
    }

    /// Cross-check one plain-`SELECT` response against the integrity
    /// ledger and — when suspected or advertised truncated — against a
    /// fresh `COUNT(*)` probe, transparently re-fetching the complete
    /// result via deterministic paging when the endpoint cut it short.
    fn verify_and_recover(
        &self,
        what: &str,
        ep: EndpointId,
        base: &Query,
        resp: SelectResponse,
        expected: Option<usize>,
    ) -> Result<Relation, EngineError> {
        let endpoint = self.federation.endpoint(ep);
        let name = endpoint.name();
        let reg = self.integrity;
        let delivered = resp.rows.len();
        let suspicious = reg.observe_rows(name, delivered);
        let must_verify = resp.truncated
            || suspicious
            || reg.needs_verification(name)
            || expected.is_some_and(|e| e > delivered);
        if !must_verify {
            return Ok(resp.rows);
        }
        self.ctx.check()?;
        reg.record_verification(name);
        let probe = recover::count_star(base);
        let claimed = match endpoint.count_within(&probe, self.ctx.deadline.clone()) {
            Ok(n) => n,
            Err(e) if matches!(e.kind, FailureKind::Deadline | FailureKind::Cancelled) => {
                return Err(self.deadline_error(what, e));
            }
            // A failed probe says nothing about the rows already in hand:
            // keep them rather than discard good data over a flaky probe.
            Err(_) => return Ok(resp.rows),
        };
        match claimed.cmp(&delivered) {
            std::cmp::Ordering::Equal if !resp.truncated => {
                self.apply_transition(ep, reg.record_clean(name));
                Ok(resp.rows)
            }
            std::cmp::Ordering::Less => {
                // The endpoint *under*-claims — more rows than its own
                // COUNT admits to (the result-bomb shape). There is
                // nothing to page for, and the row-cap/memory-budget
                // defenses own oversized responses; record the strike
                // silently so repeated under-claiming still quarantines,
                // and hand the rows to the admission layer to police.
                let transition = reg.record_divergence(name, claimed, delivered);
                self.apply_transition(ep, transition);
                Ok(resp.rows)
            }
            _ => self.recover_paged(what, ep, base, resp, claimed),
        }
    }

    /// The response was confirmed truncated (`claimed > delivered`, or
    /// the server advertised the cut): re-fetch the complete result from
    /// offset 0 via deterministic `ORDER BY`+`LIMIT/OFFSET` paging,
    /// adapting the page size to the memory budget and stopping on the
    /// deadline, an empty page, the claimed total, or the page cap.
    fn recover_paged(
        &self,
        what: &str,
        ep: EndpointId,
        base: &Query,
        resp: SelectResponse,
        claimed: usize,
    ) -> Result<Relation, EngineError> {
        let endpoint = self.federation.endpoint(ep);
        let name = endpoint.name().to_string();
        let reg = self.integrity;
        let delivered = resp.rows.len();
        reg.record_truncation(&name);

        let max_pages = reg.config().max_pages;
        let mut limit = recover::initial_limit(delivered);
        let mut offset = 0usize;
        let mut pages: Vec<(usize, Relation)> = Vec::new();
        let mut fetched: u64 = 0;
        let mut merged_rows = 0usize;
        let mut page_bytes = 0usize;
        // Why paging stopped short of the claim, if it did.
        let mut stopped: Option<&'static str> = None;
        let mut exhausted = false;
        while merged_rows < claimed {
            self.ctx.check()?;
            if fetched as usize >= max_pages {
                stopped = Some("page cap reached");
                break;
            }
            // Under --partial, recovery may claim at most half of the
            // remaining budget — mirroring admit_relation's headroom rule
            // — so a huge reconstruction degrades itself, not the query.
            if self.ctx.policy == ResultPolicy::Partial
                && self.ctx.memory.is_bounded()
                && page_bytes > self.ctx.memory.remaining() / 2
            {
                stopped = Some("memory budget exhausted");
                break;
            }
            let pq = recover::paged_query(base, limit, offset);
            let page = match endpoint.select_within(&pq, self.ctx.deadline.clone()) {
                Ok(r) => r,
                Err(e) if matches!(e.kind, FailureKind::Deadline | FailureKind::Cancelled) => {
                    return Err(self.deadline_error(what, e));
                }
                Err(e) if self.ctx.policy == ResultPolicy::Partial && e.is_skippable() => {
                    stopped = Some("endpoint became unreachable");
                    break;
                }
                Err(e) => return Err(EngineError::Endpoint(e)),
            };
            fetched += 1;
            let got = page.len();
            page_bytes += recover::relation_wire_size(&page);
            if fetched == 1 {
                let budget = self
                    .ctx
                    .memory
                    .is_bounded()
                    .then(|| self.ctx.memory.remaining());
                limit = recover::adaptive_limit(limit, got, page_bytes, budget);
            }
            merged_rows += got;
            pages.push((offset, page));
            offset += got;
            if got == 0 {
                exhausted = true;
                break;
            }
        }

        let merged = recover::merge_pages(resp.rows.vars().to_vec(), pages);
        reg.record_recovery(
            &name,
            fetched,
            merged.len().saturating_sub(delivered) as u64,
        );
        if merged.len() >= claimed {
            // Fully reconstructed: the endpoint cut the rows but told the
            // truth about its count — the verification reconciled.
            self.apply_transition(ep, reg.record_clean(&name));
            return Ok(merged);
        }
        // Keep whichever of the reconstruction and the original prefix
        // carries more rows.
        let best = if merged.len() >= delivered {
            merged
        } else {
            resp.rows
        };
        if exhausted {
            // The endpoint has no more rows to give: the claim was a lie.
            let best_len = best.len();
            return self.divergence(what, ep, claimed, best_len, best);
        }
        // We stopped for our own reasons (budget, page cap, outage) — not
        // the endpoint's fault, so no strike — but the result is known
        // incomplete.
        let message = format!(
            "integrity: recovery of a truncated result stopped after {fetched} pages \
             ({} of {claimed} claimed rows): {}",
            best.len(),
            stopped.unwrap_or("stopped early"),
        );
        match self.ctx.policy {
            ResultPolicy::FailFast => Err(EngineError::Endpoint(EndpointError::integrity(
                name, message,
            ))),
            ResultPolicy::Partial => {
                self.ctx.warn(ExecutionWarning {
                    endpoint: name,
                    subquery: what.to_string(),
                    message,
                });
                Ok(best)
            }
        }
    }

    /// Record an irreconcilable claimed-vs-delivered divergence: a strike
    /// (possibly entering quarantine), then a structured integrity error
    /// under fail-fast or a non-skippable warning under `--partial` —
    /// either way naming the endpoint and both counts.
    fn divergence(
        &self,
        what: &str,
        ep: EndpointId,
        claimed: usize,
        delivered: usize,
        best: Relation,
    ) -> Result<Relation, EngineError> {
        let name = self.federation.endpoint(ep).name().to_string();
        let transition = self.integrity.record_divergence(&name, claimed, delivered);
        self.apply_transition(ep, transition);
        let standing = if self.integrity.is_quarantined(&name) {
            "endpoint quarantined"
        } else {
            "divergence recorded"
        };
        let message = format!(
            "integrity: endpoint claimed {claimed} rows but delivered {delivered}; {standing}"
        );
        match self.ctx.policy {
            ResultPolicy::FailFast => Err(EngineError::Endpoint(EndpointError::integrity(
                name, message,
            ))),
            ResultPolicy::Partial => {
                self.ctx.warn(ExecutionWarning {
                    endpoint: name,
                    subquery: what.to_string(),
                    message,
                });
                Ok(best)
            }
        }
    }

    /// Mirror a quarantine transition into the endpoint's health registry
    /// so replica ranking and `--stats` see it.
    fn apply_transition(&self, ep: EndpointId, transition: QuarantineTransition) {
        match transition {
            QuarantineTransition::Entered => self.federation.endpoint(ep).set_quarantined(true),
            QuarantineTransition::Exited => self.federation.endpoint(ep).set_quarantined(false),
            QuarantineTransition::None => {}
        }
    }

    /// Map a deadline/cancellation failure from a probe or page request
    /// through the context, preserving any cancellation reason.
    fn deadline_error(&self, what: &str, e: EndpointError) -> EngineError {
        self.ctx
            .absorb(what, (), Err(e))
            .expect_err("deadline failures always abort")
    }
}

/// Split binding values into `VALUES` blocks bounded both by count and by
/// serialized size, so no bound-join request exceeds the endpoints'
/// query-length limits.
fn chunk_by_size(
    values: &[Term],
    max_count: usize,
    max_bytes: usize,
) -> Vec<Vec<Vec<Option<Term>>>> {
    let mut blocks = Vec::new();
    let mut current: Vec<Vec<Option<Term>>> = Vec::new();
    let mut bytes = 0usize;
    for t in values {
        let size = t.to_string().len() + 4;
        if !current.is_empty() && (current.len() >= max_count || bytes + size > max_bytes) {
            blocks.push(std::mem::take(&mut current));
            bytes = 0;
        }
        bytes += size;
        current.push(vec![Some(t.clone())]);
    }
    if !current.is_empty() {
        blocks.push(current);
    }
    blocks
}

/// Group executed subqueries into components connected by shared projected
/// variables.
fn connected_components(executed: &[usize], subqueries: &[Subquery]) -> Vec<Vec<usize>> {
    let mut unassigned: Vec<usize> = executed.to_vec();
    let mut components = Vec::new();
    while let Some(seed) = unassigned.pop() {
        let mut component = vec![seed];
        let mut vars: FxHashSet<Variable> = subqueries[seed].projection.iter().cloned().collect();
        loop {
            let mut grew = false;
            unassigned.retain(|&i| {
                if subqueries[i].projection.iter().any(|v| vars.contains(v)) {
                    component.push(i);
                    vars.extend(subqueries[i].projection.iter().cloned());
                    grew = true;
                    false
                } else {
                    true
                }
            });
            if !grew {
                break;
            }
        }
        components.push(component);
    }
    components
}

/// Join a set of relations in DP order.
fn join_all(
    rels: &[&Relation],
    handler: &RequestHandler,
    ctx: &RunContext,
) -> Result<Relation, EngineError> {
    join_all_bridged(rels, &[], handler, ctx)
}

/// Join a set of relations in DP order; when two relations share no
/// variable but a `FILTER(?a = ?b)` bridge connects them, hash join on the
/// bridge keys instead of taking the product.
///
/// Every pairwise join runs through [`budgeted_join`]: under a bounded
/// memory budget, a join whose working set would not fit spills to an
/// external sort-merge, and a join whose *output* cannot fit either
/// aborts ([`ResultPolicy::FailFast`]) or truncates with a warning
/// ([`ResultPolicy::Partial`]). Consumed accumulators release their
/// charge, so only the live intermediate stays accounted.
fn join_all_bridged(
    rels: &[&Relation],
    bridges: &[(Variable, Variable)],
    handler: &RequestHandler,
    ctx: &RunContext,
) -> Result<Relation, EngineError> {
    const WHAT: &str = "global join";
    match rels.len() {
        0 => {
            // The unit relation: no vars, one empty row.
            Ok(Relation::from_rows(Vec::new(), vec![Vec::new()]))
        }
        1 => Ok(rels[0].clone()),
        _ => {
            let owned: Vec<Relation> = rels.iter().map(|r| (*r).clone()).collect();
            let order = dp_join_order(&owned);
            let truncate = ctx.policy == ResultPolicy::Partial;
            let mut acc = owned[order[0]].clone();
            let mut acc_charged = 0usize;
            for &i in &order[1..] {
                let next = &owned[i];
                let shares_var = acc.vars().iter().any(|v| next.index_of(v).is_some());
                let outcome = if shares_var {
                    budgeted_join(&acc, next, handler, &ctx.memory, truncate)
                } else {
                    // Disconnected: look for bridges in either orientation.
                    let pairs: Vec<(Variable, Variable)> = bridges
                        .iter()
                        .filter_map(|(a, b)| {
                            if acc.index_of(a).is_some() && next.index_of(b).is_some() {
                                Some((a.clone(), b.clone()))
                            } else if acc.index_of(b).is_some() && next.index_of(a).is_some() {
                                Some((b.clone(), a.clone()))
                            } else {
                                None
                            }
                        })
                        .collect();
                    if pairs.is_empty() {
                        budgeted_join(&acc, next, handler, &ctx.memory, truncate)
                    } else {
                        charge_output(acc.equi_join(next, &pairs), &ctx.memory, truncate)
                    }
                };
                let outcome = outcome.map_err(|_| ctx.budget_error(WHAT, ""))?;
                if outcome.truncated {
                    ctx.warn(ExecutionWarning {
                        endpoint: "federator".into(),
                        subquery: WHAT.into(),
                        message: format!(
                            "memory budget exhausted: join output truncated to {} rows",
                            outcome.relation.len()
                        ),
                    });
                }
                ctx.memory.release(acc_charged);
                acc = outcome.relation;
                acc_charged = outcome.charged;
            }
            Ok(acc)
        }
    }
}

/// The found bindings of Algorithm 3, held as interned ids.
///
/// One query-scoped [`Dictionary`] interns every binding term exactly
/// once; per variable the bindings are a sorted, deduplicated `Vec` of
/// `u32` ids. Every intersection — the hot operation, run after each
/// delayed subquery — is then a linear two-pointer merge over integers
/// with no string comparison at all. Terms materialize only at the wire:
/// `VALUES` block construction and `ASK` refinement samples.
#[derive(Default)]
struct FoundBindings {
    dict: Dictionary,
    vars: FxHashMap<Variable, Vec<TermId>>,
}

impl FoundBindings {
    /// Intersect (or insert) the found bindings of a variable.
    ///
    /// Bindings are kept id-sorted and deduplicated (established at
    /// insertion, preserved by intersection), so each merge is one sort
    /// of the incoming ids plus a linear two-pointer intersection —
    /// pathological binding sets stay `O(n log n)` where a per-value
    /// scan would go quadratic.
    fn update(&mut self, v: &Variable, values: Vec<Term>) {
        let mut ids: Vec<TermId> = values.iter().map(|t| self.dict.encode(t)).collect();
        ids.sort_unstable();
        ids.dedup();
        match self.vars.get_mut(v) {
            None => {
                self.vars.insert(v.clone(), ids);
            }
            Some(existing) => {
                let mut merged = Vec::with_capacity(existing.len().min(ids.len()));
                let (mut a, mut b) = (0, 0);
                while a < existing.len() && b < ids.len() {
                    match existing[a].cmp(&ids[b]) {
                        std::cmp::Ordering::Less => a += 1,
                        std::cmp::Ordering::Greater => b += 1,
                        std::cmp::Ordering::Equal => {
                            merged.push(existing[a]);
                            a += 1;
                            b += 1;
                        }
                    }
                }
                *existing = merged;
            }
        }
    }

    fn contains(&self, v: &Variable) -> bool {
        self.vars.contains_key(v)
    }

    /// Number of bindings for `v`, if any were found.
    fn count(&self, v: &Variable) -> Option<usize> {
        self.vars.get(v).map(Vec::len)
    }

    /// Materialize all bindings of `v` back into terms (id order).
    fn terms(&self, v: &Variable) -> Vec<Term> {
        self.vars.get(v).map_or_else(Vec::new, |ids| {
            ids.iter().map(|&id| self.dict.decode(id).clone()).collect()
        })
    }

    /// Materialize at most `n` bindings of `v` (id order).
    fn sample(&self, v: &Variable, n: usize) -> Vec<Term> {
        self.vars.get(v).map_or_else(Vec::new, |ids| {
            ids.iter()
                .take(n)
                .map(|&id| self.dict.decode(id).clone())
                .collect()
        })
    }
}

/// `getMostSelectiveSubq`: the subquery's estimate, tightened by the
/// found-binding counts of any variable it joins on.
fn refined_cardinality(sq: &Subquery, original: usize, bindings: &FoundBindings) -> usize {
    sq.variables()
        .iter()
        .filter_map(|v| bindings.count(v))
        .min()
        .map_or(original, |b| b.min(original))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    #[test]
    fn chunk_by_size_respects_both_caps() {
        let values: Vec<Term> = (0..100)
            .map(|i| Term::iri(format!("http://example.org/entity/{i:04}")))
            .collect();
        // Count cap dominates.
        let blocks = chunk_by_size(&values, 10, 1 << 20);
        assert_eq!(blocks.len(), 10);
        assert!(blocks.iter().all(|b| b.len() == 10));
        // Byte cap dominates: each value serializes to ~36 bytes.
        let blocks = chunk_by_size(&values, 1000, 120);
        assert!(blocks.len() > 10, "{}", blocks.len());
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, 100, "no value may be lost");
        // A single value larger than the cap still ships (alone).
        let huge = vec![Term::iri("x".repeat(500))];
        let blocks = chunk_by_size(&huge, 10, 64);
        assert_eq!(blocks.len(), 1);
        assert!(chunk_by_size(&[], 10, 64).is_empty());
    }

    fn sorted_terms(b: &FoundBindings, v: &Variable) -> Vec<Term> {
        let mut terms = b.terms(v);
        terms.sort_unstable();
        terms
    }

    #[test]
    fn found_bindings_intersect() {
        let mut b = FoundBindings::default();
        let t = |i: usize| Term::iri(format!("http://x/{i}"));
        b.update(&v("x"), vec![t(1), t(2), t(3)]);
        b.update(&v("x"), vec![t(2), t(3), t(4)]);
        assert_eq!(sorted_terms(&b, &v("x")), vec![t(2), t(3)]);
        assert_eq!(b.count(&v("x")), Some(2));
        assert!(b.contains(&v("x")));
        assert!(!b.contains(&v("y")));
    }

    #[test]
    fn found_bindings_dedupe_and_sample() {
        let mut b = FoundBindings::default();
        let t = |i: usize| Term::iri(format!("http://x/{i}"));
        // Duplicates and arbitrary order in: deduplicated out.
        b.update(&v("x"), vec![t(3), t(1), t(2), t(1), t(3)]);
        assert_eq!(sorted_terms(&b, &v("x")), vec![t(1), t(2), t(3)]);
        b.update(&v("x"), vec![t(4), t(3), t(3), t(2)]);
        assert_eq!(sorted_terms(&b, &v("x")), vec![t(2), t(3)]);
        // Samples are a prefix of the full binding list.
        let sample = b.sample(&v("x"), 1);
        assert_eq!(sample.len(), 1);
        assert_eq!(sample[0], b.terms(&v("x"))[0]);
        assert!(b.sample(&v("y"), 5).is_empty());
        // Disjoint intersection empties the binding set.
        b.update(&v("x"), vec![t(9)]);
        assert_eq!(b.count(&v("x")), Some(0));
        assert!(b.terms(&v("x")).is_empty());
    }

    #[test]
    fn found_bindings_ids_are_shared_across_variables() {
        // The same term seen through two variables interns once.
        let mut b = FoundBindings::default();
        let t = Term::iri("http://x/shared");
        b.update(&v("x"), vec![t.clone()]);
        b.update(&v("y"), vec![t.clone()]);
        assert_eq!(b.dict.len(), 1);
        assert_eq!(b.terms(&v("x")), b.terms(&v("y")));
    }

    #[test]
    fn components_group_by_shared_projection() {
        let mk = |id: usize, proj: &[&str]| Subquery {
            id,
            patterns: vec![],
            filters: vec![],
            sources: vec![0],
            projection: proj.iter().map(|n| v(n)).collect(),
            optional: false,
        };
        let sqs = vec![mk(0, &["a", "b"]), mk(1, &["b", "c"]), mk(2, &["z"])];
        let comps = connected_components(&[0, 1, 2], &sqs);
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = comps.iter().map(|c| c.len()).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn refined_cardinality_uses_smallest_binding() {
        let sq = Subquery {
            id: 0,
            patterns: vec![lusail_sparql::ast::TriplePattern::new(
                lusail_sparql::ast::TermPattern::var("x"),
                lusail_sparql::ast::TermPattern::iri("http://p"),
                lusail_sparql::ast::TermPattern::var("y"),
            )],
            filters: vec![],
            sources: vec![0],
            projection: vec![v("x"), v("y")],
            optional: false,
        };
        let mut b = FoundBindings::default();
        b.update(&v("x"), vec![Term::iri("http://1"), Term::iri("http://2")]);
        assert_eq!(refined_cardinality(&sq, 1000, &b), 2);
        assert_eq!(refined_cardinality(&sq, 1, &b), 1);
        let empty = FoundBindings::default();
        assert_eq!(refined_cardinality(&sq, 1000, &empty), 1000);
    }
}
