//! Global join evaluation (Section 4.2, "Join Evaluation").
//!
//! Subquery results are relations with known true cardinalities. A dynamic
//! programming enumerator (in the style of Moerkotte & Neumann, as the
//! paper cites) picks the join order; each pairwise join is a hash join
//! whose probe side is partitioned across the ERH threads.
//!
//! Under a [`MemoryBudget`], [`budgeted_join`] guards every pairwise
//! join: when the in-memory hash join's working set would not fit the
//! remaining budget, the join spills both sides to sorted temp-file runs
//! and merge-joins them back (a std-only external sort-merge join), so a
//! federation-sized intermediate degrades to disk instead of aborting —
//! only the *output* still has to fit the budget.

use crate::budget::{BudgetExhausted, MemoryBudget, MemoryPhase};
use crate::run::ADMISSION_CHUNK_ROWS;
use lusail_federation::RequestHandler;
use lusail_rdf::dict::{KeyInterner, SlotId, UNBOUND};
use lusail_rdf::fxhash::FxHashMap;
use lusail_rdf::{Literal, Term};
use lusail_sparql::ast::Variable;
use lusail_sparql::solution::{encode_keys, row_wire_size, MergePlan, Relation, Row};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Compute a join order for `relations` via DP over connected subsets.
///
/// Returns the sequence of relation indices in join order. Cross products
/// are avoided while any connected join exists; disconnected components
/// are concatenated afterwards (their product is taken last, which is also
/// what the paper's planner does for disjoint subgraphs joined by a filter
/// variable).
pub fn dp_join_order(relations: &[Relation]) -> Vec<usize> {
    let n = relations.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    if n > 16 {
        // DP table would explode; fall back to greedy smallest-first.
        return greedy_order(relations);
    }

    let connected = |a: usize, b: usize| -> bool {
        relations[a]
            .vars()
            .iter()
            .any(|v| relations[b].index_of(v).is_some())
    };

    // DP over bitmasks: state → (cost, estimated size, order).
    #[derive(Clone)]
    struct State {
        cost: f64,
        size: f64,
        order: Vec<usize>,
    }
    let full: usize = (1 << n) - 1;
    let mut table: FxHashMap<usize, State> = FxHashMap::default();
    for (i, rel) in relations.iter().enumerate() {
        table.insert(
            1 << i,
            State {
                cost: 0.0,
                size: rel.len() as f64,
                order: vec![i],
            },
        );
    }

    // Grow plans one relation at a time (left-deep is sufficient here: the
    // number of subqueries per branch is small and all joins are hash
    // joins).
    for mask in 1..=full {
        let Some(state) = table.get(&mask).cloned() else {
            continue;
        };
        #[allow(clippy::needless_range_loop)] // r is a bitmask position, not just an index
        for r in 0..n {
            if mask & (1 << r) != 0 {
                continue;
            }
            // Prefer connected extensions; allow cross products only when
            // nothing in the mask connects to anything outside.
            let any_connected = (0..n).any(|x| {
                mask & (1 << x) != 0 && (0..n).any(|y| mask & (1 << y) == 0 && connected(x, y))
            });
            let this_connected = (0..n).any(|x| mask & (1 << x) != 0 && connected(x, r));
            if any_connected && !this_connected {
                continue;
            }
            let r_size = relations[r].len() as f64;
            // Paper: JoinCost(S, R) = hash the smaller + probe the other.
            let join_cost = state.size.min(r_size) + state.size.max(r_size);
            let new_cost = state.cost + join_cost;
            // Connected-join size estimate: the paper's min rule — the
            // bindings of the join variable are bounded by the smaller
            // side (C(sq, v, ep) = min(...)). Cross products multiply.
            let new_size = if this_connected {
                state.size.min(r_size)
            } else {
                state.size * r_size
            };
            let next_mask = mask | (1 << r);
            let better = match table.get(&next_mask) {
                Some(existing) => new_cost < existing.cost,
                None => true,
            };
            if better {
                let mut order = state.order.clone();
                order.push(r);
                table.insert(
                    next_mask,
                    State {
                        cost: new_cost,
                        size: new_size,
                        order,
                    },
                );
            }
        }
    }
    table
        .remove(&full)
        .map(|s| s.order)
        .unwrap_or_else(|| greedy_order(relations))
}

fn greedy_order(relations: &[Relation]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..relations.len()).collect();
    order.sort_by_key(|&i| relations[i].len());
    order
}

/// Hash join `a ⋈ b` with the probe side split across the handler's
/// threads (the paper's step (ii): threads holding the larger relation
/// probe a hash table built from the smaller one).
///
/// Both join keys are interned once into a shared query-scoped
/// [`KeyInterner`] and every row's join-key hash is computed exactly once
/// — over its fixed-width [`SlotId`]s, not its strings. The build table is
/// shared read-only by all threads; each thread probes a *contiguous*
/// range of the larger side, so probe rows and output merges stay
/// sequential in memory instead of scattering through hash partitions.
/// Terms materialize again only in the output rows.
pub fn parallel_join(a: &Relation, b: &Relation, handler: &RequestHandler) -> Relation {
    let shared: Vec<Variable> = a
        .vars()
        .iter()
        .filter(|v| b.index_of(v).is_some())
        .cloned()
        .collect();
    // Below ~16k rows on the smaller side the sequential interned join
    // wins: thread fan-out and the shared-table indirection cost more
    // than they parallelize away (measured in the micro_joins bench).
    const MIN_ROWS: usize = 16 * 1024;
    if shared.is_empty() || a.len().min(b.len()) < MIN_ROWS || handler.threads() < 2 {
        // Products and small inputs aren't worth the fan-out overhead.
        return a.join(b);
    }
    chunked_probe_join(a, b, &shared, handler)
}

/// The partitioned-probe body of [`parallel_join`], without its size
/// gate: `shared` must be the non-empty shared-variable list.
fn chunked_probe_join(
    a: &Relation,
    b: &Relation,
    shared: &[Variable],
    handler: &RequestHandler,
) -> Relation {
    let parts = handler.threads();
    let a_idx: Vec<usize> = shared.iter().map(|v| a.index_of(v).unwrap()).collect();
    let b_idx: Vec<usize> = shared.iter().map(|v| b.index_of(v).unwrap()).collect();

    // Intern only the join-key columns once; each key string is hashed a
    // single time here, everything after works on u32 slots. Non-key cells
    // never touch the interner — output merges straight from the original
    // term rows.
    let mut dict = KeyInterner::new();
    let a_keys = encode_keys(a.rows(), &a_idx, &mut dict);
    let b_keys = encode_keys(b.rows(), &b_idx, &mut dict);
    if a_keys
        .iter()
        .chain(b_keys.iter())
        .any(|k| k.contains(&UNBOUND))
    {
        // Unbound join keys (possible after OPTIONAL): correctness first.
        return a.join(b);
    }

    let slot_hash = |key: &[SlotId]| -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = lusail_rdf::fxhash::FxHasher::default();
        for &s in key {
            s.hash(&mut h);
        }
        h.finish()
    };

    let build_from_a = a.len() <= b.len();
    let (build_keys, probe_keys) = if build_from_a {
        (&a_keys, &b_keys)
    } else {
        (&b_keys, &a_keys)
    };
    let probe_len = if build_from_a { b.len() } else { a.len() };

    // Build once from the smaller side, keyed by the slot hash; slot
    // equality resolves the (rare) collisions at probe time.
    let mut table: FxHashMap<u64, Vec<usize>> = FxHashMap::default();
    for (i, key) in build_keys.iter().enumerate() {
        table.entry(slot_hash(key)).or_default().push(i);
    }

    let mut out_vars = a.vars().to_vec();
    for v in b.vars() {
        if !out_vars.contains(v) {
            out_vars.push(v.clone());
        }
    }
    let merge = MergePlan::new(a, b, &out_vars);

    let chunk = probe_len.div_ceil(parts);
    let ranges: Vec<std::ops::Range<usize>> = (0..parts)
        .map(|p| (p * chunk).min(probe_len)..((p + 1) * chunk).min(probe_len))
        .collect();
    let parts_out: Vec<Vec<Row>> = handler.map(ranges, |range| {
        let mut rows = Vec::new();
        for pi in range {
            let pkey = probe_keys.row(pi);
            let Some(candidates) = table.get(&slot_hash(pkey)) else {
                continue;
            };
            // Both key tables follow `shared`'s order, so collision
            // checking is a direct slot comparison.
            for &bi in candidates {
                if build_keys.row(bi) == pkey {
                    let (ai, bj) = if build_from_a { (bi, pi) } else { (pi, bi) };
                    rows.push(merge.merge_terms(&a.rows()[ai], &b.rows()[bj]));
                }
            }
        }
        rows
    });
    let mut out = Relation::new(out_vars);
    for part in parts_out {
        out.rows_mut().extend(part);
    }
    out
}

/// The result of a [`budgeted_join`]: the relation, whether partial mode
/// truncated it at budget exhaustion, and the bytes charged against the
/// budget for it (the caller releases this when the relation is consumed
/// by the next join in the chain).
#[derive(Debug)]
pub struct JoinOutcome {
    pub relation: Relation,
    pub truncated: bool,
    pub charged: usize,
}

/// Join `a ⋈ b` under a memory budget.
///
/// Strategy:
/// * unbounded budget → the usual [`parallel_join`], output accounted;
/// * bounded, and twice the smaller side (hash table + matches, the
///   paper's JoinCost shape) still fits → in-memory join, output charged
///   chunk-wise against the budget;
/// * bounded and too big → external sort-merge join: both sides spill to
///   sorted temp-file runs sized to a fraction of the remaining budget,
///   then merge. Joins on unbound keys (possible after OPTIONAL) or with
///   no shared variable (cross products) never spill — SPARQL
///   compatibility semantics need the in-memory scan.
///
/// When the *output* itself cannot fit, `truncate_on_exhaustion` decides
/// between truncating (partial mode: `truncated` comes back `true`) and
/// failing with the exhausted charge (fail-fast).
pub fn budgeted_join(
    a: &Relation,
    b: &Relation,
    handler: &RequestHandler,
    budget: &MemoryBudget,
    truncate_on_exhaustion: bool,
) -> Result<JoinOutcome, BudgetExhausted> {
    if !budget.is_bounded() {
        let relation = parallel_join(a, b, handler);
        let charged = relation.wire_size();
        let _ = budget.try_charge(MemoryPhase::Join, charged);
        return Ok(JoinOutcome {
            relation,
            truncated: false,
            charged,
        });
    }
    let shared: Vec<Variable> = a
        .vars()
        .iter()
        .filter(|v| b.index_of(v).is_some())
        .cloned()
        .collect();
    let build_estimate = a.wire_size().min(b.wire_size());
    let spillable =
        !shared.is_empty() && !has_loose_rows(a, &shared) && !has_loose_rows(b, &shared);
    if spillable && !budget.would_fit(build_estimate.saturating_mul(2)) {
        match spill_join(a, b, &shared, budget, truncate_on_exhaustion) {
            Ok(outcome) => return Ok(outcome),
            Err(SpillError::Budget(e)) => return Err(e),
            // Disk trouble (tmpfs full, permissions): fall back to the
            // in-memory join — correctness over the budget guarantee.
            Err(SpillError::Io(_)) => {}
        }
    }
    let relation = parallel_join(a, b, handler);
    charge_output(relation, budget, truncate_on_exhaustion)
}

/// Whether any row leaves a shared join variable unbound (OPTIONAL can do
/// this); such rows need the compatibility scan of [`Relation::join`].
fn has_loose_rows(rel: &Relation, shared: &[Variable]) -> bool {
    let idx: Vec<usize> = shared.iter().map(|v| rel.index_of(v).unwrap()).collect();
    rel.rows()
        .iter()
        .any(|row| idx.iter().any(|&i| row[i].is_none()))
}

/// Charge a finished join output against the budget in admission-sized
/// chunks, truncating or failing at exhaustion.
pub(crate) fn charge_output(
    mut relation: Relation,
    budget: &MemoryBudget,
    truncate_on_exhaustion: bool,
) -> Result<JoinOutcome, BudgetExhausted> {
    let mut charged = 0;
    let mut admitted = 0;
    let mut pending = 8 * relation.vars().len();
    while admitted < relation.len() {
        let end = (admitted + ADMISSION_CHUNK_ROWS).min(relation.len());
        pending += relation.rows()[admitted..end]
            .iter()
            .map(|r| row_wire_size(r))
            .sum::<usize>();
        match budget.try_charge(MemoryPhase::Join, pending) {
            Ok(()) => {
                charged += pending;
                pending = 0;
                admitted = end;
            }
            Err(e) => {
                if truncate_on_exhaustion {
                    relation.rows_mut().truncate(admitted);
                    return Ok(JoinOutcome {
                        relation,
                        truncated: true,
                        charged,
                    });
                }
                budget.release(charged);
                return Err(e);
            }
        }
    }
    if pending > 0 {
        if let Err(e) = budget.try_charge(MemoryPhase::Join, pending) {
            if !truncate_on_exhaustion {
                budget.release(charged);
                return Err(e);
            }
        } else {
            charged += pending;
        }
    }
    Ok(JoinOutcome {
        relation,
        truncated: false,
        charged,
    })
}

enum SpillError {
    Budget(BudgetExhausted),
    // The error payload exists for Debug output when a spill ever has to
    // be diagnosed; the engine itself only matches on the variant.
    Io(#[allow(dead_code)] io::Error),
}

impl From<io::Error> for SpillError {
    fn from(e: io::Error) -> Self {
        SpillError::Io(e)
    }
}

/// Monotonic counter so concurrent spills never collide on a file name.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A temp file holding one sorted run; deleted on drop.
struct RunFile {
    path: PathBuf,
}

impl Drop for RunFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn spill_path() -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("lusail-spill-{}-{seq}.run", std::process::id()))
}

/// External sort-merge join of `a ⋈ b` on `shared` (all key cells bound).
fn spill_join(
    a: &Relation,
    b: &Relation,
    shared: &[Variable],
    budget: &MemoryBudget,
    truncate_on_exhaustion: bool,
) -> Result<JoinOutcome, SpillError> {
    let a_key: Vec<usize> = shared.iter().map(|v| a.index_of(v).unwrap()).collect();
    let b_key: Vec<usize> = shared.iter().map(|v| b.index_of(v).unwrap()).collect();

    // Runs sized to a quarter of the remaining budget (two sides sorting
    // plus merge windows), floored so tiny budgets still make progress.
    let run_bytes = (budget.remaining() / 4).max(64 * 1024);
    let a_runs = write_sorted_runs(a, &a_key, run_bytes, budget)?;
    let b_runs = write_sorted_runs(b, &b_key, run_bytes, budget)?;
    let mut a_src = SortedSource::open(&a_runs, a.vars().len(), a_key.clone())?;
    let mut b_src = SortedSource::open(&b_runs, b.vars().len(), b_key.clone())?;

    // Output header and per-variable source mapping, exactly as
    // `Relation::join` builds it: self's vars first, left cell wins.
    let mut out_vars = a.vars().to_vec();
    for v in b.vars() {
        if !out_vars.contains(v) {
            out_vars.push(v.clone());
        }
    }
    let cell_sources: Vec<(Option<usize>, Option<usize>)> = out_vars
        .iter()
        .map(|v| (a.index_of(v), b.index_of(v)))
        .collect();

    let mut out = Relation::new(out_vars);
    let mut charged = 0;
    let mut pending = 8 * out.vars().len();
    let mut pending_rows = 0;
    let mut truncated = false;

    'merge: while let (Some((ha, ra)), Some((hb, rb))) = (a_src.peek(), b_src.peek()) {
        // Streams are (hash, key, row)-ordered; equal keys hash equal, so
        // comparing the stored hash first skips most full key comparisons.
        match ha
            .cmp(hb)
            .then_with(|| compare_keys(ra, &a_key, rb, &b_key))
        {
            std::cmp::Ordering::Less => {
                a_src.next()?;
            }
            std::cmp::Ordering::Greater => {
                b_src.next()?;
            }
            std::cmp::Ordering::Equal => {
                // Gather both key groups (a single key's group is assumed
                // to fit in memory), emit the cross of merged rows.
                let group_a = a_src.take_group(&a_key)?;
                let group_b = b_src.take_group(&b_key)?;
                for ra in &group_a {
                    for rb in &group_b {
                        let row: Row = cell_sources
                            .iter()
                            .map(|&(ai, bi)| {
                                ai.and_then(|i| ra[i].clone())
                                    .or_else(|| bi.and_then(|i| rb[i].clone()))
                            })
                            .collect();
                        pending += row_wire_size(&row);
                        out.push(row);
                        pending_rows += 1;
                        if pending_rows >= ADMISSION_CHUNK_ROWS {
                            match budget.try_charge(MemoryPhase::Join, pending) {
                                Ok(()) => {
                                    charged += pending;
                                    pending = 0;
                                    pending_rows = 0;
                                }
                                Err(e) => {
                                    if !truncate_on_exhaustion {
                                        budget.release(charged);
                                        return Err(SpillError::Budget(e));
                                    }
                                    let keep = out.len() - pending_rows;
                                    out.rows_mut().truncate(keep);
                                    truncated = true;
                                    break 'merge;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if !truncated && pending > 0 {
        match budget.try_charge(MemoryPhase::Join, pending) {
            Ok(()) => charged += pending,
            Err(e) => {
                if !truncate_on_exhaustion {
                    budget.release(charged);
                    return Err(SpillError::Budget(e));
                }
                let keep = out.len() - pending_rows;
                out.rows_mut().truncate(keep);
                truncated = true;
            }
        }
    }
    Ok(JoinOutcome {
        relation: out,
        truncated,
        charged,
    })
}

/// Compare two rows by their join-key cells (all bound on the spill path).
fn compare_keys(ra: &Row, a_key: &[usize], rb: &Row, b_key: &[usize]) -> std::cmp::Ordering {
    for (&ia, &ib) in a_key.iter().zip(b_key) {
        match ra[ia].cmp(&rb[ib]) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Hash a row's join-key cells once; the spill path stores the result in
/// the run file so sorting, merging, and grouping all reuse it instead of
/// re-hashing or re-comparing full key strings.
fn key_hash(row: &Row, key: &[usize]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = lusail_rdf::fxhash::FxHasher::default();
    for &i in key {
        row[i].hash(&mut h);
    }
    h.finish()
}

/// Sort `rel` into runs of roughly `run_bytes` serialized bytes each, each
/// run sorted by (key hash, key cells, whole row) and written to its own
/// temp file with the precomputed hash as an 8-byte row prefix.
fn write_sorted_runs(
    rel: &Relation,
    key: &[usize],
    run_bytes: usize,
    budget: &MemoryBudget,
) -> io::Result<Vec<RunFile>> {
    let mut runs = Vec::new();
    let mut chunk: Vec<(u64, &Row)> = Vec::new();
    let mut chunk_bytes = 0;
    let flush = |chunk: &mut Vec<(u64, &Row)>, runs: &mut Vec<RunFile>| -> io::Result<()> {
        if chunk.is_empty() {
            return Ok(());
        }
        chunk.sort_by(|(ha, ra), (hb, rb)| {
            ha.cmp(hb)
                .then_with(|| compare_keys(ra, key, rb, key))
                .then_with(|| ra.cmp(rb))
        });
        let run = RunFile { path: spill_path() };
        let mut w = BufWriter::new(File::create(&run.path)?);
        let mut written = 0u64;
        for (hash, row) in chunk.iter() {
            w.write_all(&hash.to_le_bytes())?;
            written += 8 + encode_row(&mut w, row)?;
        }
        w.flush()?;
        budget.record_spill(written);
        runs.push(run);
        chunk.clear();
        Ok(())
    };
    for row in rel.rows() {
        chunk.push((key_hash(row, key), row));
        chunk_bytes += row_wire_size(row);
        if chunk_bytes >= run_bytes {
            flush(&mut chunk, &mut runs)?;
            chunk_bytes = 0;
        }
    }
    flush(&mut chunk, &mut runs)?;
    Ok(runs)
}

/// One open run with its next decoded (key hash, row) entry.
struct RunCursor {
    reader: BufReader<File>,
    arity: usize,
    next: Option<(u64, Row)>,
}

/// Merges several sorted runs back into one (hash, key, row)-ordered
/// stream. The hash stored with each row decides most comparisons; key
/// cells break the (rare) hash-collision ties so ordering stays total.
struct SortedSource {
    cursors: Vec<RunCursor>,
    key: Vec<usize>,
}

impl SortedSource {
    fn open(runs: &[RunFile], arity: usize, key: Vec<usize>) -> io::Result<Self> {
        let mut cursors = Vec::with_capacity(runs.len());
        for run in runs {
            let mut cursor = RunCursor {
                reader: BufReader::new(File::open(&run.path)?),
                arity,
                next: None,
            };
            cursor.next = decode_entry(&mut cursor.reader, cursor.arity)?;
            cursors.push(cursor);
        }
        Ok(SortedSource { cursors, key })
    }

    /// Index of the cursor holding the globally smallest next row.
    fn min_cursor(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, c) in self.cursors.iter().enumerate() {
            let Some((hash, row)) = &c.next else { continue };
            let better = match best {
                None => true,
                Some(j) => {
                    let (other_hash, other) = self.cursors[j].next.as_ref().unwrap();
                    hash.cmp(other_hash)
                        .then_with(|| compare_keys(row, &self.key, other, &self.key))
                        .then_with(|| row.cmp(other))
                        .is_lt()
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    fn peek(&self) -> Option<&(u64, Row)> {
        self.min_cursor()
            .and_then(|i| self.cursors[i].next.as_ref())
    }

    fn next(&mut self) -> io::Result<Option<(u64, Row)>> {
        let Some(i) = self.min_cursor() else {
            return Ok(None);
        };
        let cursor = &mut self.cursors[i];
        let entry = cursor.next.take();
        cursor.next = decode_entry(&mut cursor.reader, cursor.arity)?;
        Ok(entry)
    }

    /// Pop every row whose key equals the current minimum's key.
    fn take_group(&mut self, key: &[usize]) -> io::Result<Vec<Row>> {
        let mut group = Vec::new();
        let Some((first_hash, first)) = self.next()? else {
            return Ok(group);
        };
        while let Some((hash, row)) = self.peek() {
            if *hash != first_hash || compare_keys(row, key, &first, key).is_ne() {
                break;
            }
            let (_, row) = self.next()?.expect("peeked row must pop");
            group.push(row);
        }
        group.insert(0, first);
        Ok(group)
    }
}

// ---- spill row codec ----
//
// Fixed arity per run, so rows need no framing: each cell is a tag byte
// (0 unbound, 1 IRI, 2 blank node, 3 literal) followed by
// length-prefixed UTF-8 strings; literals carry a presence byte for the
// optional datatype and language tag.

fn write_str(w: &mut impl Write, s: &str) -> io::Result<u64> {
    let len = s.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(s.as_bytes())?;
    Ok(4 + s.len() as u64)
}

fn encode_row(w: &mut impl Write, row: &Row) -> io::Result<u64> {
    let mut written = 0u64;
    for cell in row {
        written += 1;
        match cell {
            None => w.write_all(&[0])?,
            Some(Term::Iri(s)) => {
                w.write_all(&[1])?;
                written += write_str(w, s)?;
            }
            Some(Term::BlankNode(s)) => {
                w.write_all(&[2])?;
                written += write_str(w, s)?;
            }
            Some(Term::Literal(l)) => {
                w.write_all(&[3])?;
                let presence =
                    u8::from(l.datatype.is_some()) | (u8::from(l.language.is_some()) << 1);
                w.write_all(&[presence])?;
                written += 1 + write_str(w, &l.lexical)?;
                if let Some(d) = &l.datatype {
                    written += write_str(w, d)?;
                }
                if let Some(g) = &l.language {
                    written += write_str(w, g)?;
                }
            }
        }
    }
    Ok(written)
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let mut buf = vec![0u8; u32::from_le_bytes(len) as usize];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Decode one (key hash, row) run entry; `Ok(None)` on a clean
/// end-of-run boundary.
fn decode_entry(r: &mut impl Read, arity: usize) -> io::Result<Option<(u64, Row)>> {
    let mut hash = [0u8; 8];
    match r.read_exact(&mut hash) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let row = decode_row(r, arity)?.ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "run entry truncated after hash")
    })?;
    Ok(Some((u64::from_le_bytes(hash), row)))
}

/// Decode one row; `Ok(None)` on a clean end-of-run boundary.
fn decode_row(r: &mut impl Read, arity: usize) -> io::Result<Option<Row>> {
    let mut row = Vec::with_capacity(arity);
    for i in 0..arity {
        let mut tag = [0u8; 1];
        match r.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && i == 0 => return Ok(None),
            Err(e) => return Err(e),
        }
        row.push(match tag[0] {
            0 => None,
            1 => Some(Term::Iri(read_str(r)?)),
            2 => Some(Term::BlankNode(read_str(r)?)),
            3 => {
                let mut presence = [0u8; 1];
                r.read_exact(&mut presence)?;
                let lexical = read_str(r)?;
                let datatype = (presence[0] & 1 != 0).then(|| read_str(r)).transpose()?;
                let language = (presence[0] & 2 != 0).then(|| read_str(r)).transpose()?;
                Some(Term::Literal(Literal {
                    lexical,
                    datatype,
                    language,
                }))
            }
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad spill tag {other}"),
                ))
            }
        });
    }
    Ok(Some(row))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn rel(vars: &[&str], rows: usize, offset: usize) -> Relation {
        let mut r = Relation::new(vars.iter().map(|n| v(n)).collect());
        for i in 0..rows {
            r.push(
                vars.iter()
                    .map(|_| Some(Term::iri(format!("http://x/{}", i + offset))))
                    .collect(),
            );
        }
        r
    }

    #[test]
    fn order_prefers_connected_joins() {
        // r0(x,y) ⋈ r1(y,z) ⋈ r2(z,w): chain; never start with (r0, r2).
        let r0 = rel(&["x", "y"], 100, 0);
        let r1 = rel(&["y", "z"], 10, 0);
        let r2 = rel(&["z", "w"], 50, 0);
        let order = dp_join_order(&[r0, r1, r2]);
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        // r1 is smallest and connects both; it must come before whichever
        // of r0/r2 joins later via it. Key invariant: consecutive prefix
        // sets stay connected.
        assert_eq!(order.len(), 3);
        let starts_with_cross = (pos(0) == 0 && pos(2) == 1) || (pos(2) == 0 && pos(0) == 1);
        assert!(!starts_with_cross);
    }

    #[test]
    fn order_handles_disconnected_components() {
        let r0 = rel(&["x"], 5, 0);
        let r1 = rel(&["y"], 5, 0);
        let order = dp_join_order(&[r0, r1]);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn order_empty_and_single() {
        assert!(dp_join_order(&[]).is_empty());
        assert_eq!(dp_join_order(&[rel(&["x"], 3, 0)]), vec![0]);
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let handler = RequestHandler::new(4);
        // Big enough to trigger the partitioned path.
        let a = rel(&["x", "y"], 2000, 0);
        let b = rel(&["y", "z"], 2000, 1000); // overlap on rows 1000..2000
        let seq = a.join(&b);
        // Call the partitioned body directly: the public entry would route
        // inputs this small to the sequential join.
        let shared = vec![Variable::new("y")];
        let mut par = chunked_probe_join(&a, &b, &shared, &handler);
        assert_eq!(seq.len(), 1000);
        assert_eq!(par.len(), seq.len());
        assert_eq!(par.vars(), seq.vars());
        // Same multiset of rows.
        let mut seq_rows = seq.rows().to_vec();
        seq_rows.sort();
        par.rows_mut().sort();
        assert_eq!(par.rows(), &seq_rows[..]);
    }

    #[test]
    fn parallel_join_small_inputs_fall_back() {
        let handler = RequestHandler::new(4);
        let a = rel(&["x"], 3, 0);
        let b = rel(&["x"], 3, 1);
        let j = parallel_join(&a, &b, &handler);
        assert_eq!(j.len(), 2);
    }

    fn sorted_rows(r: &Relation) -> Vec<Row> {
        let mut rows = r.rows().to_vec();
        rows.sort();
        rows
    }

    #[test]
    fn spill_codec_roundtrips_every_term_kind() {
        let row: Row = vec![
            None,
            Some(Term::iri("http://x/a")),
            Some(Term::bnode("b0")),
            Some(Term::literal("plain")),
            Some(Term::Literal(Literal {
                lexical: "42".into(),
                datatype: Some("http://www.w3.org/2001/XMLSchema#integer".into()),
                language: None,
            })),
            Some(Term::Literal(Literal {
                lexical: "bonjour".into(),
                datatype: None,
                language: Some("fr".into()),
            })),
        ];
        let mut buf = Vec::new();
        encode_row(&mut buf, &row).unwrap();
        let mut r = io::Cursor::new(buf);
        let decoded = decode_row(&mut r, row.len()).unwrap().unwrap();
        assert_eq!(decoded, row);
        // Clean end-of-run.
        assert!(decode_row(&mut r, row.len()).unwrap().is_none());
    }

    #[test]
    fn spilling_join_is_byte_identical_to_in_memory() {
        let handler = RequestHandler::new(4);
        let a = rel(&["x", "y"], 5000, 0);
        let b = rel(&["y", "z"], 5000, 2500); // overlap on rows 2500..5000
        let expected = a.join(&b);

        // ~200 KiB per side: a 256 KiB budget cannot hold 2x the build
        // side, so the join must spill — and the 2500-row output fits.
        let budget = MemoryBudget::new(Some(256 * 1024));
        let out = budgeted_join(&a, &b, &handler, &budget, false).unwrap();
        assert!(!out.truncated);
        assert_eq!(out.relation.vars(), expected.vars());
        assert_eq!(sorted_rows(&out.relation), sorted_rows(&expected));
        let stats = budget.stats();
        assert!(stats.spill_count > 0, "the join should have spilled");
        assert!(stats.spill_bytes > 0);
        assert_eq!(out.charged, budget.used());
        assert!(
            stats.peak_bytes <= 256 * 1024,
            "accounting must stay under the budget"
        );
    }

    #[test]
    fn budgeted_join_with_unbounded_budget_matches_parallel_join() {
        let handler = RequestHandler::new(4);
        let a = rel(&["x", "y"], 200, 0);
        let b = rel(&["y", "z"], 200, 100);
        let budget = MemoryBudget::unbounded();
        let out = budgeted_join(&a, &b, &handler, &budget, false).unwrap();
        assert_eq!(sorted_rows(&out.relation), sorted_rows(&a.join(&b)));
        assert_eq!(budget.stats().spill_count, 0);
    }

    #[test]
    fn oversized_output_errors_or_truncates_per_mode() {
        let handler = RequestHandler::new(4);
        let a = rel(&["x", "y"], 5000, 0);
        let b = rel(&["y", "z"], 5000, 0); // full overlap: output ≈ input
        let tight = MemoryBudget::new(Some(8 * 1024));
        let err = budgeted_join(&a, &b, &handler, &tight, false).unwrap_err();
        assert_eq!(err.limit, 8 * 1024);

        let tight = MemoryBudget::new(Some(8 * 1024));
        let out = budgeted_join(&a, &b, &handler, &tight, true).unwrap();
        assert!(out.truncated);
        assert!(out.relation.len() < 5000);
        // Truncated rows are a prefix of real join rows, not fabrications.
        let expected = sorted_rows(&a.join(&b));
        for row in out.relation.rows() {
            assert!(expected.binary_search(row).is_ok());
        }
    }

    #[test]
    fn loose_rows_never_spill_and_stay_correct() {
        let handler = RequestHandler::new(4);
        // One row with the shared var unbound: compatibility semantics.
        let mut a = rel(&["x", "y"], 2000, 0);
        a.push(vec![Some(Term::iri("http://x/loose")), None]);
        let b = rel(&["y", "z"], 2000, 1000);
        let budget = MemoryBudget::new(Some(16 * 1024));
        // Too tight for the output: partial mode truncates but the join
        // still goes through the in-memory compatibility path.
        let out = budgeted_join(&a, &b, &handler, &budget, true).unwrap();
        assert_eq!(budget.stats().spill_count, 0, "loose rows must not spill");
        let expected = sorted_rows(&a.join(&b));
        for row in out.relation.rows() {
            assert!(expected.binary_search(row).is_ok());
        }
    }
}
