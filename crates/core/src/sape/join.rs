//! Global join evaluation (Section 4.2, "Join Evaluation").
//!
//! Subquery results are relations with known true cardinalities. A dynamic
//! programming enumerator (in the style of Moerkotte & Neumann, as the
//! paper cites) picks the join order; each pairwise join is a hash join
//! whose probe side is partitioned across the ERH threads.

use lusail_federation::RequestHandler;
use lusail_rdf::fxhash::FxHashMap;
use lusail_rdf::Term;
use lusail_sparql::ast::Variable;
use lusail_sparql::solution::Relation;

/// Compute a join order for `relations` via DP over connected subsets.
///
/// Returns the sequence of relation indices in join order. Cross products
/// are avoided while any connected join exists; disconnected components
/// are concatenated afterwards (their product is taken last, which is also
/// what the paper's planner does for disjoint subgraphs joined by a filter
/// variable).
pub fn dp_join_order(relations: &[Relation]) -> Vec<usize> {
    let n = relations.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    if n > 16 {
        // DP table would explode; fall back to greedy smallest-first.
        return greedy_order(relations);
    }

    let connected = |a: usize, b: usize| -> bool {
        relations[a]
            .vars()
            .iter()
            .any(|v| relations[b].index_of(v).is_some())
    };

    // DP over bitmasks: state → (cost, estimated size, order).
    #[derive(Clone)]
    struct State {
        cost: f64,
        size: f64,
        order: Vec<usize>,
    }
    let full: usize = (1 << n) - 1;
    let mut table: FxHashMap<usize, State> = FxHashMap::default();
    for (i, rel) in relations.iter().enumerate() {
        table.insert(
            1 << i,
            State {
                cost: 0.0,
                size: rel.len() as f64,
                order: vec![i],
            },
        );
    }

    // Grow plans one relation at a time (left-deep is sufficient here: the
    // number of subqueries per branch is small and all joins are hash
    // joins).
    for mask in 1..=full {
        let Some(state) = table.get(&mask).cloned() else {
            continue;
        };
        #[allow(clippy::needless_range_loop)] // r is a bitmask position, not just an index
        for r in 0..n {
            if mask & (1 << r) != 0 {
                continue;
            }
            // Prefer connected extensions; allow cross products only when
            // nothing in the mask connects to anything outside.
            let any_connected = (0..n).any(|x| {
                mask & (1 << x) != 0 && (0..n).any(|y| mask & (1 << y) == 0 && connected(x, y))
            });
            let this_connected = (0..n).any(|x| mask & (1 << x) != 0 && connected(x, r));
            if any_connected && !this_connected {
                continue;
            }
            let r_size = relations[r].len() as f64;
            // Paper: JoinCost(S, R) = hash the smaller + probe the other.
            let join_cost = state.size.min(r_size) + state.size.max(r_size);
            let new_cost = state.cost + join_cost;
            // Connected-join size estimate: the paper's min rule — the
            // bindings of the join variable are bounded by the smaller
            // side (C(sq, v, ep) = min(...)). Cross products multiply.
            let new_size = if this_connected {
                state.size.min(r_size)
            } else {
                state.size * r_size
            };
            let next_mask = mask | (1 << r);
            let better = match table.get(&next_mask) {
                Some(existing) => new_cost < existing.cost,
                None => true,
            };
            if better {
                let mut order = state.order.clone();
                order.push(r);
                table.insert(
                    next_mask,
                    State {
                        cost: new_cost,
                        size: new_size,
                        order,
                    },
                );
            }
        }
    }
    table
        .remove(&full)
        .map(|s| s.order)
        .unwrap_or_else(|| greedy_order(relations))
}

fn greedy_order(relations: &[Relation]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..relations.len()).collect();
    order.sort_by_key(|&i| relations[i].len());
    order
}

/// Hash join `a ⋈ b` with the probe side partitioned across the handler's
/// threads (the paper's step (ii): threads holding the larger relation
/// probe hash tables built from the smaller one).
pub fn parallel_join(a: &Relation, b: &Relation, handler: &RequestHandler) -> Relation {
    let shared: Vec<Variable> = a
        .vars()
        .iter()
        .filter(|v| b.index_of(v).is_some())
        .cloned()
        .collect();
    let parts = handler.threads();
    if shared.is_empty() || a.len().min(b.len()) < 1024 || parts < 2 {
        // Products and small inputs aren't worth the partitioning overhead.
        return a.join(b);
    }
    let a_idx: Vec<usize> = shared.iter().map(|v| a.index_of(v).unwrap()).collect();
    let b_idx: Vec<usize> = shared.iter().map(|v| b.index_of(v).unwrap()).collect();

    let hash_row = |row: &[Option<Term>], idx: &[usize]| -> Option<usize> {
        use std::hash::{Hash, Hasher};
        let mut h = lusail_rdf::fxhash::FxHasher::default();
        for &i in idx {
            row[i].as_ref()?.hash(&mut h);
        }
        Some((h.finish() as usize) % parts)
    };

    // Partition both sides; rows with unbound join keys join with every
    // partition, so collect them separately and handle via the fallback.
    let mut a_parts: Vec<Relation> = (0..parts)
        .map(|_| Relation::new(a.vars().to_vec()))
        .collect();
    let mut b_parts: Vec<Relation> = (0..parts)
        .map(|_| Relation::new(b.vars().to_vec()))
        .collect();
    let mut loose = false;
    for row in a.rows() {
        match hash_row(row, &a_idx) {
            Some(p) => a_parts[p].push(row.clone()),
            None => loose = true,
        }
    }
    for row in b.rows() {
        match hash_row(row, &b_idx) {
            Some(p) => b_parts[p].push(row.clone()),
            None => loose = true,
        }
    }
    if loose {
        // Unbound join keys (possible after OPTIONAL): correctness first.
        return a.join(b);
    }

    let pairs: Vec<(Relation, Relation)> = a_parts.into_iter().zip(b_parts).collect();
    let joined = handler.map(pairs, |(pa, pb)| pa.join(&pb));
    let mut out = Relation::new(
        joined
            .first()
            .map(|r| r.vars().to_vec())
            .unwrap_or_default(),
    );
    for part in joined {
        out.append(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn rel(vars: &[&str], rows: usize, offset: usize) -> Relation {
        let mut r = Relation::new(vars.iter().map(|n| v(n)).collect());
        for i in 0..rows {
            r.push(
                vars.iter()
                    .map(|_| Some(Term::iri(format!("http://x/{}", i + offset))))
                    .collect(),
            );
        }
        r
    }

    #[test]
    fn order_prefers_connected_joins() {
        // r0(x,y) ⋈ r1(y,z) ⋈ r2(z,w): chain; never start with (r0, r2).
        let r0 = rel(&["x", "y"], 100, 0);
        let r1 = rel(&["y", "z"], 10, 0);
        let r2 = rel(&["z", "w"], 50, 0);
        let order = dp_join_order(&[r0, r1, r2]);
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        // r1 is smallest and connects both; it must come before whichever
        // of r0/r2 joins later via it. Key invariant: consecutive prefix
        // sets stay connected.
        assert_eq!(order.len(), 3);
        let starts_with_cross = (pos(0) == 0 && pos(2) == 1) || (pos(2) == 0 && pos(0) == 1);
        assert!(!starts_with_cross);
    }

    #[test]
    fn order_handles_disconnected_components() {
        let r0 = rel(&["x"], 5, 0);
        let r1 = rel(&["y"], 5, 0);
        let order = dp_join_order(&[r0, r1]);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn order_empty_and_single() {
        assert!(dp_join_order(&[]).is_empty());
        assert_eq!(dp_join_order(&[rel(&["x"], 3, 0)]), vec![0]);
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let handler = RequestHandler::new(4);
        // Big enough to trigger the partitioned path.
        let a = rel(&["x", "y"], 2000, 0);
        let b = rel(&["y", "z"], 2000, 1000); // overlap on rows 1000..2000
        let seq = a.join(&b);
        let mut par = parallel_join(&a, &b, &handler);
        assert_eq!(seq.len(), 1000);
        assert_eq!(par.len(), seq.len());
        assert_eq!(par.vars(), seq.vars());
        // Same multiset of rows.
        let mut seq_rows = seq.rows().to_vec();
        seq_rows.sort();
        par.rows_mut().sort();
        assert_eq!(par.rows(), &seq_rows[..]);
    }

    #[test]
    fn parallel_join_small_inputs_fall_back() {
        let handler = RequestHandler::new(4);
        let a = rel(&["x"], 3, 0);
        let b = rel(&["x"], 3, 1);
        let j = parallel_join(&a, &b, &handler);
        assert_eq!(j.len(), 2);
    }
}
