//! SAPE: Selectivity-Aware Planning and parallel Execution (Section 4).
//!
//! * [`stats`] — Chauvenet's outlier criterion and the μ/σ machinery the
//!   delay heuristic rests on.
//! * [`estimate`] — the cost model: per-triple-pattern `COUNT` probes and
//!   the min/sum/max cardinality composition of Section 4.1.
//! * [`schedule`] — the delayed/non-delayed split (Figure 7, Figure 13).
//! * [`join`] — the DP join-order optimizer and the parallel hash join.
//! * [`execute`] — Algorithm 3: concurrent evaluation of non-delayed
//!   subqueries, bound joins over `VALUES` blocks for delayed ones, source
//!   refinement, and final join assembly.
//! * [`recover`] — `ORDER BY`+`LIMIT/OFFSET` paging used to reconstruct
//!   responses that a silently-truncating endpoint cut short.

pub mod estimate;
pub mod execute;
pub mod join;
pub mod recover;
pub mod schedule;
pub mod stats;

pub use estimate::{collect_tp_counts, q_error, subquery_cardinality, TpCounts};
pub use execute::{SapeExecutor, SapeOutcome};
pub use join::{dp_join_order, parallel_join};
pub use schedule::{make_schedule, Schedule};
