//! Paged re-fetch recovery for suspected-truncated endpoint responses.
//!
//! When a subquery response is suspected (or advertised) truncated, the
//! executor re-fetches the *whole* result through deterministic
//! `ORDER BY` + `LIMIT/OFFSET` paging: every page request orders by all
//! projected variables ascending, so successive `OFFSET` windows
//! partition the endpoint's result exactly and the merged pages
//! reconstruct what a single uncapped response would have contained.
//! This module holds the pure query-rewriting and merge arithmetic; the
//! driving loop (deadlines, budget pre-stops, divergence strikes) lives
//! in [`crate::sape::execute`].

use lusail_sparql::ast::{Projection, Query, QueryForm, Variable};
use lusail_sparql::solution::{row_wire_size, Relation};

/// The variable our verification `COUNT(*)` probes project, matching the
/// cardinality probes in [`crate::sape::estimate`].
const COUNT_VAR: &str = "lusail_c";

/// One page window of `base`: the same query with `ORDER BY` over all its
/// projected variables (ascending, unless the query already orders) and
/// the given `LIMIT`/`OFFSET`. Ordering by *every* projected variable
/// makes the sort key total over projected rows — any two rows that tie
/// on all keys are identical projections, so arbitrary tie-breaking at
/// the endpoint cannot move a row across a page boundary.
pub fn paged_query(base: &Query, limit: usize, offset: usize) -> Query {
    let mut q = base.clone();
    if let QueryForm::Select(s) = &mut q.form {
        if s.order_by.is_empty() {
            s.order_by = s
                .projected_variables()
                .into_iter()
                .map(|v| (v, true))
                .collect();
        }
        s.limit = Some(limit);
        s.offset = Some(offset);
    }
    q
}

/// The verification probe for `base`: the same pattern (including any
/// `VALUES` block of a bound subquery) with the projection replaced by
/// `COUNT(*)` and solution modifiers dropped. Under bag semantics the
/// count equals the row count of the unpaged `SELECT`, so a claim above
/// the delivered rows is evidence of truncation.
pub fn count_star(base: &Query) -> Query {
    let mut q = base.clone();
    if let QueryForm::Select(s) = &mut q.form {
        s.projection = Projection::Count {
            inner: None,
            distinct: s.distinct,
            as_var: Variable::new(COUNT_VAR),
        };
        s.distinct = false;
        s.order_by.clear();
        s.limit = None;
        s.offset = None;
    }
    q
}

/// The first page's `LIMIT`, sized from the rows the endpoint already
/// delivered: the observed count is the best available estimate of the
/// endpoint's silent cap, and requests at or under a silent cap pass
/// through it unharmed.
pub fn initial_limit(observed: usize) -> usize {
    if observed == 0 {
        256
    } else {
        observed.clamp(16, 4096)
    }
}

/// Adapt the page `LIMIT` after the first page: target a page that fits
/// in a quarter of the remaining memory budget (`None` = unbounded, keep
/// the current limit), floored at 16 rows so progress never stalls.
pub fn adaptive_limit(
    current: usize,
    page_rows: usize,
    page_bytes: usize,
    remaining_budget: Option<usize>,
) -> usize {
    let Some(remaining) = remaining_budget else {
        return current;
    };
    if page_rows == 0 || page_bytes == 0 {
        return current;
    }
    let per_row = (page_bytes / page_rows).max(1);
    ((remaining / 4) / per_row).clamp(16, 4096)
}

/// Accounted wire size of a relation (header plus rows), the same measure
/// [`crate::run::RunContext::admit_relation`] charges.
pub fn relation_wire_size(rel: &Relation) -> usize {
    8 * rel.vars().len() + rel.rows().iter().map(|r| row_wire_size(r)).sum::<usize>()
}

/// Merge fetched pages, each tagged with the `OFFSET` it was requested
/// at, into one relation. Overlapping windows (a re-fetched or
/// double-covered offset range) are deduplicated *by offset arithmetic*,
/// not by row content: rows falling in an already-covered range are
/// dropped, so legitimate duplicate rows in a bag result survive intact.
pub fn merge_pages(vars: Vec<Variable>, mut pages: Vec<(usize, Relation)>) -> Relation {
    pages.sort_by_key(|(offset, _)| *offset);
    let mut out = Relation::new(vars);
    let mut covered = 0usize;
    for (offset, mut page) in pages {
        let len = page.len();
        let skip = covered.saturating_sub(offset).min(len);
        page.rows_mut().drain(..skip);
        out.append(page);
        covered = covered.max(offset + len);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::Term;
    use lusail_sparql::ast::SelectQuery;
    use lusail_sparql::serializer::serialize_query;
    use lusail_sparql::{ast::GraphPattern, ast::TermPattern, ast::TriplePattern, parse_query};

    fn base_query() -> Query {
        Query::select(SelectQuery::new(
            Projection::Vars(vec![Variable::new("s"), Variable::new("o")]),
            GraphPattern::Bgp(vec![TriplePattern::new(
                TermPattern::var("s"),
                TermPattern::iri("http://x/p"),
                TermPattern::var("o"),
            )]),
        ))
    }

    #[test]
    fn paged_query_orders_by_all_projected_vars() {
        let q = paged_query(&base_query(), 100, 300);
        let text = serialize_query(&q);
        assert!(text.contains("ORDER BY ASC(?s) ASC(?o)"), "{text}");
        assert!(text.contains("LIMIT 100"), "{text}");
        assert!(text.contains("OFFSET 300"), "{text}");
        // Round-trips through the parser.
        let reparsed = parse_query(&text).unwrap();
        assert_eq!(serialize_query(&reparsed), text);
    }

    #[test]
    fn paged_query_keeps_an_existing_order() {
        let mut base = base_query();
        if let QueryForm::Select(s) = &mut base.form {
            s.order_by = vec![(Variable::new("o"), false)];
        }
        let q = paged_query(&base, 10, 0);
        let text = serialize_query(&q);
        assert!(text.contains("ORDER BY DESC(?o)"), "{text}");
        assert!(!text.contains("ASC(?s)"), "{text}");
    }

    #[test]
    fn count_star_replaces_projection_and_drops_modifiers() {
        let paged = paged_query(&base_query(), 10, 20);
        let probe = count_star(&paged);
        let text = serialize_query(&probe);
        assert!(text.contains("COUNT(*)"), "{text}");
        assert!(!text.contains("ORDER BY"), "{text}");
        assert!(!text.contains("LIMIT"), "{text}");
        assert!(!text.contains("OFFSET"), "{text}");
        parse_query(&text).unwrap();
    }

    #[test]
    fn limits_are_clamped() {
        assert_eq!(initial_limit(0), 256);
        assert_eq!(initial_limit(3), 16);
        assert_eq!(initial_limit(977), 977);
        assert_eq!(initial_limit(1 << 20), 4096);
        // Unbounded budget keeps the current limit.
        assert_eq!(adaptive_limit(977, 977, 20_000, None), 977);
        // A tight budget shrinks the page, floored at 16.
        assert_eq!(adaptive_limit(977, 100, 10_000, Some(64)), 16);
        // A roomy budget grows it, capped at 4096.
        assert_eq!(adaptive_limit(16, 10, 100, Some(1 << 30)), 4096);
    }

    fn rel(vals: &[i64]) -> Relation {
        let mut r = Relation::new(vec![Variable::new("x")]);
        for v in vals {
            r.push(vec![Some(Term::integer(*v))]);
        }
        r
    }

    #[test]
    fn merge_concatenates_disjoint_windows() {
        let merged = merge_pages(
            vec![Variable::new("x")],
            vec![(0, rel(&[1, 2, 3])), (3, rel(&[4, 5])), (5, rel(&[6]))],
        );
        assert_eq!(merged.len(), 6);
        assert_eq!(merged.rows()[5][0], Some(Term::integer(6)));
    }

    #[test]
    fn merge_drops_overlap_by_offset_not_content() {
        // Pages [0..4) and [2..6) overlap by two rows; the result must
        // keep the duplicate *values* (2 appears twice in the data).
        let merged = merge_pages(
            vec![Variable::new("x")],
            vec![(0, rel(&[1, 2, 2, 3])), (2, rel(&[2, 3, 4, 5]))],
        );
        let vals: Vec<i64> = merged
            .rows()
            .iter()
            .map(|r| {
                r[0].as_ref()
                    .unwrap()
                    .as_literal()
                    .unwrap()
                    .as_i64()
                    .unwrap()
            })
            .collect();
        assert_eq!(vals, vec![1, 2, 2, 3, 4, 5]);
    }

    #[test]
    fn merge_handles_unsorted_input_and_full_containment() {
        let merged = merge_pages(
            vec![Variable::new("x")],
            vec![
                (4, rel(&[5, 6])),
                (0, rel(&[1, 2, 3, 4])),
                (1, rel(&[2, 3])), // entirely inside covered range
            ],
        );
        let vals: Vec<i64> = merged
            .rows()
            .iter()
            .map(|r| {
                r[0].as_ref()
                    .unwrap()
                    .as_literal()
                    .unwrap()
                    .as_i64()
                    .unwrap()
            })
            .collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn wire_size_counts_header_and_rows() {
        let empty = Relation::new(vec![Variable::new("x")]);
        assert_eq!(relation_wire_size(&empty), 8);
        assert!(relation_wire_size(&rel(&[1, 2])) > 8);
    }
}
