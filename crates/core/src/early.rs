//! Early/fast first results — one of the paper's two stated future-work
//! directions ("to develop methods for returning fast and early results
//! during federated query execution. Both extensions aim to facilitate
//! interactive data discovery").
//!
//! The conservative strategy implemented here keeps Lusail's correctness
//! guarantees while cutting work for interactive use:
//!
//! * Union branches are executed **one at a time** (cheapest-looking
//!   first) instead of all up front, and execution stops as soon as the
//!   requested number of rows is reached — a `LIMIT 50` over a 4-branch
//!   union often touches a single branch.
//! * Within a branch, when the query has a `LIMIT` and no `ORDER BY` /
//!   `DISTINCT` / aggregate, endpoints receive subqueries whose own
//!   `LIMIT` is raised to the target where that is provably safe: a
//!   decomposition with a **single subquery** is answered entirely at the
//!   endpoints, so truncating there cannot lose needed rows.
//!
//! This mirrors the paper's discussion of C4: full Lusail computes all
//! results and truncates; `execute_early` narrows that gap without
//! changing any answer that is returned.

use crate::engine::{ExecutionProfile, LusailEngine};
use crate::error::EngineError;
use lusail_sparql::ast::{Projection, Query, QueryForm, SelectQuery};
use lusail_sparql::solution::Relation;

/// Outcome of an early execution: the rows plus how much of the query was
/// actually evaluated.
#[derive(Debug)]
pub struct EarlyResult {
    pub relation: Relation,
    /// Union branches evaluated before the target was reached.
    pub branches_run: usize,
    /// Total union branches in the query.
    pub branches_total: usize,
    pub profile: ExecutionProfile,
}

impl LusailEngine {
    /// Return at least `target` rows (or everything, if fewer exist),
    /// evaluating as little of the query as possible.
    ///
    /// The rows returned are always correct answers of the query; when the
    /// early exit triggers, the result may be a *subset* of the full
    /// answer (that is the point). Queries whose semantics forbid
    /// truncation — `DISTINCT`, `ORDER BY`, aggregates — fall back to full
    /// evaluation.
    pub fn execute_early(&self, query: &Query, target: usize) -> Result<EarlyResult, EngineError> {
        let select: &SelectQuery = match &query.form {
            QueryForm::Select(s) => s,
            QueryForm::Ask(_) => {
                // ASK is already an early query: one row suffices.
                let (relation, profile) = self.execute_profiled(query)?;
                return Ok(EarlyResult {
                    relation,
                    branches_run: 1,
                    branches_total: 1,
                    profile,
                });
            }
        };
        // `SELECT *` is excluded because different union branches may
        // bind different variable sets; the full path aligns headers.
        let truncatable = !select.distinct
            && select.order_by.is_empty()
            && matches!(select.projection, Projection::Vars(_));
        if !truncatable {
            let (relation, profile) = self.execute_profiled(query)?;
            let n = crate::normalize::normalize(&select.pattern)
                .map(|b| b.len())
                .unwrap_or(1);
            return Ok(EarlyResult {
                relation,
                branches_run: n,
                branches_total: n,
                profile,
            });
        }

        let branches = crate::normalize::normalize(&select.pattern)?;
        let total = branches.len();
        let mut acc: Option<Relation> = None;
        let mut profile = ExecutionProfile::default();
        let mut run = 0;
        for branch in &branches {
            // Re-wrap the single branch as its own SELECT and run it
            // through the normal pipeline.
            let sub_pattern = branch_to_pattern(branch);
            let sub = Query {
                prefixes: query.prefixes.clone(),
                form: QueryForm::Select(SelectQuery {
                    distinct: false,
                    projection: select.projection.clone(),
                    pattern: sub_pattern,
                    group_by: Vec::new(),
                    order_by: Vec::new(),
                    limit: select.limit,
                    offset: None,
                }),
            };
            let (rel, p) = self.execute_profiled(&sub)?;
            merge_profiles(&mut profile, p);
            run += 1;
            acc = Some(match acc {
                None => rel,
                Some(mut a) => {
                    // Headers agree (same projection); append.
                    for row in rel.rows() {
                        a.push(
                            a.vars()
                                .iter()
                                .map(|v| rel.index_of(v).and_then(|i| row[i].clone()))
                                .collect(),
                        );
                    }
                    a
                }
            });
            let have = acc.as_ref().map_or(0, |r| r.len());
            if have >= target {
                break;
            }
        }
        let mut relation = acc.unwrap_or_default();
        if let Some(limit) = select.limit {
            relation.rows_mut().truncate(limit);
        }
        profile.result_rows = relation.len();
        Ok(EarlyResult {
            relation,
            branches_run: run,
            branches_total: total,
            profile,
        })
    }
}

fn branch_to_pattern(branch: &crate::normalize::ConjBranch) -> lusail_sparql::ast::GraphPattern {
    use lusail_sparql::ast::GraphPattern;
    let mut p = GraphPattern::Bgp(branch.patterns.clone());
    for opt in &branch.optionals {
        let mut inner = GraphPattern::Bgp(opt.patterns.clone());
        for f in &opt.filters {
            inner = GraphPattern::Filter(Box::new(inner), f.clone());
        }
        p = GraphPattern::LeftJoin(Box::new(p), Box::new(inner));
    }
    for block in &branch.minuses {
        let mut inner = GraphPattern::Bgp(block.patterns.clone());
        for f in &block.filters {
            inner = GraphPattern::Filter(Box::new(inner), f.clone());
        }
        p = GraphPattern::Minus(Box::new(p), Box::new(inner));
    }
    for (vars, rows) in &branch.values {
        p = p.join(GraphPattern::Values(vars.clone(), rows.clone()));
    }
    for (expr, v) in &branch.binds {
        p = GraphPattern::Bind(Box::new(p), expr.clone(), v.clone());
    }
    for f in &branch.filters {
        p = GraphPattern::Filter(Box::new(p), f.clone());
    }
    p
}

fn merge_profiles(into: &mut ExecutionProfile, from: ExecutionProfile) {
    into.source_selection += from.source_selection;
    into.analysis += from.analysis;
    into.execution += from.execution;
    into.total += from.total;
    into.subqueries += from.subqueries;
    into.delayed += from.delayed;
    into.check_queries += from.check_queries;
    for g in from.gjvs {
        if !into.gjvs.contains(&g) {
            into.gjvs.push(g);
        }
    }
    into.estimates.extend(from.estimates);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LusailConfig;
    use lusail_federation::{Federation, NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
    use lusail_rdf::{Graph, Term};
    use lusail_sparql::parse_query;
    use lusail_store::Store;
    use std::sync::Arc;

    fn fed() -> Federation {
        let mut g1 = Graph::new();
        let mut g2 = Graph::new();
        for i in 0..20 {
            g1.add(
                Term::iri(format!("http://a/{i}")),
                Term::iri("http://x/p"),
                Term::integer(i),
            );
            g2.add(
                Term::iri(format!("http://b/{i}")),
                Term::iri("http://x/q"),
                Term::integer(i),
            );
        }
        Federation::new(vec![
            Arc::new(SimulatedEndpoint::new(
                "a",
                Store::from_graph(&g1),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
            Arc::new(SimulatedEndpoint::new(
                "b",
                Store::from_graph(&g2),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
        ])
    }

    fn engine() -> LusailEngine {
        LusailEngine::new(fed(), LusailConfig::default())
    }

    #[test]
    fn early_stops_after_first_branch() {
        let q = parse_query(
            "SELECT ?s ?v WHERE { { ?s <http://x/p> ?v } UNION { ?s <http://x/q> ?v } } LIMIT 5",
        )
        .unwrap();
        let r = engine().execute_early(&q, 5).unwrap();
        assert_eq!(r.relation.len(), 5);
        assert_eq!(r.branches_total, 2);
        assert_eq!(r.branches_run, 1, "second branch must not run");
    }

    #[test]
    fn early_runs_all_branches_when_needed() {
        let q = parse_query(
            "SELECT ?s ?v WHERE { { ?s <http://x/p> ?v } UNION { ?s <http://x/q> ?v } } LIMIT 30",
        )
        .unwrap();
        let r = engine().execute_early(&q, 30).unwrap();
        assert_eq!(r.branches_run, 2);
        assert_eq!(r.relation.len(), 30);
    }

    #[test]
    fn early_rows_are_real_answers() {
        let q = parse_query("SELECT ?s ?v WHERE { ?s <http://x/p> ?v } LIMIT 3").unwrap();
        let eng = engine();
        let early = eng.execute_early(&q, 3).unwrap();
        let full = eng
            .execute(&parse_query("SELECT ?s ?v WHERE { ?s <http://x/p> ?v }").unwrap())
            .unwrap();
        for row in early.relation.rows() {
            assert!(full.rows().contains(row), "early row not in full answer");
        }
    }

    #[test]
    fn distinct_falls_back_to_full() {
        let q = parse_query(
            "SELECT DISTINCT ?v WHERE { { ?s <http://x/p> ?v } UNION { ?s <http://x/q> ?v } }",
        )
        .unwrap();
        let r = engine().execute_early(&q, 1).unwrap();
        // Full evaluation: all 20 distinct values present.
        assert_eq!(r.relation.len(), 20);
        assert_eq!(r.branches_run, 2);
    }

    #[test]
    fn ask_is_naturally_early() {
        let q = parse_query("ASK { ?s <http://x/p> ?v }").unwrap();
        let r = engine().execute_early(&q, 1).unwrap();
        assert!(!r.relation.is_empty());
    }
}
