//! Subqueries: the unit LADE produces and SAPE schedules.

use lusail_federation::EndpointId;
use lusail_rdf::Term;
use lusail_sparql::ast::{
    Expression, GraphPattern, Projection, Query, SelectQuery, TriplePattern, Variable,
};

/// One independent subquery: a group of triple patterns (plus any pushed
/// filters) that every relevant endpoint can answer completely on its own
/// (Lemma 1 of the paper guarantees no results are missed).
#[derive(Debug, Clone, PartialEq)]
pub struct Subquery {
    /// Position in the decomposition (stable identifier for planning).
    pub id: usize,
    /// The triple patterns evaluated together at the endpoints.
    pub patterns: Vec<TriplePattern>,
    /// Filters pushed into this subquery (all their variables are covered
    /// by `patterns`).
    pub filters: Vec<Expression>,
    /// The endpoints that can answer this subquery.
    pub sources: Vec<EndpointId>,
    /// Variables shipped back to the federator: those needed by the global
    /// join, un-pushed filters, or the query's projection.
    pub projection: Vec<Variable>,
    /// True for subqueries originating from an `OPTIONAL` group; SAPE
    /// always delays these and left-joins their results.
    pub optional: bool,
}

impl Subquery {
    /// All variables appearing in the subquery's patterns.
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        for tp in &self.patterns {
            for v in tp.variables() {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Does this subquery mention `v`?
    pub fn mentions(&self, v: &Variable) -> bool {
        self.patterns.iter().any(|tp| tp.mentions(v))
    }

    /// The graph pattern of this subquery (patterns + pushed filters).
    fn body(&self) -> GraphPattern {
        let mut p = GraphPattern::Bgp(self.patterns.clone());
        for f in &self.filters {
            p = GraphPattern::Filter(Box::new(p), f.clone());
        }
        p
    }

    /// The `SELECT` query shipped to each relevant endpoint.
    pub fn to_query(&self) -> Query {
        Query::select(SelectQuery::new(
            Projection::Vars(self.projection.clone()),
            self.body(),
        ))
    }

    /// The bound-join form: the subquery with a `VALUES` block binding
    /// `vars` to one block of already-found rows (Section 4.2 — SAPE
    /// "groups values from the hashmap into blocks and submits a subquery
    /// for each block").
    pub fn to_bound_query(&self, vars: &[Variable], block: &[Vec<Option<Term>>]) -> Query {
        let body = self
            .body()
            .join(GraphPattern::Values(vars.to_vec(), block.to_vec()));
        Query::select(SelectQuery::new(
            Projection::Vars(self.projection.clone()),
            body,
        ))
    }

    /// A `SELECT COUNT` probe for one triple pattern of this subquery,
    /// with this subquery's single-pattern filters pushed down for better
    /// estimates (Section 4.1).
    pub fn count_query(&self, tp: &TriplePattern) -> Query {
        let mut p = GraphPattern::Bgp(vec![tp.clone()]);
        let tp_vars = tp.variables();
        for f in &self.filters {
            if f.variables().iter().all(|v| tp_vars.contains(&v)) {
                p = GraphPattern::Filter(Box::new(p), f.clone());
            }
        }
        Query::select(SelectQuery::new(
            Projection::Count {
                inner: None,
                distinct: false,
                as_var: Variable::new("lusail_c"),
            },
            p,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_sparql::ast::TermPattern;
    use lusail_sparql::parse_query;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let slot = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::var(v)
            } else {
                TermPattern::iri(x)
            }
        };
        TriplePattern::new(slot(s), slot(p), slot(o))
    }

    fn sq() -> Subquery {
        Subquery {
            id: 0,
            patterns: vec![tp("?s", "http://x/p", "?o"), tp("?o", "http://x/q", "?z")],
            filters: vec![Expression::Ne(
                Box::new(Expression::Var(Variable::new("z"))),
                Box::new(Expression::Term(Term::iri("http://x/bad"))),
            )],
            sources: vec![0, 1],
            projection: vec![Variable::new("s"), Variable::new("z")],
            optional: false,
        }
    }

    #[test]
    fn to_query_is_valid_sparql() {
        let q = sq().to_query();
        let text = lusail_sparql::serializer::serialize_query(&q);
        let reparsed = parse_query(&text).unwrap();
        assert_eq!(reparsed.all_triple_patterns().len(), 2);
        assert_eq!(reparsed.as_select().unwrap().projected_variables().len(), 2);
    }

    #[test]
    fn bound_query_includes_values() {
        let q = sq().to_bound_query(
            &[Variable::new("o")],
            &[
                vec![Some(Term::iri("http://x/o1"))],
                vec![Some(Term::iri("http://x/o2"))],
            ],
        );
        let text = lusail_sparql::serializer::serialize_query(&q);
        assert!(text.contains("VALUES"), "{text}");
        assert!(parse_query(&text).is_ok());
    }

    #[test]
    fn count_query_pushes_single_pattern_filters() {
        let s = sq();
        // Filter on ?z applies to the second pattern only.
        let q1 = s.count_query(&s.patterns[0]);
        let t1 = lusail_sparql::serializer::serialize_query(&q1);
        assert!(!t1.contains("FILTER"), "{t1}");
        let q2 = s.count_query(&s.patterns[1]);
        let t2 = lusail_sparql::serializer::serialize_query(&q2);
        assert!(t2.contains("FILTER"), "{t2}");
        assert!(t2.contains("COUNT"));
    }

    #[test]
    fn variables_and_mentions() {
        let s = sq();
        assert_eq!(s.variables().len(), 3);
        assert!(s.mentions(&Variable::new("o")));
        assert!(!s.mentions(&Variable::new("nope")));
    }
}
