//! Keyword search over a federation — the paper's other stated
//! future-work direction ("we plan to investigate keyword search as a
//! means for querying federated RDF systems").
//!
//! The implementation follows the classic keyword-over-RDF recipe,
//! federated:
//!
//! 1. **Match**: for every keyword, probe each endpoint with a generated
//!    `SELECT ?s ?p ?o WHERE { ?s ?p ?o . FILTER CONTAINS(LCASE?… ) }`
//!    style query (we use our `CONTAINS` on the literal's string form,
//!    case-folded via a lowercase copy of the keyword and a REGEX with
//!    the `i` flag) — executed in parallel through the ERH and bounded
//!    with `LIMIT` so generic keywords cannot flood the federator.
//! 2. **Aggregate**: group matches by subject entity; an entity's score
//!    is the number of distinct keywords it matches, ties broken by the
//!    number of matching triples.
//! 3. **Describe**: for the top-k entities, fetch their outgoing triples
//!    from the owning endpoint so the user sees a result card, not a bare
//!    IRI.

use crate::error::EngineError;
use lusail_federation::{EndpointId, Federation, RequestHandler};
use lusail_rdf::fxhash::FxHashMap;
use lusail_rdf::Term;
use lusail_sparql::ast::{
    Expression, GraphPattern, Projection, Query, SelectQuery, TermPattern, TriplePattern, Variable,
};

/// Keyword search options.
#[derive(Debug, Clone)]
pub struct KeywordConfig {
    /// Matches fetched per keyword per endpoint.
    pub per_endpoint_limit: usize,
    /// Entities returned.
    pub top_k: usize,
    /// Triples fetched per described entity.
    pub describe_limit: usize,
}

impl Default for KeywordConfig {
    fn default() -> Self {
        KeywordConfig {
            per_endpoint_limit: 100,
            top_k: 10,
            describe_limit: 20,
        }
    }
}

/// One ranked hit.
#[derive(Debug, Clone)]
pub struct KeywordHit {
    pub entity: Term,
    pub endpoint: EndpointId,
    /// Distinct keywords matched.
    pub keywords_matched: usize,
    /// Matching triples observed.
    pub match_count: usize,
    /// The entity's outgoing triples (predicate, object), up to
    /// `describe_limit`.
    pub description: Vec<(Term, Term)>,
}

/// The match query for one keyword:
/// `SELECT ?s ?p ?o WHERE { ?s ?p ?o . FILTER(REGEX(STR(?o), kw, "i")) } LIMIT n`.
fn match_query(keyword: &str, limit: usize) -> Query {
    let tp = TriplePattern::new(
        TermPattern::var("s"),
        TermPattern::var("p"),
        TermPattern::var("o"),
    );
    let filter = Expression::Regex(
        Box::new(Expression::Str(Box::new(Expression::Var(Variable::new(
            "o",
        ))))),
        regex_escape(keyword),
        "i".to_string(),
    );
    let pattern = GraphPattern::Filter(Box::new(GraphPattern::Bgp(vec![tp])), filter);
    let mut select = SelectQuery::new(
        Projection::Vars(vec![
            Variable::new("s"),
            Variable::new("p"),
            Variable::new("o"),
        ]),
        pattern,
    );
    select.limit = Some(limit);
    Query::select(select)
}

/// Escape regex metacharacters so keywords match literally.
fn regex_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if "\\.^$*+?()[]{}|".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// The describe query for one entity: `SELECT ?p ?o WHERE { <e> ?p ?o } LIMIT n`.
fn describe_query(entity: &Term, limit: usize) -> Query {
    let tp = TriplePattern::new(
        TermPattern::Term(entity.clone()),
        TermPattern::var("p"),
        TermPattern::var("o"),
    );
    let mut select = SelectQuery::new(
        Projection::Vars(vec![Variable::new("p"), Variable::new("o")]),
        GraphPattern::Bgp(vec![tp]),
    );
    select.limit = Some(limit);
    Query::select(select)
}

/// Run a federated keyword search.
pub fn keyword_search(
    federation: &Federation,
    handler: &RequestHandler,
    keywords: &[&str],
    config: &KeywordConfig,
) -> Result<Vec<KeywordHit>, EngineError> {
    if keywords.is_empty() {
        return Ok(Vec::new());
    }
    // Phase 1: match, one task per (keyword, endpoint).
    let tasks: Vec<(usize, EndpointId)> = (0..keywords.len())
        .flat_map(|k| federation.ids().map(move |ep| (k, ep)))
        .collect();
    let results = handler.map(tasks.clone(), |(k, ep)| {
        let q = match_query(keywords[k], config.per_endpoint_limit);
        federation.endpoint(ep).select(&q)
    });
    let results: Vec<_> = results.into_iter().collect::<Result<_, _>>()?;

    // Phase 2: aggregate per (entity, endpoint).
    #[derive(Default)]
    struct Agg {
        keywords: Vec<usize>,
        matches: usize,
    }
    let mut agg: FxHashMap<(Term, EndpointId), Agg> = FxHashMap::default();
    for ((k, ep), rel) in tasks.into_iter().zip(results) {
        let si = rel.index_of(&Variable::new("s"));
        let Some(si) = si else { continue };
        for row in rel.rows() {
            let Some(entity) = row[si].clone() else {
                continue;
            };
            let entry = agg.entry((entity, ep)).or_default();
            if !entry.keywords.contains(&k) {
                entry.keywords.push(k);
            }
            entry.matches += 1;
        }
    }
    let mut ranked: Vec<((Term, EndpointId), Agg)> = agg.into_iter().collect();
    ranked.sort_by(|a, b| {
        (b.1.keywords.len(), b.1.matches, &a.0 .0)
            .partial_cmp(&(a.1.keywords.len(), a.1.matches, &b.0 .0))
            .unwrap()
    });
    ranked.truncate(config.top_k);

    // Phase 3: describe the winners, in parallel.
    let describes = handler.map(
        ranked.iter().map(|((e, ep), _)| (e.clone(), *ep)).collect(),
        |(entity, ep)| {
            federation
                .endpoint(ep)
                .select(&describe_query(&entity, config.describe_limit))
        },
    );
    let describes: Vec<_> = describes.into_iter().collect::<Result<_, _>>()?;

    Ok(ranked
        .into_iter()
        .zip(describes)
        .map(|(((entity, endpoint), a), desc)| {
            let pi = desc.index_of(&Variable::new("p"));
            let oi = desc.index_of(&Variable::new("o"));
            let description = desc
                .rows()
                .iter()
                .filter_map(|row| {
                    let p = pi.and_then(|i| row[i].clone())?;
                    let o = oi.and_then(|i| row[i].clone())?;
                    Some((p, o))
                })
                .collect();
            KeywordHit {
                entity,
                endpoint,
                keywords_matched: a.keywords.len(),
                match_count: a.matches,
                description,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::{NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
    use lusail_rdf::Graph;
    use lusail_store::Store;
    use std::sync::Arc;

    fn fed() -> Federation {
        let mut g1 = Graph::new();
        g1.add(
            Term::iri("http://a/einstein"),
            Term::iri("http://x/name"),
            Term::literal("Albert Einstein"),
        );
        g1.add(
            Term::iri("http://a/einstein"),
            Term::iri("http://x/field"),
            Term::literal("physics"),
        );
        g1.add(
            Term::iri("http://a/bohr"),
            Term::iri("http://x/name"),
            Term::literal("Niels Bohr"),
        );
        g1.add(
            Term::iri("http://a/bohr"),
            Term::iri("http://x/field"),
            Term::literal("physics"),
        );
        let mut g2 = Graph::new();
        g2.add(
            Term::iri("http://b/princeton"),
            Term::iri("http://x/label"),
            Term::literal("Princeton, where Einstein worked"),
        );
        Federation::new(vec![
            Arc::new(SimulatedEndpoint::new(
                "a",
                Store::from_graph(&g1),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
            Arc::new(SimulatedEndpoint::new(
                "b",
                Store::from_graph(&g2),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
        ])
    }

    #[test]
    fn finds_and_ranks_across_endpoints() {
        let fed = fed();
        let handler = RequestHandler::new(4);
        let hits = keyword_search(
            &fed,
            &handler,
            &["einstein", "physics"],
            &KeywordConfig::default(),
        )
        .unwrap();
        assert!(!hits.is_empty());
        // Einstein matches both keywords → ranked first.
        assert_eq!(hits[0].entity, Term::iri("http://a/einstein"));
        assert_eq!(hits[0].keywords_matched, 2);
        // The Princeton entity (other endpoint) matches one keyword.
        assert!(hits
            .iter()
            .any(|h| h.entity == Term::iri("http://b/princeton")));
        // Descriptions are populated.
        assert!(!hits[0].description.is_empty());
    }

    #[test]
    fn case_insensitive_matching() {
        let fed = fed();
        let handler = RequestHandler::new(2);
        let hits =
            keyword_search(&fed, &handler, &["EINSTEIN"], &KeywordConfig::default()).unwrap();
        assert!(hits
            .iter()
            .any(|h| h.entity == Term::iri("http://a/einstein")));
    }

    #[test]
    fn empty_keywords_empty_result() {
        let fed = fed();
        let handler = RequestHandler::new(2);
        assert!(
            keyword_search(&fed, &handler, &[], &KeywordConfig::default())
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn top_k_truncates() {
        let fed = fed();
        let handler = RequestHandler::new(2);
        let cfg = KeywordConfig {
            top_k: 1,
            ..Default::default()
        };
        let hits = keyword_search(&fed, &handler, &["physics"], &cfg).unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn regex_escape_neutralizes_metachars() {
        assert_eq!(regex_escape("a.b*c"), "a\\.b\\*c");
        let fed = fed();
        let handler = RequestHandler::new(2);
        // A keyword full of metacharacters must not error or match everything.
        let hits = keyword_search(&fed, &handler, &["(((."], &KeywordConfig::default()).unwrap();
        assert!(hits.is_empty());
    }
}
