//! # lusail-core
//!
//! Lusail: a federated SPARQL query processor for decentralized RDF graphs,
//! reproducing *“Lusail: A System for Querying Linked Data at Scale”*
//! (PVLDB 11(4), 2017; demonstrated at SIGMOD 2017).
//!
//! Lusail processes a federated query in two phases:
//!
//! 1. **LADE** (Locality-Aware DEcomposition, [`lade`]) — decomposes the
//!    query into subqueries using *instance-level* locality. It detects
//!    **global join variables** (GJVs): variables whose matching instances
//!    can span endpoints, found either from differing source sets or by
//!    sending lightweight `FILTER NOT EXISTS … LIMIT 1` check queries to
//!    the endpoints (Figure 5, Algorithm 1). Triple patterns that never
//!    need a cross-endpoint join are grouped into one subquery and pushed
//!    whole to the endpoints (Algorithm 2).
//! 2. **SAPE** (Selectivity-Aware Planning and parallel Execution,
//!    [`sape`]) — estimates subquery cardinalities with per-triple-pattern
//!    `COUNT` probes, rejects outliers with Chauvenet's criterion, delays
//!    subqueries whose estimate exceeds `μ + σ`, runs the rest concurrently
//!    (one task per endpoint via the ERH), evaluates delayed subqueries as
//!    bound joins over `VALUES` blocks of already-found bindings, and joins
//!    subquery results with a DP-ordered parallel hash join (Algorithm 3).
//!
//! The entry point is [`LusailEngine`]:
//!
//! ```
//! use lusail_core::{LusailEngine, LusailConfig};
//! use lusail_federation::{Federation, SimulatedEndpoint, NetworkProfile};
//! use lusail_store::Store;
//! use lusail_rdf::{Graph, Term};
//! use std::sync::Arc;
//!
//! let mut g = Graph::new();
//! g.add(Term::iri("http://x/s"), Term::iri("http://x/p"), Term::iri("http://x/o"));
//! let ep = SimulatedEndpoint::new("ep0", Store::from_graph(&g), NetworkProfile::instant());
//! let fed = Federation::new(vec![Arc::new(ep)]);
//!
//! let engine = LusailEngine::new(fed, LusailConfig::default());
//! let query = lusail_sparql::parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap();
//! let result = engine.execute(&query).unwrap();
//! assert_eq!(result.len(), 1);
//! ```

pub mod budget;
pub mod cache;
pub mod config;
pub mod early;
pub mod engine;
pub mod error;
pub mod keyword;
pub mod lade;
pub mod normalize;
pub mod run;
pub mod sape;
pub mod source;
pub mod subquery;

pub use budget::{MemoryBudget, MemoryPhase, MemoryPool, MemoryStats, PoolRejection, PoolStats};
pub use cache::{CacheLimits, CacheStats, QueryCache, ResultCache, ResultCacheStats};
pub use config::{DelayThreshold, LusailConfig, ResultPolicy, SapeMode};
pub use engine::{ExecutionProfile, LusailEngine};
pub use error::EngineError;
pub use lusail_federation::{IntegrityConfig, IntegrityRegistry, IntegritySnapshot};
pub use run::{CancelReason, CancelToken, ExecutionWarning, RunContext};
pub use subquery::Subquery;
