//! The Lusail engine: source selection → LADE → SAPE → result assembly.

use crate::budget::{MemoryPhase, MemoryStats};
use crate::cache::QueryCache;
use crate::config::{LusailConfig, SapeMode};
use crate::error::EngineError;
use crate::lade::decompose::{decompose, SubqueryDraft};
use crate::lade::gjv::detect_gjvs_with;
use crate::normalize::{normalize, ConjBranch};
use crate::run::{ExecutionWarning, RunContext};
use crate::sape::estimate::{collect_tp_counts, subquery_cardinality, TpCounts};
use crate::sape::execute::SapeExecutor;
use crate::sape::schedule::{make_schedule, Schedule};
use crate::source::select_sources;
use crate::subquery::Subquery;
use lusail_federation::{EndpointError, EndpointId, Federation, IntegrityRegistry, RequestHandler};
use lusail_rdf::fxhash::FxHashMap;
use lusail_rdf::Term;
use lusail_sparql::ast::{
    Expression, GraphPattern, Projection, Query, QueryForm, SelectQuery, Variable,
};
use lusail_sparql::solution::Relation;
use lusail_store::expr::{eval_ebv, ExprContext};
use std::time::{Duration, Instant};

/// Timing and plan information for one executed query (the data behind the
/// paper's Figure 12 profiling plots).
#[derive(Debug, Clone, Default)]
pub struct ExecutionProfile {
    /// Time in source selection (ASK probes / cache).
    pub source_selection: Duration,
    /// Time in query analysis: GJV detection, COUNT probes, decomposition.
    pub analysis: Duration,
    /// Time executing subqueries and joining their results.
    pub execution: Duration,
    /// End-to-end time.
    pub total: Duration,
    /// Detected global join variables (across all branches).
    pub gjvs: Vec<String>,
    /// Total number of subqueries produced by LADE.
    pub subqueries: usize,
    /// How many subqueries SAPE delayed.
    pub delayed: usize,
    /// Locality check queries actually sent (cache misses).
    pub check_queries: usize,
    /// `(subquery id, estimated, actual)` for non-delayed multi-pattern
    /// subqueries — input to the q-error analysis.
    pub estimates: Vec<(usize, usize, usize)>,
    /// Rows in the final result.
    pub result_rows: usize,
    /// Work skipped under [`crate::ResultPolicy::Partial`]: each entry
    /// names the unreachable endpoint and the affected subquery or probe.
    /// Empty for complete (non-degraded) results.
    pub warnings: Vec<ExecutionWarning>,
    /// Memory accounting: peak accounted bytes (overall and per phase)
    /// and spill activity, from the per-query [`crate::MemoryBudget`].
    pub memory: MemoryStats,
}

/// The Lusail federated SPARQL engine (see the crate docs for an overview).
pub struct LusailEngine {
    federation: Federation,
    config: LusailConfig,
    cache: QueryCache,
    handler: RequestHandler,
    integrity: IntegrityRegistry,
}

impl LusailEngine {
    /// Create an engine over a federation.
    pub fn new(federation: Federation, config: LusailConfig) -> Self {
        Self::with_cache(federation, config, QueryCache::new())
    }

    /// Create an engine with a caller-configured analysis cache — the
    /// federation service mounts a bounded, TTL-expiring cache here so a
    /// long-lived shared engine cannot accumulate stale endpoint facts.
    pub fn with_cache(federation: Federation, config: LusailConfig, cache: QueryCache) -> Self {
        let handler = match config.threads {
            Some(n) => RequestHandler::new(n),
            None => RequestHandler::per_core(),
        };
        let integrity = IntegrityRegistry::new(config.integrity.clone());
        LusailEngine {
            federation,
            config,
            cache,
            handler,
            integrity,
        }
    }

    /// The underlying federation.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// The engine's analysis caches (shared across queries).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LusailConfig {
        &self.config
    }

    /// The engine's result-integrity ledger: learned caps, truncation
    /// and recovery counters, and quarantine membership per endpoint,
    /// accumulated across queries.
    pub fn integrity(&self) -> &IntegrityRegistry {
        &self.integrity
    }

    /// Execute a `SELECT` query, returning its solutions. `ASK` queries
    /// return a 0/1-row relation with no columns.
    pub fn execute(&self, query: &Query) -> Result<Relation, EngineError> {
        self.execute_profiled(query).map(|(rel, _)| rel)
    }

    /// Execute an `ASK` query.
    pub fn execute_ask(&self, query: &Query) -> Result<bool, EngineError> {
        let (rel, _) = self.execute_profiled(query)?;
        Ok(!rel.is_empty())
    }

    /// Execute with full phase profiling.
    pub fn execute_profiled(
        &self,
        query: &Query,
    ) -> Result<(Relation, ExecutionProfile), EngineError> {
        let ctx = RunContext::new(&self.config);
        self.execute_profiled_with(query, &ctx)
    }

    /// Execute under a caller-supplied [`RunContext`] — the entry point
    /// for `lusail serve --federate`, where the deadline, result policy,
    /// row cap, and memory ledger (carved from a shared pool) belong to
    /// the request, not to the engine. Engine-level knobs (SAPE mode,
    /// bound-join block sizes, analysis caches) still come from the
    /// engine's own config.
    pub fn execute_profiled_with(
        &self,
        query: &Query,
        ctx: &RunContext,
    ) -> Result<(Relation, ExecutionProfile), EngineError> {
        let start = Instant::now();
        let mut profile = ExecutionProfile::default();

        let select_view: SelectQuery = match &query.form {
            QueryForm::Select(s) => s.clone(),
            QueryForm::Ask(p) => {
                let mut s = SelectQuery::new(Projection::All, p.clone());
                s.limit = Some(1);
                s
            }
        };

        let branches = normalize(&select_view.pattern)?;
        let mut combined: Option<Relation> = None;
        for branch in &branches {
            let rel = self.execute_branch(branch, &select_view, ctx, &mut profile)?;
            combined = Some(match combined {
                None => rel,
                Some(acc) => union_relations(acc, rel),
            });
        }
        let mut result = combined.unwrap_or_default();

        // ---- Solution modifiers (applied at the federator) -------------
        let out_vars: Vec<Variable> = match &select_view.projection {
            Projection::All => result.vars().to_vec(),
            Projection::Vars(vs) => vs.clone(),
            Projection::Count { .. } | Projection::Aggregate { .. } => Vec::new(),
        };
        if let Projection::Count {
            inner,
            distinct,
            as_var,
        } = &select_view.projection
        {
            let n = match inner {
                None => {
                    if *distinct {
                        let mut r = result.clone();
                        r.dedup();
                        r.len()
                    } else {
                        result.len()
                    }
                }
                Some(v) => {
                    if *distinct {
                        result.distinct_values(v).len()
                    } else {
                        result
                            .index_of(v)
                            .map(|i| result.rows().iter().filter(|r| r[i].is_some()).count())
                            .unwrap_or(0)
                    }
                }
            };
            let mut rel = Relation::new(vec![as_var.clone()]);
            rel.push(vec![Some(Term::integer(n as i64))]);
            result = rel;
        } else if let Projection::Aggregate { keys, aggs } = &select_view.projection {
            result = lusail_sparql::aggregate::aggregate_relation(
                &result,
                &select_view.group_by,
                keys,
                aggs,
            );
            if let Some(limit) = select_view.limit {
                result.rows_mut().truncate(limit);
            }
        } else {
            result = result.project(&out_vars);
            if !select_view.order_by.is_empty() {
                sort_relation(&mut result, &select_view.order_by);
            }
            if select_view.distinct {
                result.dedup();
            }
            if let Some(offset) = select_view.offset {
                let rows = result.rows_mut();
                if offset >= rows.len() {
                    rows.clear();
                } else {
                    rows.drain(..offset);
                }
            }
            if let Some(limit) = select_view.limit {
                // The paper is explicit that Lusail computes all results and
                // truncates (its C4 discussion); we do the same.
                result.rows_mut().truncate(limit);
            }
        }

        profile.result_rows = result.len();
        profile.warnings = ctx.take_warnings();
        profile.memory = ctx.memory.stats();
        profile.total = start.elapsed();
        Ok((result, profile))
    }

    fn execute_branch(
        &self,
        branch: &ConjBranch,
        select_view: &SelectQuery,
        ctx: &RunContext,
        profile: &mut ExecutionProfile,
    ) -> Result<Relation, EngineError> {
        let cache = self.config.enable_cache.then_some(&self.cache);
        let count_cache =
            (self.config.enable_cache && self.config.cache_counts).then_some(&self.cache);

        // ---- Source selection ------------------------------------------
        let t = Instant::now();
        let sources = select_sources(
            &self.federation,
            &self.handler,
            cache,
            &branch.patterns,
            ctx,
        )?;
        profile.source_selection += t.elapsed();
        ctx.check()?;

        // ---- LADE: GJV detection + decomposition ------------------------
        let t = Instant::now();
        let analysis = detect_gjvs_with(
            &self.federation,
            &self.handler,
            cache,
            &branch.patterns,
            &sources,
            self.config.paranoid_locality,
            ctx,
        )?;
        profile.check_queries += analysis.check_queries_sent;
        for v in &analysis.gjvs {
            if !profile.gjvs.contains(&v.name().to_string()) {
                profile.gjvs.push(v.name().to_string());
            }
        }
        ctx.check()?;

        let counts = collect_tp_counts(
            &self.federation,
            &self.handler,
            count_cache,
            &branch.patterns,
            &branch.filters,
            &sources,
            ctx,
        )?;
        ctx.check()?;

        let estimator = |drafts: &[SubqueryDraft]| -> f64 {
            drafts
                .iter()
                .map(|d| {
                    subquery_cardinality(&d.patterns, &d.sources, &branch.patterns, &counts, &[])
                        as f64
                })
                .sum()
        };
        let decomposition = decompose(&branch.patterns, &sources, &analysis, &estimator);
        let (mut subqueries, mut cardinalities, global_filters) =
            self.build_subqueries(branch, select_view, &decomposition.subqueries, &counts);
        // Expected per-endpoint row counts, from the COUNT probes: exact
        // only for single-pattern subqueries, where the probe measured
        // the very query the wave will send. A delivery below the
        // expectation is the integrity layer's truncation signal.
        let expected: Vec<FxHashMap<EndpointId, usize>> = decomposition
            .subqueries
            .iter()
            .map(|draft| {
                if draft.patterns.len() == 1 {
                    counts[draft.patterns[0]].clone()
                } else {
                    FxHashMap::default()
                }
            })
            .collect();
        profile.analysis += t.elapsed();

        // ---- Optional subqueries ----------------------------------------
        let t_opt = Instant::now();
        for block in &branch.optionals {
            let opt_sources =
                select_sources(&self.federation, &self.handler, cache, &block.patterns, ctx)?;
            let merged: Vec<EndpointId> = {
                let mut s: Vec<EndpointId> = opt_sources.iter().flatten().copied().collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            let opt_counts = collect_tp_counts(
                &self.federation,
                &self.handler,
                count_cache,
                &block.patterns,
                &block.filters,
                &opt_sources,
                ctx,
            )?;
            let id = subqueries.len();
            let sq = Subquery {
                id,
                patterns: block.patterns.clone(),
                filters: block.filters.clone(),
                sources: merged.clone(),
                projection: block.variables(),
                optional: true,
            };
            let card = subquery_cardinality(
                &(0..block.patterns.len()).collect::<Vec<_>>(),
                &merged,
                &block.patterns,
                &opt_counts,
                &sq.projection,
            );
            subqueries.push(sq);
            cardinalities.push(card);
        }
        profile.analysis += t_opt.elapsed();
        profile.subqueries += subqueries.len();

        // ---- SAPE: schedule + execute ------------------------------------
        let t = Instant::now();
        let schedule = match self.config.sape_mode {
            SapeMode::Full => {
                make_schedule(&subqueries, &cardinalities, self.config.delay_threshold)
            }
            SapeMode::LadeOnly => {
                // Ablation: everything (except optionals, which must still
                // be left-joined last) runs concurrently with no delaying.
                let mut s = Schedule {
                    non_delayed: Vec::new(),
                    delayed: Vec::new(),
                };
                for (i, sq) in subqueries.iter().enumerate() {
                    if sq.optional {
                        s.delayed.push(i);
                    } else {
                        s.non_delayed.push(i);
                    }
                }
                s
            }
        };
        profile.delayed += schedule.delayed.len();

        let executor = SapeExecutor {
            federation: &self.federation,
            handler: &self.handler,
            config: &self.config,
            ctx,
            integrity: &self.integrity,
        };
        // FILTER(?a = ?b) equalities bridge disconnected subqueries as
        // hash joins instead of cross products.
        let bridges: Vec<(Variable, Variable)> = global_filters
            .iter()
            .filter_map(|f| match f {
                Expression::Eq(a, b) => match (a.as_ref(), b.as_ref()) {
                    (Expression::Var(x), Expression::Var(y)) => Some((x.clone(), y.clone())),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        let outcome =
            executor.execute(&subqueries, &schedule, &cardinalities, &bridges, &expected)?;
        profile.estimates.extend(outcome.estimates.iter().copied());
        let mut rel = outcome.relation;

        // ---- Global residue: VALUES, MINUS groups, BINDs, filters -------
        for (vars, rows) in &branch.values {
            let values_rel = Relation::from_rows(vars.clone(), rows.clone());
            rel = rel.join(&values_rel);
        }
        for block in &branch.minuses {
            ctx.check()?;
            let minus_sources =
                select_sources(&self.federation, &self.handler, cache, &block.patterns, ctx)?;
            let merged: Vec<EndpointId> = {
                let mut s: Vec<EndpointId> = minus_sources.iter().flatten().copied().collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            let sq = Subquery {
                id: usize::MAX,
                patterns: block.patterns.clone(),
                filters: block.filters.clone(),
                sources: merged.clone(),
                projection: block.variables(),
                optional: false,
            };
            let results = self.handler.map_cancellable(
                merged.clone(),
                ctx.deadline.clone(),
                |_| Err(EndpointError::deadline("MINUS block")),
                |ep| {
                    self.federation
                        .endpoint(ep)
                        .select_within(&sq.to_query(), ctx.deadline.clone())
                },
            );
            let mut minus_rel = Relation::new(sq.projection.clone());
            for (ep, r) in merged.into_iter().zip(results) {
                // Skipping a MINUS contribution removes fewer rows, so a
                // degraded result is a *superset* of the true answer; the
                // warning records which endpoint's exclusions are missing.
                let empty = Relation::new(sq.projection.clone());
                let r = ctx.absorb("MINUS block", empty, r)?;
                minus_rel.append(ctx.admit_relation(
                    "MINUS block",
                    self.federation.endpoint(ep).name(),
                    MemoryPhase::Wave,
                    r,
                )?);
            }
            rel = rel.minus(&minus_rel);
        }
        for (expr, var) in &branch.binds {
            rel = apply_bind(rel, expr, var);
        }
        for f in &global_filters {
            rel = apply_global_filter(rel, f);
        }
        profile.execution += t.elapsed();
        Ok(rel)
    }

    /// Materialize subquery drafts into [`Subquery`] values: compute
    /// projections, push filters, and estimate cardinalities. Returns the
    /// subqueries, their cardinalities, and the filters that could *not*
    /// be pushed (to be applied after the global join).
    fn build_subqueries(
        &self,
        branch: &ConjBranch,
        select_view: &SelectQuery,
        drafts: &[SubqueryDraft],
        counts: &TpCounts,
    ) -> (Vec<Subquery>, Vec<usize>, Vec<Expression>) {
        // Variables needed outside each subquery: the final projection,
        // global filters, optional blocks, VALUES, ORDER BY, and any
        // variable shared with another subquery.
        let final_vars: Vec<Variable> = match &select_view.projection {
            Projection::All => branch.variables(),
            Projection::Vars(vs) => vs.clone(),
            Projection::Count { inner, .. } => inner.iter().cloned().collect::<Vec<_>>(),
            Projection::Aggregate { keys, aggs } => {
                let mut vs = keys.clone();
                vs.extend(select_view.group_by.iter().cloned());
                vs.extend(aggs.iter().filter_map(|a| a.arg.clone()));
                vs.dedup();
                vs
            }
        };

        let mut subqueries = Vec::with_capacity(drafts.len());
        let mut cardinalities = Vec::with_capacity(drafts.len());
        let mut pushed = vec![false; branch.filters.len()];

        for (id, draft) in drafts.iter().enumerate() {
            let patterns: Vec<_> = draft
                .patterns
                .iter()
                .map(|&i| branch.patterns[i].clone())
                .collect();
            let mut sq_vars: Vec<Variable> = Vec::new();
            for tp in &patterns {
                for v in tp.variables() {
                    if !sq_vars.contains(v) {
                        sq_vars.push(v.clone());
                    }
                }
            }

            // Push every branch filter fully covered by this subquery.
            let mut filters = Vec::new();
            for (fi, f) in branch.filters.iter().enumerate() {
                if filter_is_pushable(f) {
                    let fvars = f.variables();
                    if !fvars.is_empty() && fvars.iter().all(|v| sq_vars.contains(v)) {
                        filters.push(f.clone());
                        pushed[fi] = true;
                    }
                }
            }

            // Projection: variables needed elsewhere.
            let mut projection: Vec<Variable> = sq_vars
                .iter()
                .filter(|v| {
                    final_vars.contains(v)
                        || select_view.order_by.iter().any(|(ov, _)| &ov == v)
                        || branch
                            .filters
                            .iter()
                            .enumerate()
                            .any(|(fi, f)| !pushed[fi] && f.variables().contains(v))
                        || branch.optionals.iter().any(|o| o.variables().contains(v))
                        || branch.minuses.iter().any(|m| m.variables().contains(v))
                        || branch.binds.iter().any(|(e, _)| e.variables().contains(v))
                        || branch.values.iter().any(|(vs, _)| vs.contains(v))
                        || drafts.iter().enumerate().any(|(oid, other)| {
                            oid != id
                                && other
                                    .patterns
                                    .iter()
                                    .any(|&pi| branch.patterns[pi].mentions(v))
                        })
                })
                .cloned()
                .collect();
            if projection.is_empty() {
                projection = sq_vars.clone();
            }

            let card = subquery_cardinality(
                &draft.patterns,
                &draft.sources,
                &branch.patterns,
                counts,
                &projection,
            );
            subqueries.push(Subquery {
                id,
                patterns,
                filters,
                sources: draft.sources.clone(),
                projection,
                optional: false,
            });
            cardinalities.push(card);
        }

        let globals: Vec<Expression> = branch
            .filters
            .iter()
            .enumerate()
            .filter(|(fi, _)| !pushed[*fi])
            .map(|(_, f)| f.clone())
            .collect();
        (subqueries, cardinalities, globals)
    }
}

/// Filters containing EXISTS cannot be pushed textually with our
/// decomposition bookkeeping (their inner pattern's sources are not
/// analyzed); they stay global.
fn filter_is_pushable(f: &Expression) -> bool {
    !matches!(f, Expression::Exists(_) | Expression::NotExists(_))
}

/// Bag union of two relations with possibly different headers.
fn union_relations(a: Relation, b: Relation) -> Relation {
    let mut vars = a.vars().to_vec();
    for v in b.vars() {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    let mut out = Relation::new(vars.clone());
    for rel in [&a, &b] {
        let idx: Vec<Option<usize>> = vars.iter().map(|v| rel.index_of(v)).collect();
        for row in rel.rows() {
            out.push(idx.iter().map(|i| i.and_then(|i| row[i].clone())).collect());
        }
    }
    out
}

/// Evaluate a residual filter over a materialized relation.
///
/// `EXISTS` at the global level is unsupported (no store to probe) and
/// evaluates to false — benchmark queries never need it there because
/// LADE pushes pattern-level semantics into the subqueries.
fn apply_global_filter(rel: Relation, f: &Expression) -> Relation {
    struct RowCtx<'a> {
        vars: &'a [Variable],
        row: &'a [Option<Term>],
    }
    impl ExprContext for RowCtx<'_> {
        fn value_of(&self, v: &Variable) -> Option<Term> {
            let i = self.vars.iter().position(|x| x == v)?;
            self.row[i].clone()
        }
        fn exists(&mut self, _pattern: &GraphPattern) -> bool {
            false
        }
    }
    let vars = rel.vars().to_vec();
    let rows = rel
        .rows()
        .iter()
        .filter(|row| {
            let mut ctx = RowCtx { vars: &vars, row };
            eval_ebv(f, &mut ctx)
        })
        .cloned()
        .collect();
    Relation::from_rows(vars, rows)
}

/// `BIND(expr AS ?v)` over a materialized relation; evaluation errors
/// leave the variable unbound (SPARQL semantics).
fn apply_bind(rel: Relation, expr: &Expression, var: &Variable) -> Relation {
    struct RowCtx<'a> {
        vars: &'a [Variable],
        row: &'a [Option<Term>],
    }
    impl ExprContext for RowCtx<'_> {
        fn value_of(&self, v: &Variable) -> Option<Term> {
            let i = self.vars.iter().position(|x| x == v)?;
            self.row[i].clone()
        }
        fn exists(&mut self, _pattern: &GraphPattern) -> bool {
            false
        }
    }
    let mut vars = rel.vars().to_vec();
    if !vars.contains(var) {
        vars.push(var.clone());
    }
    let out_idx = vars.iter().position(|x| x == var).unwrap();
    let mut out = Relation::new(vars);
    for row in rel.rows() {
        let value = {
            let mut ctx = RowCtx {
                vars: rel.vars(),
                row,
            };
            lusail_store::expr::eval(expr, &mut ctx).and_then(lusail_store::expr::value_to_term)
        };
        let mut new_row = row.clone();
        if new_row.len() < out.vars().len() {
            new_row.push(None);
        }
        new_row[out_idx] = value;
        out.push(new_row);
    }
    out
}

/// ORDER BY over term rows (numeric literals numerically, everything else
/// lexically; unbound first).
fn sort_relation(rel: &mut Relation, keys: &[(Variable, bool)]) {
    let idx: Vec<(Option<usize>, bool)> = keys
        .iter()
        .map(|(v, asc)| (rel.index_of(v), *asc))
        .collect();
    rel.rows_mut().sort_by(|a, b| {
        for (i, asc) in &idx {
            if let Some(i) = i {
                let ord = compare_terms(&a[*i], &b[*i]);
                let ord = if *asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn compare_terms(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(t: &Option<Term>) -> u8 {
        match t {
            None => 0,
            Some(Term::BlankNode(_)) => 1,
            Some(Term::Iri(_)) => 2,
            Some(Term::Literal(_)) => 3,
        }
    }
    let (ra, rb) = (rank(a), rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Some(Term::Literal(la)), Some(Term::Literal(lb))) => {
            if let (Some(na), Some(nb)) = (la.as_f64(), lb.as_f64()) {
                na.partial_cmp(&nb).unwrap_or(Ordering::Equal)
            } else {
                la.lexical.cmp(&lb.lexical)
            }
        }
        (Some(x), Some(y)) => x.cmp(y),
        _ => Ordering::Equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::{NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
    use lusail_rdf::{vocab, Graph};
    use lusail_sparql::parse_query;
    use lusail_store::Store;
    use std::sync::Arc;

    /// Build the paper's Figure 1 two-endpoint federation.
    ///
    /// EP1 (univ1): MIT with address, Ann (advisor who teaches nothing),
    /// Bob advised by Ann, courses.
    /// EP2 (univ2): CMU with address, Kim/Lee students, Joy/Tim/Ben
    /// professors; Tim's PhD is from MIT (the interlink).
    fn figure1_federation() -> Federation {
        let ub = |l: &str| Term::iri(format!("{}{l}", vocab::ub::NS));
        let u1 = |l: &str| Term::iri(format!("http://univ1.example.org/{l}"));
        let u2 = |l: &str| Term::iri(format!("http://univ2.example.org/{l}"));

        let mut g1 = Graph::new();
        g1.add_type(u1("MIT"), vocab::ub::UNIVERSITY);
        g1.add(u1("MIT"), ub("address"), Term::literal("XXX"));
        g1.add_type(u1("Ann"), vocab::ub::ASSOCIATE_PROFESSOR);
        g1.add_type(u1("Bob"), vocab::ub::GRADUATE_STUDENT);
        g1.add_type(u1("ml"), vocab::ub::GRADUATE_COURSE);
        g1.add(u1("Bob"), ub("advisor"), u1("Ann"));
        g1.add(u1("Bob"), ub("takesCourse"), u1("ml"));
        g1.add(u1("Ann"), ub("PhDDegreeFrom"), u1("MIT"));
        // Ann teaches nothing: the "extraneous computation" example that
        // makes ?P a GJV via the advisor/teacherOf check.

        let mut g2 = Graph::new();
        g2.add_type(u2("CMU"), vocab::ub::UNIVERSITY);
        g2.add(u2("CMU"), ub("address"), Term::literal("CCCC"));
        for s in ["Kim", "Lee"] {
            g2.add_type(u2(s), vocab::ub::GRADUATE_STUDENT);
        }
        for p in ["Joy", "Tim", "Ben"] {
            g2.add_type(u2(p), vocab::ub::ASSOCIATE_PROFESSOR);
        }
        for c in ["db", "os"] {
            g2.add_type(u2(c), vocab::ub::GRADUATE_COURSE);
        }
        g2.add(u2("Kim"), ub("advisor"), u2("Joy"));
        g2.add(u2("Kim"), ub("advisor"), u2("Tim"));
        g2.add(u2("Lee"), ub("advisor"), u2("Ben"));
        g2.add(u2("Joy"), ub("teacherOf"), u2("db"));
        g2.add(u2("Tim"), ub("teacherOf"), u2("os"));
        g2.add(u2("Ben"), ub("teacherOf"), u2("os"));
        g2.add(u2("Kim"), ub("takesCourse"), u2("db"));
        g2.add(u2("Kim"), ub("takesCourse"), u2("os"));
        g2.add(u2("Lee"), ub("takesCourse"), u2("os"));
        g2.add(u2("Joy"), ub("PhDDegreeFrom"), u2("CMU"));
        g2.add(u2("Tim"), ub("PhDDegreeFrom"), u1("MIT")); // interlink
        g2.add(u2("Ben"), ub("PhDDegreeFrom"), u2("CMU"));

        Federation::new(vec![
            Arc::new(SimulatedEndpoint::new(
                "univ1",
                Store::from_graph(&g1),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
            Arc::new(SimulatedEndpoint::new(
                "univ2",
                Store::from_graph(&g2),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
        ])
    }

    const QA: &str = r#"
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?S ?P ?U ?A WHERE {
  ?S ub:advisor ?P .
  ?P ub:teacherOf ?C .
  ?S ub:takesCourse ?C .
  ?P ub:PhDDegreeFrom ?U .
  ?S rdf:type ub:GraduateStudent .
  ?P rdf:type ub:AssociateProfessor .
  ?C rdf:type ub:GraduateCourse .
  ?U ub:address ?A . }"#;

    #[test]
    fn qa_returns_the_papers_three_answers() {
        let engine = LusailEngine::new(figure1_federation(), LusailConfig::default());
        let query = parse_query(QA).unwrap();
        let (rel, profile) = engine.execute_profiled(&query).unwrap();

        // The paper: (Kim, Joy, CMU, "CCCC"), (Kim, Tim, MIT, "XXX"),
        // (Lee, Ben, MIT→? no — Lee, Ben, CMU? Ben's PhD is from CMU).
        // Figure 2 caption lists (Kim,Joy,CMU,CCCC), (Kim,Tim,MIT,XXX),
        // (Lee,Ben,MIT,XXX) — in our data Ben's PhD is from CMU, giving
        // (Lee,Ben,CMU,CCCC); the structure (3 rows, one crossing the
        // interlink) is what matters.
        assert_eq!(rel.len(), 3, "{:?}", rel.rows());
        let tim_row = rel
            .rows()
            .iter()
            .find(|r| r[1] == Some(Term::iri("http://univ2.example.org/Tim")))
            .expect("the interlink answer (Kim, Tim, MIT, XXX) must be found");
        assert_eq!(tim_row[2], Some(Term::iri("http://univ1.example.org/MIT")));
        assert_eq!(tim_row[3], Some(Term::literal("XXX")));

        // ?U must be detected as a GJV (Tim's MIT is remote); ?P as well
        // (Ann advises but teaches nothing).
        assert!(
            profile.gjvs.contains(&"U".to_string()),
            "{:?}",
            profile.gjvs
        );
        assert!(
            profile.gjvs.contains(&"P".to_string()),
            "{:?}",
            profile.gjvs
        );
        assert!(profile.subqueries >= 3);
    }

    #[test]
    fn single_endpoint_query_single_subquery() {
        let engine = LusailEngine::new(figure1_federation(), LusailConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?s ?c WHERE { ?s ub:advisor ?p . ?s ub:takesCourse ?c }"#,
        )
        .unwrap();
        let (rel, profile) = engine.execute_profiled(&q).unwrap();
        // ?s is local (every advisee takes courses in the same endpoint):
        // one subquery, no GJVs.
        assert!(profile.gjvs.is_empty(), "{:?}", profile.gjvs);
        assert_eq!(profile.subqueries, 1);
        // Bob(1 course), Kim(2 advisors × 2 courses = 4), Lee(1) = 6 rows.
        assert_eq!(rel.len(), 6);
    }

    #[test]
    fn ask_query() {
        let engine = LusailEngine::new(figure1_federation(), LusailConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               ASK { ?p ub:PhDDegreeFrom ?u . ?u ub:address ?a }"#,
        )
        .unwrap();
        assert!(engine.execute_ask(&q).unwrap());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               ASK { ?p ub:emailAddress ?e }"#,
        )
        .unwrap();
        assert!(!engine.execute_ask(&q).unwrap());
    }

    #[test]
    fn optional_keeps_unmatched_rows() {
        let engine = LusailEngine::new(figure1_federation(), LusailConfig::default());
        // Professors' PhD universities; address is optional. MIT has one,
        // CMU has one; every row should appear.
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?p ?u ?a WHERE {
                 ?p ub:PhDDegreeFrom ?u
                 OPTIONAL { ?u ub:address ?a }
               }"#,
        )
        .unwrap();
        let rel = engine.execute(&q).unwrap();
        // Ann, Joy, Tim, Ben each have a PhD university; all four rows
        // appear and each finds an address — including Tim, whose ?u (MIT)
        // lives on the *other* endpoint and is resolved by the bound
        // optional subquery.
        assert_eq!(rel.len(), 4);
        let addr_of = |who: &str| {
            rel.rows()
                .iter()
                .find(|r| r[0] == Some(Term::iri(format!("http://univ2.example.org/{who}"))))
                .map(|r| r[2].clone())
        };
        assert_eq!(addr_of("Tim"), Some(Some(Term::literal("XXX"))));
        assert_eq!(addr_of("Joy"), Some(Some(Term::literal("CCCC"))));
    }

    #[test]
    fn union_branches_combine() {
        let engine = LusailEngine::new(figure1_federation(), LusailConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               SELECT ?x WHERE {
                 { ?x rdf:type ub:GraduateStudent } UNION { ?x rdf:type ub:University }
               }"#,
        )
        .unwrap();
        let rel = engine.execute(&q).unwrap();
        // Students: Bob, Kim, Lee. Universities: MIT, CMU.
        assert_eq!(rel.len(), 5);
    }

    #[test]
    fn filter_applies_globally_across_subqueries() {
        let engine = LusailEngine::new(figure1_federation(), LusailConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?p ?u ?a WHERE {
                 ?p ub:PhDDegreeFrom ?u .
                 ?u ub:address ?a .
                 FILTER(?a = "XXX")
               }"#,
        )
        .unwrap();
        let rel = engine.execute(&q).unwrap();
        // Only MIT rows: Ann and Tim.
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn distinct_order_limit() {
        let engine = LusailEngine::new(figure1_federation(), LusailConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT DISTINCT ?u WHERE { ?p ub:PhDDegreeFrom ?u } ORDER BY ?u LIMIT 1"#,
        )
        .unwrap();
        let rel = engine.execute(&q).unwrap();
        assert_eq!(rel.len(), 1);
        // Full-IRI ordering: http://univ1…MIT < http://univ2…CMU.
        assert_eq!(
            rel.rows()[0][0],
            Some(Term::iri("http://univ1.example.org/MIT"))
        );
    }

    #[test]
    fn count_projection() {
        let engine = LusailEngine::new(figure1_federation(), LusailConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT (COUNT(*) AS ?c) WHERE { ?s ub:advisor ?p }"#,
        )
        .unwrap();
        let rel = engine.execute(&q).unwrap();
        assert_eq!(rel.rows()[0][0], Some(Term::integer(4)));
    }

    #[test]
    fn cache_reduces_requests_on_repeat() {
        let engine = LusailEngine::new(figure1_federation(), LusailConfig::default());
        let query = parse_query(QA).unwrap();
        engine.execute(&query).unwrap();
        let first = engine.federation().total_traffic().requests;
        engine.execute(&query).unwrap();
        let second = engine.federation().total_traffic().requests - first;
        assert!(
            second < first,
            "cached run should send fewer requests ({second} vs {first})"
        );
        // And results stay identical.
        let r1 = engine.execute(&query).unwrap();
        assert_eq!(r1.len(), 3);
    }

    #[test]
    fn timeout_fires() {
        let cfg = LusailConfig {
            timeout: Some(Duration::ZERO),
            ..Default::default()
        };
        let engine = LusailEngine::new(figure1_federation(), cfg);
        let query = parse_query(QA).unwrap();
        match engine.execute(&query) {
            Err(EngineError::Timeout(_)) => {}
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn values_restricts_results() {
        let engine = LusailEngine::new(figure1_federation(), LusailConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               PREFIX u2: <http://univ2.example.org/>
               SELECT ?s ?p WHERE { ?s ub:advisor ?p . VALUES ?s { u2:Kim } }"#,
        )
        .unwrap();
        let rel = engine.execute(&q).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn lade_only_mode_matches_full_results() {
        let full = LusailEngine::new(figure1_federation(), LusailConfig::default());
        let lade = LusailEngine::new(
            figure1_federation(),
            LusailConfig {
                sape_mode: SapeMode::LadeOnly,
                ..Default::default()
            },
        );
        let query = parse_query(QA).unwrap();
        let r1 = full.execute(&query).unwrap();
        let r2 = lade.execute(&query).unwrap();
        assert_eq!(r1.len(), r2.len());
    }
}
