//! Query normalization: rewriting a [`GraphPattern`] tree into a list of
//! *conjunctive branches*.
//!
//! LADE (Section 3) is defined over conjunctions of triple patterns; the
//! paper notes that Lusail additionally supports `UNION`, `FILTER`,
//! `OPTIONAL`, and `LIMIT` by deciding *where* to attach those clauses
//! during decomposition and global join evaluation. We implement that by
//! first normalizing the query body:
//!
//! * `UNION` distributes: each union arm becomes its own branch, each
//!   branch is decomposed and executed independently, and the branch
//!   results are concatenated (bag union).
//! * `FILTER`s collect on their branch; LADE later pushes each filter into
//!   a subquery when the subquery covers the filter's variables, otherwise
//!   SAPE applies it after the global join.
//! * `OPTIONAL` groups become [`OptionalBlock`]s on their branch; SAPE
//!   treats them as *optional subqueries* (always delayed, per Section
//!   4.1's category (iii)) and left-joins their results.
//! * `VALUES` blocks collect on the branch and join in at the global
//!   level.

use crate::error::EngineError;
use lusail_rdf::Term;
use lusail_sparql::ast::{Expression, GraphPattern, TriplePattern, Variable};

/// An `OPTIONAL { … }` group: triple patterns plus filters scoped inside
/// the optional.
#[derive(Debug, Clone, PartialEq)]
pub struct OptionalBlock {
    pub patterns: Vec<TriplePattern>,
    pub filters: Vec<Expression>,
}

impl OptionalBlock {
    /// All variables bound inside the optional group.
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        for tp in &self.patterns {
            for v in tp.variables() {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

/// An inline `VALUES` block: variables plus rows (`None` = `UNDEF`).
pub type ValuesBlock = (Vec<Variable>, Vec<Vec<Option<Term>>>);

/// One conjunctive branch of the (union-normalized) query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConjBranch {
    /// Required triple patterns.
    pub patterns: Vec<TriplePattern>,
    /// Filters applying to this branch.
    pub filters: Vec<Expression>,
    /// Optional groups.
    pub optionals: Vec<OptionalBlock>,
    /// `MINUS { … }` groups: evaluated like subqueries, anti-joined at the
    /// federator.
    pub minuses: Vec<OptionalBlock>,
    /// `BIND(expr AS ?v)` assignments, applied (in order) at the federator
    /// after the global join.
    pub binds: Vec<(Expression, Variable)>,
    /// Inline data blocks.
    pub values: Vec<ValuesBlock>,
}

impl ConjBranch {
    /// All variables bound by required patterns, optionals, or values.
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        let push = |v: &Variable, out: &mut Vec<Variable>| {
            if !out.contains(v) {
                out.push(v.clone());
            }
        };
        for tp in &self.patterns {
            for v in tp.variables() {
                push(v, &mut out);
            }
        }
        for opt in &self.optionals {
            for v in opt.variables() {
                push(&v, &mut out);
            }
        }
        for (vars, _) in &self.values {
            for v in vars {
                push(v, &mut out);
            }
        }
        for (_, v) in &self.binds {
            push(v, &mut out);
        }
        out
    }

    fn merge(mut self, other: ConjBranch) -> ConjBranch {
        self.patterns.extend(other.patterns);
        self.filters.extend(other.filters);
        self.optionals.extend(other.optionals);
        self.minuses.extend(other.minuses);
        self.binds.extend(other.binds);
        self.values.extend(other.values);
        self
    }
}

/// Normalize a pattern tree into conjunctive branches (one per union arm).
pub fn normalize(pattern: &GraphPattern) -> Result<Vec<ConjBranch>, EngineError> {
    match pattern {
        GraphPattern::Bgp(tps) => Ok(vec![ConjBranch {
            patterns: tps.clone(),
            ..Default::default()
        }]),
        GraphPattern::Join(a, b) => {
            let left = normalize(a)?;
            let right = normalize(b)?;
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    out.push(l.clone().merge(r.clone()));
                }
            }
            Ok(out)
        }
        GraphPattern::Union(a, b) => {
            let mut out = normalize(a)?;
            out.extend(normalize(b)?);
            Ok(out)
        }
        GraphPattern::Filter(inner, e) => {
            let mut branches = normalize(inner)?;
            for b in &mut branches {
                b.filters.push(e.clone());
            }
            Ok(branches)
        }
        GraphPattern::LeftJoin(a, b) => {
            let mut branches = normalize(a)?;
            let opt = optional_block(b)?;
            for branch in &mut branches {
                branch.optionals.push(opt.clone());
            }
            Ok(branches)
        }
        GraphPattern::Values(vars, rows) => Ok(vec![ConjBranch {
            values: vec![(vars.clone(), rows.clone())],
            ..Default::default()
        }]),
        GraphPattern::Bind(inner, expr, var) => {
            let mut branches = normalize(inner)?;
            for b in &mut branches {
                b.binds.push((expr.clone(), var.clone()));
            }
            Ok(branches)
        }
        GraphPattern::Minus(a, b) => {
            let mut branches = normalize(a)?;
            let block = optional_block(b)?;
            for branch in &mut branches {
                branch.minuses.push(block.clone());
            }
            Ok(branches)
        }
        GraphPattern::SubSelect(_) => Err(EngineError::Unsupported(
            "subselects are only supported inside locality check queries".into(),
        )),
    }
}

fn optional_block(pattern: &GraphPattern) -> Result<OptionalBlock, EngineError> {
    match pattern {
        GraphPattern::Bgp(tps) => Ok(OptionalBlock {
            patterns: tps.clone(),
            filters: Vec::new(),
        }),
        GraphPattern::Join(a, b) => {
            let mut left = optional_block(a)?;
            let right = optional_block(b)?;
            left.patterns.extend(right.patterns);
            left.filters.extend(right.filters);
            Ok(left)
        }
        GraphPattern::Filter(inner, e) => {
            let mut block = optional_block(inner)?;
            block.filters.push(e.clone());
            Ok(block)
        }
        GraphPattern::Union(..) => Err(EngineError::Unsupported("UNION inside OPTIONAL".into())),
        GraphPattern::LeftJoin(..) => Err(EngineError::Unsupported("nested OPTIONAL".into())),
        GraphPattern::Values(..) => Err(EngineError::Unsupported("VALUES inside OPTIONAL".into())),
        GraphPattern::SubSelect(_) => {
            Err(EngineError::Unsupported("subselect inside OPTIONAL".into()))
        }
        GraphPattern::Bind(..) => Err(EngineError::Unsupported(
            "BIND inside OPTIONAL/MINUS".into(),
        )),
        GraphPattern::Minus(..) => Err(EngineError::Unsupported(
            "MINUS inside OPTIONAL/MINUS".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_sparql::parse_query;

    fn branches(q: &str) -> Vec<ConjBranch> {
        let query = parse_query(q).unwrap();
        normalize(query.pattern()).unwrap()
    }

    #[test]
    fn plain_bgp_is_one_branch() {
        let b = branches("SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c }");
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].patterns.len(), 2);
        assert_eq!(b[0].variables().len(), 3);
    }

    #[test]
    fn union_splits_branches() {
        let b = branches(
            "SELECT * WHERE { ?x <http://t> ?y { ?x a <http://A> } UNION { ?x a <http://B> } }",
        );
        assert_eq!(b.len(), 2);
        for branch in &b {
            assert_eq!(branch.patterns.len(), 2); // shared TP + arm TP
        }
    }

    #[test]
    fn nested_unions_multiply() {
        let b = branches(
            "SELECT * WHERE { { ?x a <http://A> } UNION { ?x a <http://B> } { ?y a <http://C> } UNION { ?y a <http://D> } }",
        );
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn filters_attach_to_branches() {
        let b = branches(
            "SELECT * WHERE { { ?x a <http://A> } UNION { ?x a <http://B> } FILTER(?x != <http://bad>) }",
        );
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|br| br.filters.len() == 1));
    }

    #[test]
    fn optional_collects_block() {
        let b = branches(
            "SELECT * WHERE { ?x a <http://A> OPTIONAL { ?x <http://n> ?n FILTER(?n != \"x\") } }",
        );
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].optionals.len(), 1);
        assert_eq!(b[0].optionals[0].patterns.len(), 1);
        assert_eq!(b[0].optionals[0].filters.len(), 1);
        assert!(b[0].variables().contains(&Variable::new("n")));
    }

    #[test]
    fn values_collects() {
        let b = branches("SELECT * WHERE { ?x a <http://A> . VALUES ?x { <http://1> } }");
        assert_eq!(b[0].values.len(), 1);
    }

    #[test]
    fn union_inside_optional_unsupported() {
        let q = parse_query(
            "SELECT * WHERE { ?x a <http://A> OPTIONAL { { ?x a <http://B> } UNION { ?x a <http://C> } } }",
        )
        .unwrap();
        assert!(matches!(
            normalize(q.pattern()),
            Err(EngineError::Unsupported(_))
        ));
    }
}
