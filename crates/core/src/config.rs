//! Engine configuration.

use lusail_federation::IntegrityConfig;
use std::time::Duration;

/// Threshold for classifying a subquery as *delayed* (Section 4.1,
/// evaluated experimentally in Figure 13 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayThreshold {
    /// Delay when estimated cardinality exceeds `μ`.
    Mu,
    /// Delay when it exceeds `μ + σ` — the paper's default (it
    /// "consistently performs well in all three categories").
    MuSigma,
    /// Delay when it exceeds `μ + 2σ`.
    Mu2Sigma,
    /// Delay only subqueries rejected as outliers by Chauvenet's criterion.
    OutliersOnly,
}

impl DelayThreshold {
    /// The label used in Figure 13.
    pub fn label(&self) -> &'static str {
        match self {
            DelayThreshold::Mu => "mu",
            DelayThreshold::MuSigma => "mu+sigma",
            DelayThreshold::Mu2Sigma => "mu+2sigma",
            DelayThreshold::OutliersOnly => "outliers",
        }
    }
}

/// Which parts of the two-phase strategy run (the Figure 14 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SapeMode {
    /// LADE decomposition + full SAPE scheduling (delayed subqueries,
    /// selectivity-aware ordering, DP join ordering). The real system.
    Full,
    /// LADE decomposition only: all subqueries run concurrently with no
    /// delaying and results are joined in arrival order. Isolates the gain
    /// of the decomposition itself.
    LadeOnly,
}

/// What to do when an endpoint is unreachable (transport failure or open
/// circuit breaker) during query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResultPolicy {
    /// Any endpoint failure aborts the query with a structured error
    /// naming the endpoint (the default).
    #[default]
    FailFast,
    /// Skip subqueries against unreachable endpoints and return the
    /// results computable from the rest, carrying an
    /// [`crate::run::ExecutionWarning`] per skipped piece of work.
    Partial,
}

/// Lusail engine configuration.
#[derive(Debug, Clone)]
pub struct LusailConfig {
    /// Delay threshold (Figure 13 ablation). Default `μ + σ`.
    pub delay_threshold: DelayThreshold,
    /// Scheduling mode (Figure 14 ablation). Default full SAPE.
    pub sape_mode: SapeMode,
    /// How many bindings a bound subquery carries per `VALUES` block.
    pub bound_block_size: usize,
    /// Byte budget per bound-join request: a `VALUES` block is cut early
    /// when its serialized bindings would exceed this, so requests stay
    /// inside real servers' query-length limits (HTTP GET ceilings are
    /// typically 8 KiB; we leave headroom for the query body).
    pub bound_block_max_bytes: usize,
    /// ERH thread-pool size. `None` sizes by core count (min 4).
    pub threads: Option<usize>,
    /// Per-query time limit (the paper uses one hour; benches scale down).
    pub timeout: Option<Duration>,
    /// Cache ASK (source selection) and locality-check results across
    /// queries, as the paper's Figure 12(b,c) "with cache" configuration.
    pub enable_cache: bool,
    /// Also cache per-pattern `COUNT` cardinality probes.
    pub cache_counts: bool,
    /// Treat every join variable whose triple-pattern pair is relevant to
    /// more than one endpoint as global, skipping the instance checks.
    ///
    /// The paper's locality check compares binding sets *within* each
    /// endpoint; when the same instance occurs at two endpoints (§3.3
    /// "Case 2" — e.g. an `owl:sameAs` target referenced from several
    /// datasets), a variable can test local while cross-endpoint
    /// combinations are real answers, and the paper's prescribed handling
    /// ("join partial results from different endpoints, if necessary") is
    /// not constructive. `false` (default) reproduces the paper's
    /// behaviour, which is exact on the benchmark workloads (instances
    /// are endpoint-exclusive there). `true` is sound on arbitrary data
    /// at the cost of more global joins (Lemma 2 guarantees correctness
    /// of the conservative choice).
    pub paranoid_locality: bool,
    /// Whether endpoint failures abort the query or degrade it to a
    /// partial result with warnings.
    pub result_policy: ResultPolicy,
    /// Per-query cap on accounted bytes of materialized intermediate
    /// state (admitted endpoint results and join outputs). `None` (the
    /// default) accounts without enforcing. On exhaustion the query
    /// aborts with [`crate::EngineError::BudgetExceeded`] under
    /// [`ResultPolicy::FailFast`], or truncates with a warning under
    /// [`ResultPolicy::Partial`].
    pub memory_budget: Option<usize>,
    /// Cap on the rows admitted from any single endpoint response — the
    /// engine-side backstop against result bombs. `None` admits
    /// everything.
    pub max_result_rows: Option<usize>,
    /// Result-integrity thresholds: silent-truncation detection
    /// heuristics, the verification trust ramp, and the quarantine
    /// lifecycle (see [`lusail_federation::IntegrityRegistry`]). The
    /// default verifies only on suspicion;
    /// [`IntegrityConfig::paranoid`] cross-checks every response.
    pub integrity: IntegrityConfig,
}

impl Default for LusailConfig {
    fn default() -> Self {
        LusailConfig {
            delay_threshold: DelayThreshold::MuSigma,
            sape_mode: SapeMode::Full,
            bound_block_size: 512,
            bound_block_max_bytes: 4096,
            threads: None,
            timeout: None,
            enable_cache: true,
            cache_counts: true,
            paranoid_locality: false,
            result_policy: ResultPolicy::FailFast,
            memory_budget: None,
            max_result_rows: None,
            integrity: IntegrityConfig::default(),
        }
    }
}

impl LusailConfig {
    /// The configuration used for the Figure 12 "without cache" series.
    pub fn without_cache() -> Self {
        LusailConfig {
            enable_cache: false,
            cache_counts: false,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = LusailConfig::default();
        assert_eq!(c.delay_threshold, DelayThreshold::MuSigma);
        assert_eq!(c.sape_mode, SapeMode::Full);
        assert!(c.enable_cache);
    }

    #[test]
    fn labels() {
        assert_eq!(DelayThreshold::Mu.label(), "mu");
        assert_eq!(DelayThreshold::MuSigma.label(), "mu+sigma");
        assert_eq!(DelayThreshold::Mu2Sigma.label(), "mu+2sigma");
        assert_eq!(DelayThreshold::OutliersOnly.label(), "outliers");
    }
}
