//! Source selection: which endpoints are relevant to each triple pattern.
//!
//! Like FedX and HiBISCuS, Lusail is index-free: it sends one `ASK` query
//! per triple pattern to every endpoint (in parallel via the ERH) and
//! caches the outcome (Section 2 of the paper).

use crate::cache::{pattern_key, QueryCache};
use crate::error::EngineError;
use lusail_federation::{EndpointId, Federation, RequestHandler};
use lusail_sparql::ast::{GraphPattern, Query, TriplePattern};

/// Build the `ASK { tp }` probe for a pattern.
pub fn ask_query(tp: &TriplePattern) -> Query {
    Query::ask(GraphPattern::Bgp(vec![tp.clone()]))
}

/// Select, for each triple pattern, the endpoints that can answer it.
///
/// Returns one source list per input pattern, in input order. When `cache`
/// is `Some`, previously-probed patterns are answered from the cache
/// without touching the network.
pub fn select_sources(
    federation: &Federation,
    handler: &RequestHandler,
    cache: Option<&QueryCache>,
    patterns: &[TriplePattern],
) -> Result<Vec<Vec<EndpointId>>, EngineError> {
    // Resolve cache hits first, then probe the misses in one parallel batch
    // (pattern × endpoint tasks).
    let keys: Vec<String> = patterns.iter().map(pattern_key).collect();
    let mut result: Vec<Option<Vec<EndpointId>>> = keys
        .iter()
        .map(|k| cache.and_then(|c| c.get_sources(k)))
        .collect();

    // Deduplicate misses by key: identical patterns probe once.
    let mut miss_keys: Vec<String> = Vec::new();
    let mut miss_repr: Vec<&TriplePattern> = Vec::new();
    for (i, r) in result.iter().enumerate() {
        if r.is_none() && !miss_keys.contains(&keys[i]) {
            miss_keys.push(keys[i].clone());
            miss_repr.push(&patterns[i]);
        }
    }

    if !miss_repr.is_empty() {
        let tasks: Vec<(usize, EndpointId)> = (0..miss_repr.len())
            .flat_map(|mi| federation.ids().map(move |ep| (mi, ep)))
            .collect();
        let answers = handler.map(tasks.clone(), |(mi, ep)| {
            let q = ask_query(miss_repr[mi]);
            federation.endpoint(ep).ask(&q)
        });
        let mut per_miss: Vec<Vec<EndpointId>> = vec![Vec::new(); miss_repr.len()];
        for ((mi, ep), yes) in tasks.into_iter().zip(answers) {
            if yes? {
                per_miss[mi].push(ep);
            }
        }
        for (mi, key) in miss_keys.iter().enumerate() {
            if let Some(c) = cache {
                c.put_sources(key.clone(), per_miss[mi].clone());
            }
            for (i, r) in result.iter_mut().enumerate() {
                if r.is_none() && &keys[i] == key {
                    *r = Some(per_miss[mi].clone());
                }
            }
        }
    }

    Ok(result
        .into_iter()
        .map(|r| r.expect("all patterns resolved"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::{NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
    use lusail_rdf::{Graph, Term};
    use lusail_sparql::ast::TermPattern;
    use lusail_store::Store;
    use std::sync::Arc;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let slot = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::var(v)
            } else {
                TermPattern::iri(x)
            }
        };
        TriplePattern::new(slot(s), slot(p), slot(o))
    }

    /// ep0 has predicate p, ep1 has q, ep2 has both.
    fn fed() -> Federation {
        let make = |name: &str, preds: &[&str]| {
            let mut g = Graph::new();
            for (i, p) in preds.iter().enumerate() {
                g.add(
                    Term::iri(format!("http://{name}/s{i}")),
                    Term::iri(format!("http://x/{p}")),
                    Term::iri(format!("http://{name}/o{i}")),
                );
            }
            Arc::new(SimulatedEndpoint::new(
                name,
                Store::from_graph(&g),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>
        };
        Federation::new(vec![
            make("ep0", &["p"]),
            make("ep1", &["q"]),
            make("ep2", &["p", "q"]),
        ])
    }

    #[test]
    fn finds_relevant_endpoints() {
        let fed = fed();
        let handler = RequestHandler::new(4);
        let srcs = select_sources(
            &fed,
            &handler,
            None,
            &[tp("?s", "http://x/p", "?o"), tp("?s", "http://x/q", "?o")],
        )
        .unwrap();
        assert_eq!(srcs[0], vec![0, 2]);
        assert_eq!(srcs[1], vec![1, 2]);
    }

    #[test]
    fn cache_avoids_reprobing() {
        let fed = fed();
        let handler = RequestHandler::new(4);
        let cache = QueryCache::new();
        let pats = [tp("?s", "http://x/p", "?o")];
        select_sources(&fed, &handler, Some(&cache), &pats).unwrap();
        let before = fed.total_traffic().requests;
        assert!(before > 0);
        // Same pattern, different variable names → cache hit, no traffic.
        let srcs = select_sources(
            &fed,
            &handler,
            Some(&cache),
            &[tp("?a", "http://x/p", "?b")],
        )
        .unwrap();
        assert_eq!(fed.total_traffic().requests, before);
        assert_eq!(srcs[0], vec![0, 2]);
    }

    #[test]
    fn duplicate_patterns_probe_once() {
        let fed = fed();
        let handler = RequestHandler::new(4);
        let pats = [tp("?s", "http://x/p", "?o"), tp("?a", "http://x/p", "?b")];
        let srcs = select_sources(&fed, &handler, None, &pats).unwrap();
        assert_eq!(srcs[0], srcs[1]);
        // 1 unique pattern × 3 endpoints.
        assert_eq!(fed.total_traffic().requests, 3);
    }

    #[test]
    fn unknown_predicate_has_no_sources() {
        let fed = fed();
        let handler = RequestHandler::new(4);
        let srcs = select_sources(&fed, &handler, None, &[tp("?s", "http://x/zzz", "?o")]).unwrap();
        assert!(srcs[0].is_empty());
    }
}
