//! Source selection: which endpoints are relevant to each triple pattern.
//!
//! Like FedX and HiBISCuS, Lusail is index-free: it sends one `ASK` query
//! per triple pattern to every endpoint (in parallel via the ERH) and
//! caches the outcome (Section 2 of the paper).

use crate::cache::{pattern_key, QueryCache};
use crate::error::EngineError;
use crate::run::RunContext;
use lusail_federation::{EndpointError, EndpointId, Federation, RequestHandler};
use lusail_sparql::ast::{GraphPattern, Query, TriplePattern};

/// Build the `ASK { tp }` probe for a pattern.
pub fn ask_query(tp: &TriplePattern) -> Query {
    Query::ask(GraphPattern::Bgp(vec![tp.clone()]))
}

/// Select, for each triple pattern, the endpoints that can answer it.
///
/// Returns one source list per input pattern, in input order. When `cache`
/// is `Some`, previously-probed patterns are answered from the cache
/// without touching the network.
///
/// Probes respect `ctx`: the deadline bounds each `ASK`, and under the
/// partial policy an unreachable endpoint is treated as irrelevant for
/// the pattern (with a warning) instead of failing the query. Degraded
/// source lists are not cached.
pub fn select_sources(
    federation: &Federation,
    handler: &RequestHandler,
    cache: Option<&QueryCache>,
    patterns: &[TriplePattern],
    ctx: &RunContext,
) -> Result<Vec<Vec<EndpointId>>, EngineError> {
    // Resolve cache hits first, then probe the misses in one parallel batch
    // (pattern × endpoint tasks).
    let keys: Vec<String> = patterns.iter().map(pattern_key).collect();
    let mut result: Vec<Option<Vec<EndpointId>>> = keys
        .iter()
        .map(|k| cache.and_then(|c| c.get_sources(k)))
        .collect();

    // Deduplicate misses by key: identical patterns probe once.
    let mut miss_keys: Vec<String> = Vec::new();
    let mut miss_repr: Vec<&TriplePattern> = Vec::new();
    for (i, r) in result.iter().enumerate() {
        if r.is_none() && !miss_keys.contains(&keys[i]) {
            miss_keys.push(keys[i].clone());
            miss_repr.push(&patterns[i]);
        }
    }

    if !miss_repr.is_empty() {
        let tasks: Vec<(usize, EndpointId)> = (0..miss_repr.len())
            .flat_map(|mi| federation.ids().map(move |ep| (mi, ep)))
            .collect();
        let answers = handler.map_cancellable(
            tasks.clone(),
            ctx.deadline.clone(),
            |_| Err(EndpointError::deadline("source selection")),
            |(mi, ep)| {
                let q = ask_query(miss_repr[mi]);
                federation.endpoint(ep).ask_within(&q, ctx.deadline.clone())
            },
        );
        let mut per_miss: Vec<Vec<EndpointId>> = vec![Vec::new(); miss_repr.len()];
        let mut degraded = vec![false; miss_repr.len()];
        for ((mi, ep), yes) in tasks.into_iter().zip(answers) {
            let what = format!("ASK probe for {}", pattern_key(miss_repr[mi]));
            let (yes, skipped) = ctx.absorb_flagged(&what, false, yes)?;
            degraded[mi] |= skipped;
            if yes {
                per_miss[mi].push(ep);
            }
        }
        for (mi, key) in miss_keys.iter().enumerate() {
            if let Some(c) = cache {
                // A source list computed while an endpoint was down
                // describes the outage, not the data — don't cache it.
                if !degraded[mi] {
                    c.put_sources(key.clone(), per_miss[mi].clone());
                }
            }
            for (i, r) in result.iter_mut().enumerate() {
                if r.is_none() && &keys[i] == key {
                    *r = Some(per_miss[mi].clone());
                }
            }
        }
    }

    Ok(result
        .into_iter()
        .map(|r| r.expect("all patterns resolved"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::{NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
    use lusail_rdf::{Graph, Term};
    use lusail_sparql::ast::TermPattern;
    use lusail_store::Store;
    use std::sync::Arc;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let slot = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::var(v)
            } else {
                TermPattern::iri(x)
            }
        };
        TriplePattern::new(slot(s), slot(p), slot(o))
    }

    /// ep0 has predicate p, ep1 has q, ep2 has both.
    fn fed() -> Federation {
        let make = |name: &str, preds: &[&str]| {
            let mut g = Graph::new();
            for (i, p) in preds.iter().enumerate() {
                g.add(
                    Term::iri(format!("http://{name}/s{i}")),
                    Term::iri(format!("http://x/{p}")),
                    Term::iri(format!("http://{name}/o{i}")),
                );
            }
            Arc::new(SimulatedEndpoint::new(
                name,
                Store::from_graph(&g),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>
        };
        Federation::new(vec![
            make("ep0", &["p"]),
            make("ep1", &["q"]),
            make("ep2", &["p", "q"]),
        ])
    }

    #[test]
    fn finds_relevant_endpoints() {
        let fed = fed();
        let handler = RequestHandler::new(4);
        let srcs = select_sources(
            &fed,
            &handler,
            None,
            &[tp("?s", "http://x/p", "?o"), tp("?s", "http://x/q", "?o")],
            &RunContext::unbounded(),
        )
        .unwrap();
        assert_eq!(srcs[0], vec![0, 2]);
        assert_eq!(srcs[1], vec![1, 2]);
    }

    #[test]
    fn cache_avoids_reprobing() {
        let fed = fed();
        let handler = RequestHandler::new(4);
        let cache = QueryCache::new();
        let pats = [tp("?s", "http://x/p", "?o")];
        select_sources(
            &fed,
            &handler,
            Some(&cache),
            &pats,
            &RunContext::unbounded(),
        )
        .unwrap();
        let before = fed.total_traffic().requests;
        assert!(before > 0);
        // Same pattern, different variable names → cache hit, no traffic.
        let srcs = select_sources(
            &fed,
            &handler,
            Some(&cache),
            &[tp("?a", "http://x/p", "?b")],
            &RunContext::unbounded(),
        )
        .unwrap();
        assert_eq!(fed.total_traffic().requests, before);
        assert_eq!(srcs[0], vec![0, 2]);
    }

    #[test]
    fn duplicate_patterns_probe_once() {
        let fed = fed();
        let handler = RequestHandler::new(4);
        let pats = [tp("?s", "http://x/p", "?o"), tp("?a", "http://x/p", "?b")];
        let srcs = select_sources(&fed, &handler, None, &pats, &RunContext::unbounded()).unwrap();
        assert_eq!(srcs[0], srcs[1]);
        // 1 unique pattern × 3 endpoints.
        assert_eq!(fed.total_traffic().requests, 3);
    }

    #[test]
    fn unknown_predicate_has_no_sources() {
        let fed = fed();
        let handler = RequestHandler::new(4);
        let srcs = select_sources(
            &fed,
            &handler,
            None,
            &[tp("?s", "http://x/zzz", "?o")],
            &RunContext::unbounded(),
        )
        .unwrap();
        assert!(srcs[0].is_empty());
    }
}
