//! Lusail's query-analysis caches, plus the cross-query result cache used
//! by the federation service.
//!
//! The paper (Section 2, Figure 12(b,c)) caches the results of (i) source
//! selection ASK queries and (ii) the locality check queries that determine
//! which triple-pattern pairs cannot be executed locally. We additionally
//! cache per-pattern `COUNT` probes used by SAPE's cost model.
//!
//! Keys are *canonicalized* pattern strings: variables are renamed by
//! position, so `?s ub:advisor ?p` and `?x ub:advisor ?y` share one entry.
//!
//! A one-shot `lusail query` run uses an unbounded, non-expiring
//! [`QueryCache`] (it dies with the engine). `lusail serve --federate`
//! promotes the same cache to a long-lived shared tier via
//! [`CacheLimits`]: every map gets a capacity cap with oldest-first
//! eviction and a TTL so stale endpoint facts (an endpoint re-loaded its
//! data, a COUNT drifted) age out instead of poisoning every future query.
//! The service adds a [`ResultCache`] on top — whole-query text → final
//! solutions — so a repeated hot query costs zero outbound endpoint
//! requests. Degraded (partial) results are never written to either tier:
//! they describe an outage, not the data.

use lusail_federation::EndpointId;
use lusail_rdf::fxhash::FxHashMap;
use lusail_sparql::ast::{TermPattern, TriplePattern};
use lusail_sparql::Relation;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

/// Canonical cache key for a triple pattern: variables renamed by position.
pub fn pattern_key(tp: &TriplePattern) -> String {
    let slot = |s: &TermPattern, tag: &str| match s {
        TermPattern::Var(_) => format!("?{tag}"),
        TermPattern::Term(t) => t.to_string(),
    };
    // Positional renaming must respect repeated variables (`?x p ?x`).
    let mut names: Vec<(String, String)> = Vec::new();
    let mut canon = |s: &TermPattern, fallback: &str| -> String {
        match s {
            TermPattern::Term(_) => slot(s, fallback),
            TermPattern::Var(v) => {
                if let Some((_, name)) = names.iter().find(|(orig, _)| orig == v.name()) {
                    name.clone()
                } else {
                    let name = format!("?v{}", names.len());
                    names.push((v.name().to_string(), name.clone()));
                    name
                }
            }
        }
    };
    let s = canon(&tp.subject, "s");
    let p = canon(&tp.predicate, "p");
    let o = canon(&tp.object, "o");
    format!("{s} {p} {o}")
}

/// Bounds for a long-lived cache tier: an entry-count cap per map (with
/// oldest-first eviction) and a TTL (expired entries read as misses and
/// are dropped). `None` in either slot means unbounded / non-expiring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheLimits {
    /// Maximum entries per map; the oldest entry is evicted beyond it.
    pub capacity: Option<usize>,
    /// Entries older than this read as misses and are removed.
    pub ttl: Option<Duration>,
}

/// Hit/miss/eviction counters for one cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub expirations: u64,
}

/// One cached value with its insertion order and timestamp.
#[derive(Debug)]
struct Stamped<V> {
    value: V,
    stamp: u64,
    inserted: Instant,
}

/// Thread-safe caches shared by all queries run through one engine.
#[derive(Debug, Default)]
pub struct QueryCache {
    limits: CacheLimits,
    /// Monotonic insertion clock driving oldest-first eviction.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
    /// pattern key → relevant endpoints (source selection).
    ask: RwLock<FxHashMap<String, Stamped<Vec<EndpointId>>>>,
    /// (check key, endpoint) → check query returned non-empty there.
    checks: RwLock<FxHashMap<(String, EndpointId), Stamped<bool>>>,
    /// (pattern-with-filters key, endpoint) → COUNT.
    counts: RwLock<FxHashMap<(String, EndpointId), Stamped<usize>>>,
}

impl QueryCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache suitable as a long-lived shared tier: capped and expiring.
    pub fn with_limits(limits: CacheLimits) -> Self {
        QueryCache {
            limits,
            ..Self::default()
        }
    }

    /// A cache capped at `capacity` entries per map, non-expiring.
    pub fn bounded(capacity: usize) -> Self {
        Self::with_limits(CacheLimits {
            capacity: Some(capacity),
            ttl: None,
        })
    }

    /// The configured bounds.
    pub fn limits(&self) -> CacheLimits {
        self.limits
    }

    fn expired(&self, inserted: Instant) -> bool {
        match self.limits.ttl {
            Some(ttl) => inserted.elapsed() > ttl,
            None => false,
        }
    }

    fn lookup<K, V>(&self, map: &RwLock<FxHashMap<K, Stamped<V>>>, key: &K) -> Option<V>
    where
        K: Eq + Hash + Clone,
        V: Clone,
    {
        let (value, stale) = {
            let guard = map.read().expect("cache lock poisoned");
            match guard.get(key) {
                None => (None, false),
                Some(entry) if self.expired(entry.inserted) => (None, true),
                Some(entry) => (Some(entry.value.clone()), false),
            }
        };
        if stale {
            // Drop the expired entry so the map doesn't fill with corpses;
            // re-check under the write lock (a writer may have refreshed it).
            let mut guard = map.write().expect("cache lock poisoned");
            if guard.get(key).is_some_and(|e| self.expired(e.inserted)) {
                guard.remove(key);
                self.expirations.fetch_add(1, Ordering::Relaxed);
            }
        }
        match value {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store<K, V>(&self, map: &RwLock<FxHashMap<K, Stamped<V>>>, key: K, value: V)
    where
        K: Eq + Hash + Clone,
    {
        let mut guard = map.write().expect("cache lock poisoned");
        if let Some(cap) = self.limits.capacity {
            if !guard.contains_key(&key) && guard.len() >= cap.max(1) {
                // Oldest-first eviction: cheap, deterministic, and good
                // enough for analysis facts that all cost about the same
                // to recompute.
                if let Some(oldest) = guard
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| k.clone())
                {
                    guard.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        guard.insert(
            key,
            Stamped {
                value,
                stamp: self.clock.fetch_add(1, Ordering::Relaxed),
                inserted: Instant::now(),
            },
        );
    }

    /// Cached relevant endpoints for a pattern.
    pub fn get_sources(&self, key: &str) -> Option<Vec<EndpointId>> {
        self.lookup(&self.ask, &key.to_string())
    }

    /// Store relevant endpoints for a pattern.
    pub fn put_sources(&self, key: String, sources: Vec<EndpointId>) {
        self.store(&self.ask, key, sources);
    }

    /// Cached locality-check outcome at one endpoint.
    pub fn get_check(&self, key: &str, ep: EndpointId) -> Option<bool> {
        self.lookup(&self.checks, &(key.to_string(), ep))
    }

    /// Store a locality-check outcome.
    pub fn put_check(&self, key: String, ep: EndpointId, nonempty: bool) {
        self.store(&self.checks, (key, ep), nonempty);
    }

    /// Cached COUNT probe.
    pub fn get_count(&self, key: &str, ep: EndpointId) -> Option<usize> {
        self.lookup(&self.counts, &(key.to_string(), ep))
    }

    /// Store a COUNT probe.
    pub fn put_count(&self, key: String, ep: EndpointId, count: usize) {
        self.store(&self.counts, (key, ep), count);
    }

    /// Drop everything (explicit invalidation; also used between benchmark
    /// configurations).
    pub fn clear(&self) {
        self.ask.write().expect("cache lock poisoned").clear();
        self.checks.write().expect("cache lock poisoned").clear();
        self.counts.write().expect("cache lock poisoned").clear();
    }

    /// Entry counts, for diagnostics: (ask, checks, counts).
    pub fn sizes(&self) -> (usize, usize, usize) {
        (
            self.ask.read().expect("cache lock poisoned").len(),
            self.checks.read().expect("cache lock poisoned").len(),
            self.counts.read().expect("cache lock poisoned").len(),
        )
    }

    /// Lifetime hit/miss/eviction counters across all three maps.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
        }
    }
}

/// Counters for a [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Entries currently cached.
    pub entries: usize,
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub expirations: u64,
    /// Explicit `invalidate()` calls.
    pub invalidations: u64,
}

#[derive(Debug, Default)]
struct ResultInner {
    map: FxHashMap<String, Stamped<Relation>>,
    clock: u64,
    stats: ResultCacheStats,
}

/// A whole-query result cache: normalized query text → final solutions.
///
/// This is the hot-query tier of `lusail serve --federate`: a hit answers
/// the client with **zero** outbound endpoint requests. Entries expire
/// after the configured TTL, the map is capped with least-recently-used
/// eviction (a hit refreshes recency), and [`ResultCache::invalidate`]
/// drops everything at once (wired to `POST /cache/invalidate`).
///
/// Callers must never insert degraded results — a partial answer cached
/// once would keep answering long after the failed endpoint recovered.
/// The federation service enforces this by only caching warning-free runs.
#[derive(Debug)]
pub struct ResultCache {
    limits: CacheLimits,
    inner: Mutex<ResultInner>,
}

impl ResultCache {
    pub fn new(limits: CacheLimits) -> Self {
        ResultCache {
            limits,
            inner: Mutex::new(ResultInner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ResultInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The cached solutions for `key`, if present and fresh.
    pub fn get(&self, key: &str) -> Option<Relation> {
        let mut inner = self.lock();
        let expired = match inner.map.get(key) {
            None => {
                inner.stats.misses += 1;
                return None;
            }
            Some(e) => self
                .limits
                .ttl
                .is_some_and(|ttl| e.inserted.elapsed() > ttl),
        };
        if expired {
            inner.map.remove(key);
            inner.stats.expirations += 1;
            inner.stats.misses += 1;
            return None;
        }
        inner.clock += 1;
        let stamp = inner.clock;
        let entry = inner.map.get_mut(key).expect("checked above");
        entry.stamp = stamp; // LRU: a hit refreshes recency
        let value = entry.value.clone();
        inner.stats.hits += 1;
        Some(value)
    }

    /// Cache `rel` under `key`, evicting the least-recently-used entry
    /// beyond capacity. The caller is responsible for never passing a
    /// degraded (partial / truncated) result.
    pub fn put(&self, key: String, rel: Relation) {
        let mut inner = self.lock();
        if let Some(cap) = self.limits.capacity {
            if !inner.map.contains_key(&key) && inner.map.len() >= cap.max(1) {
                if let Some(oldest) = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.stamp)
                    .map(|(k, _)| k.clone())
                {
                    inner.map.remove(&oldest);
                    inner.stats.evictions += 1;
                }
            }
        }
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(
            key,
            Stamped {
                value: rel,
                stamp,
                inserted: Instant::now(),
            },
        );
        inner.stats.insertions += 1;
    }

    /// Drop every cached result (explicit invalidation).
    pub fn invalidate(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.stats.invalidations += 1;
    }

    /// Counters plus current occupancy.
    pub fn stats(&self) -> ResultCacheStats {
        let inner = self.lock();
        ResultCacheStats {
            entries: inner.map.len(),
            ..inner.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::Term;
    use lusail_sparql::ast::TermPattern;
    use lusail_sparql::Variable;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let slot = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::var(v)
            } else {
                TermPattern::iri(x)
            }
        };
        TriplePattern::new(slot(s), slot(p), slot(o))
    }

    #[test]
    fn keys_canonicalize_variable_names() {
        assert_eq!(
            pattern_key(&tp("?s", "http://p", "?o")),
            pattern_key(&tp("?x", "http://p", "?y"))
        );
        assert_ne!(
            pattern_key(&tp("?s", "http://p", "?o")),
            pattern_key(&tp("?s", "http://q", "?o"))
        );
    }

    #[test]
    fn keys_respect_repeated_variables() {
        assert_ne!(
            pattern_key(&tp("?x", "http://p", "?x")),
            pattern_key(&tp("?x", "http://p", "?y"))
        );
        assert_eq!(
            pattern_key(&tp("?x", "http://p", "?x")),
            pattern_key(&tp("?z", "http://p", "?z"))
        );
    }

    #[test]
    fn cache_roundtrip() {
        let c = QueryCache::new();
        assert_eq!(c.get_sources("k"), None);
        c.put_sources("k".into(), vec![0, 2]);
        assert_eq!(c.get_sources("k"), Some(vec![0, 2]));
        c.put_check("chk".into(), 1, true);
        assert_eq!(c.get_check("chk", 1), Some(true));
        assert_eq!(c.get_check("chk", 0), None);
        c.put_count("cnt".into(), 0, 42);
        assert_eq!(c.get_count("cnt", 0), Some(42));
        assert_eq!(c.sizes(), (1, 1, 1));
        let stats = c.stats();
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
        c.clear();
        assert_eq!(c.sizes(), (0, 0, 0));
    }

    #[test]
    fn bounded_cache_evicts_oldest_per_map() {
        let c = QueryCache::bounded(3);
        for i in 0..5 {
            c.put_sources(format!("k{i}"), vec![i]);
        }
        // Capacity holds and the *oldest* entries (k0, k1) were evicted.
        assert_eq!(c.sizes(), (3, 0, 0));
        assert_eq!(c.get_sources("k0"), None);
        assert_eq!(c.get_sources("k1"), None);
        assert_eq!(c.get_sources("k4"), Some(vec![4]));
        assert_eq!(c.stats().evictions, 2);

        // Each map is capped independently: filling counts does not evict
        // the surviving sources.
        for i in 0..4 {
            c.put_count(format!("c{i}"), 0, i);
        }
        assert_eq!(c.sizes(), (3, 0, 3));
        assert_eq!(c.get_sources("k4"), Some(vec![4]));

        // Re-inserting an existing key is a refresh, not an eviction.
        let evictions_before = c.stats().evictions;
        c.put_sources("k4".into(), vec![9]);
        assert_eq!(c.stats().evictions, evictions_before);
        assert_eq!(c.get_sources("k4"), Some(vec![9]));
    }

    #[test]
    fn ttl_expires_entries_as_misses() {
        let c = QueryCache::with_limits(CacheLimits {
            capacity: None,
            ttl: Some(Duration::ZERO),
        });
        c.put_sources("k".into(), vec![1]);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(c.get_sources("k"), None, "expired entry must be a miss");
        assert_eq!(c.sizes().0, 0, "expired entry must be dropped");
        assert_eq!(c.stats().expirations, 1);
    }

    fn rel(n: usize) -> Relation {
        let mut r = Relation::new(vec![Variable::new("x")]);
        for i in 0..n {
            r.push(vec![Some(Term::iri(format!("http://x/{i}")))]);
        }
        r
    }

    #[test]
    fn result_cache_roundtrip_ttl_and_invalidation() {
        let c = ResultCache::new(CacheLimits {
            capacity: Some(8),
            ttl: Some(Duration::from_secs(300)),
        });
        assert!(c.get("q1").is_none());
        c.put("q1".into(), rel(3));
        assert_eq!(c.get("q1").unwrap().len(), 3);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));

        c.invalidate();
        assert!(c.get("q1").is_none());
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.invalidations, 1);

        // Zero TTL: everything is stale on arrival.
        let stale = ResultCache::new(CacheLimits {
            capacity: None,
            ttl: Some(Duration::ZERO),
        });
        stale.put("q".into(), rel(1));
        std::thread::sleep(Duration::from_millis(2));
        assert!(stale.get("q").is_none());
        assert_eq!(stale.stats().expirations, 1);
    }

    #[test]
    fn result_cache_evicts_least_recently_used() {
        let c = ResultCache::new(CacheLimits {
            capacity: Some(2),
            ttl: None,
        });
        c.put("a".into(), rel(1));
        c.put("b".into(), rel(2));
        // Touch "a" so "b" becomes the LRU entry.
        assert!(c.get("a").is_some());
        c.put("c".into(), rel(3));
        assert!(c.get("b").is_none(), "LRU entry must be evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
        assert_eq!(c.stats().evictions, 1);
    }
}
