//! Lusail's query-analysis caches.
//!
//! The paper (Section 2, Figure 12(b,c)) caches the results of (i) source
//! selection ASK queries and (ii) the locality check queries that determine
//! which triple-pattern pairs cannot be executed locally. We additionally
//! cache per-pattern `COUNT` probes used by SAPE's cost model.
//!
//! Keys are *canonicalized* pattern strings: variables are renamed by
//! position, so `?s ub:advisor ?p` and `?x ub:advisor ?y` share one entry.

use lusail_federation::EndpointId;
use lusail_rdf::fxhash::FxHashMap;
use lusail_sparql::ast::{TermPattern, TriplePattern};
use std::sync::RwLock;

/// Canonical cache key for a triple pattern: variables renamed by position.
pub fn pattern_key(tp: &TriplePattern) -> String {
    let slot = |s: &TermPattern, tag: &str| match s {
        TermPattern::Var(_) => format!("?{tag}"),
        TermPattern::Term(t) => t.to_string(),
    };
    // Positional renaming must respect repeated variables (`?x p ?x`).
    let mut names: Vec<(String, String)> = Vec::new();
    let mut canon = |s: &TermPattern, fallback: &str| -> String {
        match s {
            TermPattern::Term(_) => slot(s, fallback),
            TermPattern::Var(v) => {
                if let Some((_, name)) = names.iter().find(|(orig, _)| orig == v.name()) {
                    name.clone()
                } else {
                    let name = format!("?v{}", names.len());
                    names.push((v.name().to_string(), name.clone()));
                    name
                }
            }
        }
    };
    let s = canon(&tp.subject, "s");
    let p = canon(&tp.predicate, "p");
    let o = canon(&tp.object, "o");
    format!("{s} {p} {o}")
}

/// Thread-safe caches shared by all queries run through one engine.
#[derive(Debug, Default)]
pub struct QueryCache {
    /// pattern key → relevant endpoints (source selection).
    ask: RwLock<FxHashMap<String, Vec<EndpointId>>>,
    /// (check key, endpoint) → check query returned non-empty there.
    checks: RwLock<FxHashMap<(String, EndpointId), bool>>,
    /// (pattern-with-filters key, endpoint) → COUNT.
    counts: RwLock<FxHashMap<(String, EndpointId), usize>>,
}

impl QueryCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached relevant endpoints for a pattern.
    pub fn get_sources(&self, key: &str) -> Option<Vec<EndpointId>> {
        self.ask
            .read()
            .expect("cache lock poisoned")
            .get(key)
            .cloned()
    }

    /// Store relevant endpoints for a pattern.
    pub fn put_sources(&self, key: String, sources: Vec<EndpointId>) {
        self.ask
            .write()
            .expect("cache lock poisoned")
            .insert(key, sources);
    }

    /// Cached locality-check outcome at one endpoint.
    pub fn get_check(&self, key: &str, ep: EndpointId) -> Option<bool> {
        self.checks
            .read()
            .expect("cache lock poisoned")
            .get(&(key.to_string(), ep))
            .copied()
    }

    /// Store a locality-check outcome.
    pub fn put_check(&self, key: String, ep: EndpointId, nonempty: bool) {
        self.checks
            .write()
            .expect("cache lock poisoned")
            .insert((key, ep), nonempty);
    }

    /// Cached COUNT probe.
    pub fn get_count(&self, key: &str, ep: EndpointId) -> Option<usize> {
        self.counts
            .read()
            .expect("cache lock poisoned")
            .get(&(key.to_string(), ep))
            .copied()
    }

    /// Store a COUNT probe.
    pub fn put_count(&self, key: String, ep: EndpointId, count: usize) {
        self.counts
            .write()
            .expect("cache lock poisoned")
            .insert((key, ep), count);
    }

    /// Drop everything (used between benchmark configurations).
    pub fn clear(&self) {
        self.ask.write().expect("cache lock poisoned").clear();
        self.checks.write().expect("cache lock poisoned").clear();
        self.counts.write().expect("cache lock poisoned").clear();
    }

    /// Entry counts, for diagnostics: (ask, checks, counts).
    pub fn sizes(&self) -> (usize, usize, usize) {
        (
            self.ask.read().expect("cache lock poisoned").len(),
            self.checks.read().expect("cache lock poisoned").len(),
            self.counts.read().expect("cache lock poisoned").len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_sparql::ast::TermPattern;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let slot = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::var(v)
            } else {
                TermPattern::iri(x)
            }
        };
        TriplePattern::new(slot(s), slot(p), slot(o))
    }

    #[test]
    fn keys_canonicalize_variable_names() {
        assert_eq!(
            pattern_key(&tp("?s", "http://p", "?o")),
            pattern_key(&tp("?x", "http://p", "?y"))
        );
        assert_ne!(
            pattern_key(&tp("?s", "http://p", "?o")),
            pattern_key(&tp("?s", "http://q", "?o"))
        );
    }

    #[test]
    fn keys_respect_repeated_variables() {
        assert_ne!(
            pattern_key(&tp("?x", "http://p", "?x")),
            pattern_key(&tp("?x", "http://p", "?y"))
        );
        assert_eq!(
            pattern_key(&tp("?x", "http://p", "?x")),
            pattern_key(&tp("?z", "http://p", "?z"))
        );
    }

    #[test]
    fn cache_roundtrip() {
        let c = QueryCache::new();
        assert_eq!(c.get_sources("k"), None);
        c.put_sources("k".into(), vec![0, 2]);
        assert_eq!(c.get_sources("k"), Some(vec![0, 2]));
        c.put_check("chk".into(), 1, true);
        assert_eq!(c.get_check("chk", 1), Some(true));
        assert_eq!(c.get_check("chk", 0), None);
        c.put_count("cnt".into(), 0, 42);
        assert_eq!(c.get_count("cnt", 0), Some(42));
        assert_eq!(c.sizes(), (1, 1, 1));
        c.clear();
        assert_eq!(c.sizes(), (0, 0, 0));
    }
}
