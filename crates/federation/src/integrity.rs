//! Result-integrity tracking: the bookkeeping behind silent-truncation
//! detection and lying-endpoint quarantine.
//!
//! Public SPARQL endpoints routinely cap result sets (DBpedia's 10 000-row
//! limit is the canonical example) and misreport `COUNT`s while answering
//! `200 OK`, so a federated join silently computes over a prefix. The
//! breaker/partial/budget machinery defends against endpoints that *fail*;
//! this module is the ledger for endpoints that *lie*.
//!
//! The registry tracks, per endpoint name:
//!
//! * a **learned cap** — the same exact row count repeated across plain
//!   `SELECT` responses, or a suspiciously round count (≥ `round_floor`
//!   and divisible by `round_modulus`), both classic truncation tells;
//! * a **trust ramp** — until `trust_after` consecutive verified-clean
//!   responses, every response is cross-checked against a fresh
//!   `COUNT(*)` probe (`trust_after = 0`, the default, trusts immediately
//!   and relies on the cheap heuristics alone);
//! * a **watch flag** — once an endpoint has been caught truncating, all
//!   its subsequent responses are verified;
//! * **divergence strikes** — a verification whose `COUNT` claim cannot
//!   be reconciled with the rows actually deliverable (even after
//!   exhaustive paging) is a strike; `quarantine_after` strikes enter the
//!   endpoint into [quarantine](QuarantineTransition), and
//!   `rehabilitate_after` consecutive clean verifications exit it.
//!
//! The registry is pure bookkeeping: it never talks to endpoints. The
//! engine consults it per response, runs the verification probes and the
//! `ORDER BY`+`LIMIT/OFFSET` recovery paging, and feeds the outcomes
//! back. Quarantine transitions are returned to the caller so it can
//! mirror them into [`crate::EndpointHealth::set_quarantined`], which is
//! what demotes the endpoint in replica ranking.

use lusail_rdf::fxhash::FxHashMap;
use std::sync::Mutex;

/// Thresholds for the detection heuristics and the quarantine lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityConfig {
    /// Consecutive plain-`SELECT` responses with the same exact row count
    /// (at or above [`learned_cap_floor`](Self::learned_cap_floor))
    /// before that count is treated as the endpoint's silent cap.
    pub repeat_threshold: u32,
    /// Row counts below this never participate in cap learning — small
    /// results legitimately repeat.
    pub learned_cap_floor: usize,
    /// Row counts at or above this that are divisible by
    /// [`round_modulus`](Self::round_modulus) are treated as suspicious
    /// (the DBpedia-style `10_000` tell).
    pub round_floor: usize,
    /// Divisor that makes a large row count "suspiciously round".
    pub round_modulus: usize,
    /// Divergence strikes before the endpoint enters quarantine.
    pub quarantine_after: u32,
    /// Consecutive verified-clean responses that exit quarantine.
    pub rehabilitate_after: u32,
    /// Consecutive verified-clean responses before an endpoint is
    /// *trusted* and only the cheap heuristics trigger verification. `0`
    /// (the default) trusts immediately; the chaos suites use
    /// [`paranoid`](Self::paranoid) to verify everything.
    pub trust_after: u32,
    /// Hard cap on recovery pages fetched for a single response.
    pub max_pages: usize,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            repeat_threshold: 3,
            learned_cap_floor: 64,
            round_floor: 1000,
            round_modulus: 1000,
            quarantine_after: 2,
            rehabilitate_after: 3,
            trust_after: 0,
            max_pages: 512,
        }
    }
}

impl IntegrityConfig {
    /// Verify every response against a `COUNT(*)` probe, forever. Sound
    /// against any lying endpoint at the cost of one probe per response;
    /// used by the integrity-chaos suite, where byte-identical recovery
    /// must hold for *every* truncated response, not just eventual ones.
    pub fn paranoid() -> Self {
        IntegrityConfig {
            trust_after: u32::MAX,
            learned_cap_floor: 2,
            repeat_threshold: 2,
            ..IntegrityConfig::default()
        }
    }
}

/// What a strike or a clean verification did to the endpoint's
/// quarantine membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineTransition {
    /// No membership change.
    None,
    /// The endpoint just crossed the strike threshold and is now
    /// quarantined.
    Entered,
    /// The endpoint just completed its rehabilitation streak and left
    /// quarantine.
    Exited,
}

/// Point-in-time counters for one endpoint, as surfaced by
/// `lusail query --stats` (`# integrity`) and `GET /stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntegritySnapshot {
    /// `COUNT(*)` verification probes issued for this endpoint.
    pub verifications: u64,
    /// Responses confirmed truncated (advertised or claim > delivered).
    pub truncations_detected: u64,
    /// Recovery pages fetched.
    pub pages_fetched: u64,
    /// Rows recovered by paging beyond the originally delivered prefix.
    pub rows_recovered: u64,
    /// Verifications whose claim could not be reconciled with the rows
    /// deliverable even after paging.
    pub count_divergences: u64,
    /// Times the endpoint entered quarantine.
    pub quarantine_entries: u64,
    /// Times the endpoint was rehabilitated out of quarantine.
    pub quarantine_exits: u64,
    /// Whether the endpoint is quarantined right now.
    pub quarantined: bool,
    /// The silent cap learned from repeated exact-N responses, if any.
    pub learned_cap: Option<usize>,
}

impl IntegritySnapshot {
    /// True when nothing integrity-related ever happened — such endpoints
    /// are omitted from the stats surfaces.
    pub fn is_idle(&self) -> bool {
        *self == IntegritySnapshot::default()
    }
}

#[derive(Debug, Default)]
struct EndpointIntegrity {
    snapshot: IntegritySnapshot,
    /// (row count, consecutive occurrences) for cap learning.
    repeat: Option<(usize, u32)>,
    /// Verify every response from this endpoint (set after the first
    /// confirmed truncation or divergence).
    watch: bool,
    strikes: u32,
    clean_streak: u32,
}

/// Per-endpoint integrity state, keyed by endpoint name. Shared by the
/// engine across queries — caps and quarantine are properties of the
/// endpoint, not of any one query.
#[derive(Debug)]
pub struct IntegrityRegistry {
    config: IntegrityConfig,
    endpoints: Mutex<FxHashMap<String, EndpointIntegrity>>,
}

impl IntegrityRegistry {
    pub fn new(config: IntegrityConfig) -> Self {
        IntegrityRegistry {
            config,
            endpoints: Mutex::new(FxHashMap::default()),
        }
    }

    pub fn config(&self) -> &IntegrityConfig {
        &self.config
    }

    fn with<T>(
        &self,
        endpoint: &str,
        f: impl FnOnce(&IntegrityConfig, &mut EndpointIntegrity) -> T,
    ) -> T {
        let mut map = self.endpoints.lock().expect("integrity registry poisoned");
        let entry = map.entry(endpoint.to_string()).or_default();
        f(&self.config, entry)
    }

    /// Record the row count of an unpaged plain-`SELECT` response and
    /// report whether the cheap heuristics find it suspicious: it matches
    /// the learned cap, it is the `repeat_threshold`-th consecutive
    /// response with this exact count, or it is suspiciously round.
    pub fn observe_rows(&self, endpoint: &str, rows: usize) -> bool {
        self.with(endpoint, |cfg, e| {
            if rows >= cfg.learned_cap_floor {
                e.repeat = match e.repeat {
                    Some((n, k)) if n == rows => Some((n, k + 1)),
                    _ => Some((rows, 1)),
                };
                if let Some((n, k)) = e.repeat {
                    if k >= cfg.repeat_threshold {
                        e.snapshot.learned_cap = Some(n);
                    }
                }
            }
            let repeated =
                matches!(e.repeat, Some((n, k)) if n == rows && k >= cfg.repeat_threshold);
            let capped = e.snapshot.learned_cap == Some(rows);
            let round = rows >= cfg.round_floor && rows % cfg.round_modulus == 0;
            capped || repeated || round
        })
    }

    /// Whether this endpoint's responses must be `COUNT`-verified
    /// regardless of the cheap heuristics: quarantined, watched, or not
    /// yet through the trust ramp.
    pub fn needs_verification(&self, endpoint: &str) -> bool {
        self.with(endpoint, |cfg, e| {
            e.snapshot.quarantined || e.watch || e.clean_streak < cfg.trust_after
        })
    }

    /// Count one verification probe issued.
    pub fn record_verification(&self, endpoint: &str) {
        self.with(endpoint, |_, e| e.snapshot.verifications += 1);
    }

    /// A verification reconciled: claim matched delivery. Advances the
    /// trust ramp and, inside quarantine, the rehabilitation streak.
    pub fn record_clean(&self, endpoint: &str) -> QuarantineTransition {
        self.with(endpoint, |cfg, e| {
            e.clean_streak = e.clean_streak.saturating_add(1);
            if e.snapshot.quarantined && e.clean_streak >= cfg.rehabilitate_after {
                e.snapshot.quarantined = false;
                e.snapshot.quarantine_exits += 1;
                e.strikes = 0;
                QuarantineTransition::Exited
            } else {
                QuarantineTransition::None
            }
        })
    }

    /// A response was confirmed truncated (advertised by the server or
    /// `COUNT` claim above delivery). Puts the endpoint on watch.
    pub fn record_truncation(&self, endpoint: &str) {
        self.with(endpoint, |_, e| {
            e.snapshot.truncations_detected += 1;
            e.watch = true;
            e.clean_streak = 0;
        });
    }

    /// Recovery paging fetched `pages` pages and recovered `rows` rows
    /// beyond the originally delivered prefix.
    pub fn record_recovery(&self, endpoint: &str, pages: u64, rows: u64) {
        self.with(endpoint, |_, e| {
            e.snapshot.pages_fetched += pages;
            e.snapshot.rows_recovered += rows;
        });
    }

    /// A verification could not be reconciled: the endpoint claimed
    /// `claimed` rows but only `delivered` were obtainable even after
    /// paging. One strike; enough strikes enter quarantine.
    pub fn record_divergence(
        &self,
        endpoint: &str,
        _claimed: usize,
        _delivered: usize,
    ) -> QuarantineTransition {
        self.with(endpoint, |cfg, e| {
            e.snapshot.count_divergences += 1;
            e.strikes = e.strikes.saturating_add(1);
            e.clean_streak = 0;
            e.watch = true;
            if !e.snapshot.quarantined && e.strikes >= cfg.quarantine_after {
                e.snapshot.quarantined = true;
                e.snapshot.quarantine_entries += 1;
                QuarantineTransition::Entered
            } else {
                QuarantineTransition::None
            }
        })
    }

    pub fn is_quarantined(&self, endpoint: &str) -> bool {
        self.with(endpoint, |_, e| e.snapshot.quarantined)
    }

    pub fn learned_cap(&self, endpoint: &str) -> Option<usize> {
        self.with(endpoint, |_, e| e.snapshot.learned_cap)
    }

    /// All endpoints with any integrity activity, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, IntegritySnapshot)> {
        let map = self.endpoints.lock().expect("integrity registry poisoned");
        let mut out: Vec<(String, IntegritySnapshot)> = map
            .iter()
            .filter(|(_, e)| !e.snapshot.is_idle())
            .map(|(name, e)| (name.clone(), e.snapshot.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl Default for IntegrityRegistry {
    fn default() -> Self {
        IntegrityRegistry::new(IntegrityConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_exact_count_learns_a_cap() {
        let reg = IntegrityRegistry::default();
        assert!(!reg.observe_rows("ep", 10_000 - 3));
        assert!(!reg.observe_rows("ep", 9997)); // second consecutive 9997
        assert!(reg.observe_rows("ep", 9997)); // third: cap learned
        assert_eq!(reg.learned_cap("ep"), Some(9997));
        // Any later response at the learned cap is suspicious outright.
        assert!(!reg.observe_rows("ep", 12));
        assert!(reg.observe_rows("ep", 9997));
    }

    #[test]
    fn small_counts_never_learn_caps() {
        let reg = IntegrityRegistry::default();
        for _ in 0..10 {
            assert!(!reg.observe_rows("ep", 3));
        }
        assert_eq!(reg.learned_cap("ep"), None);
    }

    #[test]
    fn round_counts_are_suspicious() {
        let reg = IntegrityRegistry::default();
        assert!(reg.observe_rows("ep", 10_000));
        assert!(!reg.observe_rows("ep", 10_001));
        assert!(!reg.observe_rows("ep", 500)); // below round_floor
    }

    #[test]
    fn quarantine_lifecycle() {
        let reg = IntegrityRegistry::default();
        assert_eq!(
            reg.record_divergence("ep", 100, 5),
            QuarantineTransition::None
        );
        assert!(!reg.is_quarantined("ep"));
        assert_eq!(
            reg.record_divergence("ep", 100, 5),
            QuarantineTransition::Entered
        );
        assert!(reg.is_quarantined("ep"));
        assert!(reg.needs_verification("ep"));
        // Rehabilitation: three consecutive clean verifications.
        assert_eq!(reg.record_clean("ep"), QuarantineTransition::None);
        assert_eq!(reg.record_clean("ep"), QuarantineTransition::None);
        assert_eq!(reg.record_clean("ep"), QuarantineTransition::Exited);
        assert!(!reg.is_quarantined("ep"));
        let snap = &reg.snapshot()[0].1;
        assert_eq!(snap.quarantine_entries, 1);
        assert_eq!(snap.quarantine_exits, 1);
        assert_eq!(snap.count_divergences, 2);
    }

    #[test]
    fn divergence_resets_rehabilitation_streak() {
        let reg = IntegrityRegistry::default();
        reg.record_divergence("ep", 10, 1);
        reg.record_divergence("ep", 10, 1);
        assert!(reg.is_quarantined("ep"));
        reg.record_clean("ep");
        reg.record_clean("ep");
        reg.record_divergence("ep", 10, 1);
        reg.record_clean("ep");
        reg.record_clean("ep");
        assert!(
            reg.is_quarantined("ep"),
            "streak must restart after a strike"
        );
        assert_eq!(reg.record_clean("ep"), QuarantineTransition::Exited);
    }

    #[test]
    fn trust_ramp_forces_verification_until_clean_streak() {
        let cfg = IntegrityConfig {
            trust_after: 2,
            ..IntegrityConfig::default()
        };
        let reg = IntegrityRegistry::new(cfg);
        assert!(reg.needs_verification("ep"));
        reg.record_clean("ep");
        assert!(reg.needs_verification("ep"));
        reg.record_clean("ep");
        assert!(!reg.needs_verification("ep"));
        // A confirmed truncation puts the endpoint back on watch forever.
        reg.record_truncation("ep");
        assert!(reg.needs_verification("ep"));
    }

    #[test]
    fn paranoid_never_trusts() {
        let reg = IntegrityRegistry::new(IntegrityConfig::paranoid());
        for _ in 0..100 {
            reg.record_clean("ep");
        }
        assert!(reg.needs_verification("ep"));
    }

    #[test]
    fn snapshot_skips_idle_endpoints_and_sorts() {
        let reg = IntegrityRegistry::default();
        reg.needs_verification("idle"); // creates the entry, no activity
        reg.record_truncation("b");
        reg.record_recovery("b", 4, 120);
        reg.record_verification("a");
        let snap = reg.snapshot();
        assert_eq!(
            snap.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(snap[1].1.pages_fetched, 4);
        assert_eq!(snap[1].1.rows_recovered, 120);
    }
}
