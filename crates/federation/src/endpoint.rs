//! SPARQL endpoints: the trait all federated engines program against, and
//! the simulated implementation used throughout the benchmarks.

use crate::cancel::CancelReason;
use crate::erh::{Admission, BreakerConfig, Deadline, EndpointHealth, HealthSnapshot};
use crate::network::{NetworkProfile, RequestCounters, TrafficSnapshot};
use lusail_sparql::ast::Query;
use lusail_sparql::solution::Relation;
use lusail_store::eval::QueryResult;
use lusail_store::{Evaluator, Store, StoreStats};
use std::time::Duration;

/// A dense endpoint identifier within one [`Federation`](crate::Federation).
pub type EndpointId = usize;

/// How an endpoint request failed — the distinction drives both the
/// circuit breaker (only transport failures trip it) and the
/// partial-results policy (only transport/open-circuit failures may be
/// absorbed into warnings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Transport-level trouble: connect/read failures, 5xx responses,
    /// dropped connections. Retryable, and counts against the breaker.
    Transport,
    /// The server rejected this specific request (size limits, malformed
    /// query or results, 4xx). Retrying the same request cannot help, and
    /// the endpoint itself is healthy — never absorbed, never breaks.
    Rejected,
    /// Failed fast because the endpoint's circuit breaker is open.
    CircuitOpen,
    /// The query-level [`Deadline`] expired before or while the request
    /// ran. Maps to a query timeout, not an endpoint fault.
    Deadline,
    /// The query's [`CancelToken`](crate::cancel::CancelToken) tripped:
    /// the client disconnected, an operator cancelled it, the watchdog
    /// reaped it, or the server is draining. Like `Deadline`, this is a
    /// query-level outcome — never retried, never absorbed into partial
    /// results, and never counted against the endpoint's breaker.
    Cancelled,
    /// A result-integrity violation: the endpoint answered `200 OK` but
    /// its `COUNT` claims cannot be reconciled with the rows it actually
    /// delivers (even after recovery paging). The endpoint is *up* — the
    /// breaker is untouched — but its answers are wrong, so this is never
    /// skippable: silently joining a lying endpoint's prefix is exactly
    /// the failure the integrity layer exists to prevent.
    Integrity,
}

/// A failed endpoint request — the HTTP-level errors a real federation
/// sees (the paper's Table 2 records FedX failing with runtime exceptions
/// and zero-results errors against real endpoints).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndpointError {
    /// The endpoint that failed.
    pub endpoint: String,
    /// What went wrong (e.g. "request exceeds 8192-byte limit").
    pub message: String,
    /// The failure class (see [`FailureKind`]).
    pub kind: FailureKind,
}

impl EndpointError {
    /// A transport-level failure (retryable; trips the breaker).
    pub fn transport(endpoint: impl Into<String>, message: impl Into<String>) -> Self {
        EndpointError {
            endpoint: endpoint.into(),
            message: message.into(),
            kind: FailureKind::Transport,
        }
    }

    /// A request the server rejected (not retryable).
    pub fn rejected(endpoint: impl Into<String>, message: impl Into<String>) -> Self {
        EndpointError {
            endpoint: endpoint.into(),
            message: message.into(),
            kind: FailureKind::Rejected,
        }
    }

    /// A fast failure from an open circuit breaker.
    pub fn circuit_open(endpoint: impl Into<String>, retry_in: Duration) -> Self {
        EndpointError {
            endpoint: endpoint.into(),
            message: format!("circuit breaker open; retry in {retry_in:?}"),
            kind: FailureKind::CircuitOpen,
        }
    }

    /// An expired query deadline observed at this endpoint.
    pub fn deadline(endpoint: impl Into<String>) -> Self {
        EndpointError {
            endpoint: endpoint.into(),
            message: "query deadline expired".to_string(),
            kind: FailureKind::Deadline,
        }
    }

    /// A query cancelled via its token, observed at this endpoint.
    pub fn cancelled(endpoint: impl Into<String>, reason: CancelReason) -> Self {
        EndpointError {
            endpoint: endpoint.into(),
            message: format!("query cancelled: {reason}"),
            kind: FailureKind::Cancelled,
        }
    }

    /// A result-integrity violation (lying endpoint). Never skippable.
    pub fn integrity(endpoint: impl Into<String>, message: impl Into<String>) -> Self {
        EndpointError {
            endpoint: endpoint.into(),
            message: message.into(),
            kind: FailureKind::Integrity,
        }
    }

    /// The right error for an exhausted deadline: `cancelled` with the
    /// token's reason when the token tripped, `deadline` otherwise. The
    /// shared exit for every `deadline.expired()` guard in the transports.
    pub fn expired(endpoint: impl Into<String>, deadline: &Deadline) -> Self {
        match deadline.cancel_reason() {
            Some(reason) => EndpointError::cancelled(endpoint, reason),
            None => EndpointError::deadline(endpoint),
        }
    }

    /// Whether the partial-results policy may absorb this failure into a
    /// warning: true for endpoint-down classes (transport, open circuit),
    /// false for rejections (a correctness problem) and deadline expiry
    /// (a query-level timeout).
    pub fn is_skippable(&self) -> bool {
        matches!(self.kind, FailureKind::Transport | FailureKind::CircuitOpen)
    }
}

impl std::fmt::Display for EndpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "endpoint {} failed: {}", self.endpoint, self.message)
    }
}

impl std::error::Error for EndpointError {}

/// Operational limits a real SPARQL server imposes. Requests violating
/// them fail with an [`EndpointError`], exactly like Virtuoso rejecting an
/// oversized HTTP query string or truncating a result set.
///
/// Bound-join engines are the ones that trip these: FedX's `VALUES`-laden
/// subqueries grow with the binding count, while Lusail's locality-grouped
/// subqueries stay small — which is how the paper's Lusail succeeds on the
/// real endpoints where FedX gets runtime exceptions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointLimits {
    /// Maximum accepted request size in bytes (`None` = unlimited).
    pub max_request_bytes: Option<usize>,
    /// Maximum rows returned per request (`None` = unlimited).
    pub max_result_rows: Option<usize>,
}

/// A `SELECT` response together with its transport-level integrity
/// metadata: whether the server *advertised* that it truncated the result
/// (our own server sends `X-Lusail-Truncated`; foreign servers truncate
/// silently and leave the flag false).
#[derive(Debug, Clone)]
pub struct SelectResponse {
    /// The delivered rows.
    pub rows: Relation,
    /// True when the server declared the result truncated — ground truth
    /// that skips the detection heuristics entirely.
    pub truncated: bool,
}

/// A SPARQL endpoint: something that accepts a query and returns a result.
///
/// Lusail, FedX, SPLENDID, and HiBISCuS all talk to endpoints exclusively
/// through this trait, mirroring the paper's setup where every federated
/// system queries the same standard, unmodified SPARQL servers.
pub trait SparqlEndpoint: Send + Sync {
    /// A stable human-readable name (e.g. `"DrugBank"` or `"univ3"`).
    fn name(&self) -> &str;

    /// Execute a query under a deadline budget and return its result, or
    /// an error when the endpoint rejects the request (size limits,
    /// server faults), its breaker is open, or the deadline expires.
    fn execute_within(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<QueryResult, EndpointError>;

    /// Execute a query with no deadline.
    fn execute(&self, query: &Query) -> Result<QueryResult, EndpointError> {
        self.execute_within(query, Deadline::none())
    }

    /// Traffic counters for this endpoint.
    fn traffic(&self) -> TrafficSnapshot;

    /// Reset traffic counters.
    fn reset_traffic(&self);

    /// This endpoint's health registry snapshot (breaker state, failure
    /// counters, latency EWMA), when the transport tracks one.
    fn health(&self) -> Option<HealthSnapshot> {
        None
    }

    /// VoID-style statistics. This models the *preprocessing* pass the
    /// index-based systems need; index-free systems (Lusail, FedX) never
    /// call it. The default implementation signals "not supported".
    fn collect_stats(&self) -> Option<StoreStats> {
        None
    }

    /// Data-plane codec counters (negotiated results codec, wire bytes
    /// per codec, dictionary sizes, JSON fallbacks), when the transport
    /// negotiates one. Simulated endpoints have no wire and return
    /// `None`.
    fn codec(&self) -> Option<crate::network::CodecSnapshot> {
        None
    }

    /// Per-member replica counters, when this endpoint is a
    /// [`ReplicaGroup`](crate::replica::ReplicaGroup) fronting several
    /// member transports. Single-transport endpoints return `None`; the
    /// `--stats` table uses this to print one sub-row per member.
    fn replica_members(&self) -> Option<Vec<crate::replica::ReplicaMemberSnapshot>> {
        None
    }

    /// Convenience: run an `ASK` query.
    fn ask(&self, query: &Query) -> Result<bool, EndpointError> {
        self.ask_within(query, Deadline::none())
    }

    /// Convenience: run an `ASK` query under a deadline.
    fn ask_within(&self, query: &Query, deadline: Deadline) -> Result<bool, EndpointError> {
        Ok(match self.execute_within(query, deadline)? {
            QueryResult::Boolean(b) => b,
            QueryResult::Solutions(r) => !r.is_empty(),
        })
    }

    /// Convenience: run a `SELECT` query.
    fn select(&self, query: &Query) -> Result<Relation, EndpointError> {
        self.select_within(query, Deadline::none())
    }

    /// Convenience: run a `SELECT` query under a deadline.
    fn select_within(&self, query: &Query, deadline: Deadline) -> Result<Relation, EndpointError> {
        Ok(self.execute_within(query, deadline)?.into_solutions())
    }

    /// Run a `SELECT` and report truncation metadata alongside the rows.
    /// Transports that can see a server's truncation advertisement
    /// (`HttpEndpoint` reading `X-Lusail-Truncated`) override this; the
    /// default reports no advertisement, which is what a silently-capping
    /// server looks like.
    fn select_with_meta(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<SelectResponse, EndpointError> {
        Ok(SelectResponse {
            rows: self.select_within(query, deadline)?,
            truncated: false,
        })
    }

    /// Mark or clear this endpoint's result-integrity quarantine in its
    /// health registry, so `--stats` and replica ranking see it. The
    /// default is a no-op for transports without a health registry.
    fn set_quarantined(&self, _on: bool) {}

    /// Convenience: run a `SELECT (COUNT(…) AS ?c)` query and extract the
    /// count. Returns 0 when the shape is unexpected.
    fn count(&self, query: &Query) -> Result<usize, EndpointError> {
        self.count_within(query, Deadline::none())
    }

    /// Convenience: run a COUNT query under a deadline.
    fn count_within(&self, query: &Query, deadline: Deadline) -> Result<usize, EndpointError> {
        Ok(match self.execute_within(query, deadline)? {
            QueryResult::Solutions(r) => r
                .rows()
                .first()
                .and_then(|row| row.first())
                .and_then(|c| c.as_ref())
                .and_then(|t| t.as_literal())
                .and_then(|l| l.as_i64())
                .map(|n| n.max(0) as usize)
                .unwrap_or(0),
            QueryResult::Boolean(_) => 0,
        })
    }
}

/// A simulated SPARQL endpoint: a local [`Store`] behind a simulated
/// network link.
///
/// Each `execute` serializes the query to text, charges the request to the
/// network profile (latency sleep + bandwidth-proportional transfer time
/// for request and response), re-parses the text, and evaluates it on the
/// store — the same observable behaviour as a remote Fuseki/Virtuoso
/// instance, compressed in time.
pub struct SimulatedEndpoint {
    name: String,
    store: Store,
    profile: NetworkProfile,
    limits: EndpointLimits,
    counters: RequestCounters,
    health: EndpointHealth,
}

impl SimulatedEndpoint {
    /// Wrap a store as an endpoint with the given network profile.
    pub fn new(name: impl Into<String>, store: Store, profile: NetworkProfile) -> Self {
        SimulatedEndpoint {
            name: name.into(),
            store,
            profile,
            limits: EndpointLimits::default(),
            counters: RequestCounters::new(),
            health: EndpointHealth::new(BreakerConfig::default()),
        }
    }

    /// Impose server-side limits (see [`EndpointLimits`]).
    pub fn with_limits(mut self, limits: EndpointLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The underlying store (test/inspection use only — federated engines
    /// must go through `execute`).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// This endpoint's network profile.
    pub fn profile(&self) -> NetworkProfile {
        self.profile
    }

    /// Replace the network profile (used by the geo-distribution benches to
    /// re-deploy the same data under a different network).
    pub fn set_profile(&mut self, profile: NetworkProfile) {
        self.profile = profile;
    }
}

impl SparqlEndpoint for SimulatedEndpoint {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute_within(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<QueryResult, EndpointError> {
        // The simulated transport itself never fails, but it consults the
        // same registry as the HTTP transport so a fault-injection wrapper
        // (or future failure mode) shares one breaker and --stats shows a
        // uniform health row per endpoint.
        if let Admission::Rejected { retry_in } = self.health.admit() {
            return Err(EndpointError::circuit_open(&self.name, retry_in));
        }
        if deadline.expired() {
            return Err(EndpointError::expired(&self.name, &deadline));
        }
        let started = std::time::Instant::now();

        // 1. The request travels as text.
        let text = lusail_sparql::serializer::serialize_query(query);
        let request_bytes = text.len();
        if let Some(max) = self.limits.max_request_bytes {
            if request_bytes > max {
                // The request still consumed a round trip.
                let cost = self.profile.request_cost(request_bytes, 0);
                deadline.pause(cost);
                self.counters.record(request_bytes, 0, cost);
                let head: String = text.chars().take(160).collect();
                return Err(EndpointError::rejected(
                    &self.name,
                    format!(
                        "request of {request_bytes} bytes exceeds the {max}-byte limit (starts: {head} …)"
                    ),
                ));
            }
        }

        // 2. The endpoint parses and evaluates it, like a real server.
        let parsed = lusail_sparql::parse_query(&text)
            .map_err(|e| EndpointError::rejected(&self.name, format!("malformed query: {e}")))?;
        let mut result = Evaluator::new(&self.store).query(&parsed);
        if let Some(max) = self.limits.max_result_rows {
            if let QueryResult::Solutions(r) = &mut result {
                // Real servers silently truncate at their result cap — the
                // source of the paper's "ZR: zero results error" anomalies.
                r.rows_mut().truncate(max);
            }
        }

        // 3. The response travels back; charge the link — but a client
        // whose deadline lapses mid-transfer hangs up instead of waiting
        // out the full simulated transfer.
        let response_bytes = match &result {
            QueryResult::Solutions(r) => r.wire_size(),
            QueryResult::Boolean(_) => 1,
        };
        let cost = self.profile.request_cost(request_bytes, response_bytes);
        let allowed = deadline.clamp(cost);
        deadline.pause(cost);
        if allowed < cost || deadline.cancel_reason().is_some() {
            self.counters.record(request_bytes, 0, allowed);
            return Err(EndpointError::expired(&self.name, &deadline));
        }
        self.counters.record(request_bytes, response_bytes, cost);
        self.health.record_success(started.elapsed());
        Ok(result)
    }

    fn traffic(&self) -> TrafficSnapshot {
        self.counters.snapshot()
    }

    fn reset_traffic(&self) {
        self.counters.reset();
    }

    fn health(&self) -> Option<HealthSnapshot> {
        Some(self.health.snapshot())
    }

    fn set_quarantined(&self, on: bool) {
        self.health.set_quarantined(on);
    }

    fn collect_stats(&self) -> Option<StoreStats> {
        Some(StoreStats::collect(&self.store))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erh::BreakerState;
    use lusail_rdf::{Graph, Term};
    use lusail_sparql::parse_query;

    fn endpoint() -> SimulatedEndpoint {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::iri("http://x/b"),
        );
        g.add(
            Term::iri("http://x/b"),
            Term::iri("http://x/p"),
            Term::iri("http://x/c"),
        );
        SimulatedEndpoint::new("ep0", Store::from_graph(&g), NetworkProfile::instant())
    }

    #[test]
    fn select_roundtrips_through_text() {
        let ep = endpoint();
        let q = parse_query("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }").unwrap();
        let r = ep.select(&q).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ask_and_count_helpers() {
        let ep = endpoint();
        let yes = parse_query("ASK { <http://x/a> <http://x/p> ?o }").unwrap();
        assert!(ep.ask(&yes).unwrap());
        let no = parse_query("ASK { <http://x/zz> <http://x/p> ?o }").unwrap();
        assert!(!ep.ask(&no).unwrap());
        let c = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s <http://x/p> ?o }").unwrap();
        assert_eq!(ep.count(&c).unwrap(), 2);
    }

    #[test]
    fn traffic_is_counted() {
        let ep = endpoint();
        let q = parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap();
        ep.select(&q).unwrap();
        ep.select(&q).unwrap();
        let t = ep.traffic();
        assert_eq!(t.requests, 2);
        assert!(t.bytes_sent > 0);
        assert!(t.bytes_received > 0);
        ep.reset_traffic();
        assert_eq!(ep.traffic().requests, 0);
    }

    #[test]
    fn latency_is_paid() {
        let mut ep = endpoint();
        ep.set_profile(NetworkProfile {
            latency: std::time::Duration::from_millis(5),
            bytes_per_sec: u64::MAX,
        });
        let q = parse_query("ASK { ?s ?p ?o }").unwrap();
        let start = std::time::Instant::now();
        ep.ask(&q).unwrap();
        assert!(start.elapsed() >= std::time::Duration::from_millis(5));
        assert!(ep.traffic().simulated_network_time >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn request_size_limit_rejects_big_queries() {
        let ep = endpoint();
        let ep = SimulatedEndpoint::new("lim", ep.store().clone(), NetworkProfile::instant())
            .with_limits(EndpointLimits {
                max_request_bytes: Some(64),
                max_result_rows: None,
            });
        let small = parse_query("ASK { ?s ?p ?o }").unwrap();
        assert!(ep.ask(&small).is_ok());
        let big = parse_query(
            "SELECT ?s WHERE { ?s <http://very.long.example.org/a/deeply/nested/predicate/name/for/testing> ?o }",
        )
        .unwrap();
        let err = ep.select(&big).unwrap_err();
        assert!(err.message.contains("exceeds"), "{err}");
        assert_eq!(err.endpoint, "lim");
        assert_eq!(err.kind, FailureKind::Rejected);
        // The failed request still counted against traffic.
        assert!(ep.traffic().requests >= 2);
    }

    #[test]
    fn result_row_limit_truncates() {
        let ep = endpoint();
        let ep = SimulatedEndpoint::new("cap", ep.store().clone(), NetworkProfile::instant())
            .with_limits(EndpointLimits {
                max_request_bytes: None,
                max_result_rows: Some(1),
            });
        let q = parse_query("SELECT ?s ?o WHERE { ?s <http://x/p> ?o }").unwrap();
        let r = ep.select(&q).unwrap();
        assert_eq!(r.len(), 1, "server cap must truncate the 2-row result");
    }

    #[test]
    fn stats_supported() {
        let ep = endpoint();
        let stats = ep.collect_stats().unwrap();
        assert_eq!(stats.triples, 2);
        assert!(stats.has_predicate("http://x/p"));
    }

    #[test]
    fn expired_deadline_fails_before_evaluating() {
        let ep = endpoint();
        let q = parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap();
        let err = ep
            .select_within(&q, Deadline::within(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::Deadline);
        assert_eq!(ep.traffic().requests, 0, "no traffic for a cancelled call");
    }

    #[test]
    fn deadline_shorter_than_simulated_cost_times_out() {
        let mut ep = endpoint();
        ep.set_profile(NetworkProfile {
            latency: Duration::from_millis(50),
            bytes_per_sec: u64::MAX,
        });
        let q = parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap();
        let start = std::time::Instant::now();
        let err = ep
            .select_within(&q, Deadline::within(Duration::from_millis(10)))
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::Deadline);
        assert!(
            start.elapsed() < Duration::from_millis(45),
            "client must hang up at the deadline, not wait out the transfer"
        );
    }

    #[test]
    fn health_snapshot_tracks_successes() {
        let ep = endpoint();
        let q = parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap();
        ep.select(&q).unwrap();
        ep.select(&q).unwrap();
        let h = ep.health().unwrap();
        assert_eq!(h.requests, 2);
        assert_eq!(h.failures, 0);
        assert_eq!(h.breaker, BreakerState::Closed);
    }
}
