//! The simulated network: latency/bandwidth profiles and traffic counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A network profile for one endpoint, standing in for the paper's
/// deployment environments.
///
/// The per-request `latency` is paid with a real sleep on the calling
/// thread, and `bytes_per_sec` converts request/response sizes into
/// additional transfer time. Timescales are compressed relative to the
/// paper (a real WAN round trip is ~40–150 ms; we default to single-digit
/// milliseconds) so the full benchmark suite stays runnable — the *ratio*
/// between the profiles is what the experiments depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkProfile {
    /// Fixed per-request latency (round-trip).
    pub latency: Duration,
    /// Link bandwidth for payload transfer. `u64::MAX` disables transfer
    /// cost.
    pub bytes_per_sec: u64,
}

impl NetworkProfile {
    /// No simulated network cost at all (useful in unit tests).
    pub fn instant() -> Self {
        NetworkProfile {
            latency: Duration::ZERO,
            bytes_per_sec: u64::MAX,
        }
    }

    /// The paper's local-cluster setting (1–10 Gbps Ethernet, same rack):
    /// a small but non-zero round trip.
    pub fn local_cluster() -> Self {
        NetworkProfile {
            latency: Duration::from_micros(200),
            bytes_per_sec: 125_000_000,
        }
    }

    /// The paper's geo-distributed Azure setting (7 regions across the US
    /// and Europe): ~20× the local round trip and ~1/50 the bandwidth.
    pub fn geo_distributed() -> Self {
        NetworkProfile {
            latency: Duration::from_millis(4),
            bytes_per_sec: 2_500_000,
        }
    }

    /// The transfer time for `bytes` at this profile's bandwidth.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bytes_per_sec == u64::MAX || bytes == 0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec as f64)
    }

    /// Total simulated cost of one request.
    pub fn request_cost(&self, request_bytes: usize, response_bytes: usize) -> Duration {
        self.latency + self.transfer_time(request_bytes + response_bytes)
    }
}

/// Thread-safe traffic counters for one endpoint.
///
/// These are the quantities the paper argues about: the *number of remote
/// requests* (FedX's bound joins inflate this by orders of magnitude) and
/// the *volume of intermediate results* shipped back.
#[derive(Debug, Default)]
pub struct RequestCounters {
    requests: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    simulated_nanos: AtomicU64,
}

impl RequestCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request: `sent` request bytes, `received` response bytes,
    /// and the simulated network time charged for it.
    pub fn record(&self, sent: usize, received: usize, cost: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(sent as u64, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(received as u64, Ordering::Relaxed);
        self.simulated_nanos
            .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            simulated_network_time: Duration::from_nanos(
                self.simulated_nanos.load(Ordering::Relaxed),
            ),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.simulated_nanos.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time reading of [`RequestCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    pub requests: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub simulated_network_time: Duration,
}

impl TrafficSnapshot {
    /// Element-wise sum (for aggregating across endpoints).
    pub fn merge(self, other: TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            requests: self.requests + other.requests,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            simulated_network_time: self.simulated_network_time + other.simulated_network_time,
        }
    }

    /// Difference since an earlier snapshot.
    pub fn since(self, earlier: TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            requests: self.requests - earlier.requests,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            simulated_network_time: self.simulated_network_time - earlier.simulated_network_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let p = NetworkProfile {
            latency: Duration::ZERO,
            bytes_per_sec: 1000,
        };
        assert_eq!(p.transfer_time(500), Duration::from_millis(500));
        assert_eq!(p.transfer_time(0), Duration::ZERO);
        assert_eq!(
            NetworkProfile::instant().transfer_time(1 << 30),
            Duration::ZERO
        );
    }

    #[test]
    fn request_cost_adds_latency() {
        let p = NetworkProfile {
            latency: Duration::from_millis(10),
            bytes_per_sec: 1000,
        };
        assert_eq!(p.request_cost(100, 900), Duration::from_millis(1010));
    }

    #[test]
    fn geo_is_slower_than_local() {
        assert!(
            NetworkProfile::geo_distributed().latency > NetworkProfile::local_cluster().latency
        );
        assert!(
            NetworkProfile::geo_distributed().bytes_per_sec
                < NetworkProfile::local_cluster().bytes_per_sec
        );
    }

    #[test]
    fn counters_record_and_snapshot() {
        let c = RequestCounters::new();
        c.record(10, 100, Duration::from_millis(1));
        c.record(20, 200, Duration::from_millis(2));
        let s = c.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes_sent, 30);
        assert_eq!(s.bytes_received, 300);
        assert_eq!(s.simulated_network_time, Duration::from_millis(3));
        c.reset();
        assert_eq!(c.snapshot(), TrafficSnapshot::default());
    }

    #[test]
    fn snapshot_merge_and_since() {
        let a = TrafficSnapshot {
            requests: 1,
            bytes_sent: 2,
            bytes_received: 3,
            simulated_network_time: Duration::from_secs(1),
        };
        let b = a.merge(a);
        assert_eq!(b.requests, 2);
        assert_eq!(b.since(a), a);
    }
}
