//! The simulated network: latency/bandwidth profiles and traffic counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A network profile for one endpoint, standing in for the paper's
/// deployment environments.
///
/// The per-request `latency` is paid with a real sleep on the calling
/// thread, and `bytes_per_sec` converts request/response sizes into
/// additional transfer time. Timescales are compressed relative to the
/// paper (a real WAN round trip is ~40–150 ms; we default to single-digit
/// milliseconds) so the full benchmark suite stays runnable — the *ratio*
/// between the profiles is what the experiments depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkProfile {
    /// Fixed per-request latency (round-trip).
    pub latency: Duration,
    /// Link bandwidth for payload transfer. `u64::MAX` disables transfer
    /// cost.
    pub bytes_per_sec: u64,
}

impl NetworkProfile {
    /// No simulated network cost at all (useful in unit tests).
    pub fn instant() -> Self {
        NetworkProfile {
            latency: Duration::ZERO,
            bytes_per_sec: u64::MAX,
        }
    }

    /// The paper's local-cluster setting (1–10 Gbps Ethernet, same rack):
    /// a small but non-zero round trip.
    pub fn local_cluster() -> Self {
        NetworkProfile {
            latency: Duration::from_micros(200),
            bytes_per_sec: 125_000_000,
        }
    }

    /// The paper's geo-distributed Azure setting (7 regions across the US
    /// and Europe): ~20× the local round trip and ~1/50 the bandwidth.
    pub fn geo_distributed() -> Self {
        NetworkProfile {
            latency: Duration::from_millis(4),
            bytes_per_sec: 2_500_000,
        }
    }

    /// The transfer time for `bytes` at this profile's bandwidth.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bytes_per_sec == u64::MAX || bytes == 0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec as f64)
    }

    /// Total simulated cost of one request.
    pub fn request_cost(&self, request_bytes: usize, response_bytes: usize) -> Duration {
        self.latency + self.transfer_time(request_bytes + response_bytes)
    }
}

/// Thread-safe traffic counters for one endpoint.
///
/// These are the quantities the paper argues about: the *number of remote
/// requests* (FedX's bound joins inflate this by orders of magnitude) and
/// the *volume of intermediate results* shipped back.
#[derive(Debug, Default)]
pub struct RequestCounters {
    requests: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    simulated_nanos: AtomicU64,
}

impl RequestCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request: `sent` request bytes, `received` response bytes,
    /// and the simulated network time charged for it.
    pub fn record(&self, sent: usize, received: usize, cost: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(sent as u64, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(received as u64, Ordering::Relaxed);
        self.simulated_nanos
            .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            simulated_network_time: Duration::from_nanos(
                self.simulated_nanos.load(Ordering::Relaxed),
            ),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
        self.bytes_received.store(0, Ordering::Relaxed);
        self.simulated_nanos.store(0, Ordering::Relaxed);
    }
}

/// Thread-safe data-plane codec counters for one endpoint: which results
/// codec the endpoint actually answered with, how many wire bytes each
/// codec carried, and how large the per-response term dictionaries were.
///
/// "Fallbacks" count responses where the binary codec was offered in the
/// `Accept` header but the endpoint answered SPARQL-JSON anyway — the
/// expected behavior against foreign (non-Lusail) endpoints.
#[derive(Debug, Default)]
pub struct CodecCounters {
    json_responses: AtomicU64,
    binary_responses: AtomicU64,
    json_bytes_in: AtomicU64,
    binary_bytes_in: AtomicU64,
    dict_terms: AtomicU64,
    fallbacks: AtomicU64,
}

impl CodecCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one successfully decoded JSON response of `bytes` wire
    /// bytes. `offered_binary` marks it as a negotiation fallback.
    pub fn record_json(&self, bytes: usize, offered_binary: bool) {
        self.json_responses.fetch_add(1, Ordering::Relaxed);
        self.json_bytes_in
            .fetch_add(bytes as u64, Ordering::Relaxed);
        if offered_binary {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one successfully decoded binary response: `bytes` wire
    /// bytes carrying a `dict_terms`-entry term dictionary.
    pub fn record_binary(&self, bytes: usize, dict_terms: usize) {
        self.binary_responses.fetch_add(1, Ordering::Relaxed);
        self.binary_bytes_in
            .fetch_add(bytes as u64, Ordering::Relaxed);
        self.dict_terms
            .fetch_add(dict_terms as u64, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot of the counters.
    pub fn snapshot(&self) -> CodecSnapshot {
        CodecSnapshot {
            json_responses: self.json_responses.load(Ordering::Relaxed),
            binary_responses: self.binary_responses.load(Ordering::Relaxed),
            json_bytes_in: self.json_bytes_in.load(Ordering::Relaxed),
            binary_bytes_in: self.binary_bytes_in.load(Ordering::Relaxed),
            dict_terms: self.dict_terms.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.json_responses.store(0, Ordering::Relaxed);
        self.binary_responses.store(0, Ordering::Relaxed);
        self.json_bytes_in.store(0, Ordering::Relaxed);
        self.binary_bytes_in.store(0, Ordering::Relaxed);
        self.dict_terms.store(0, Ordering::Relaxed);
        self.fallbacks.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time reading of [`CodecCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecSnapshot {
    pub json_responses: u64,
    pub binary_responses: u64,
    pub json_bytes_in: u64,
    pub binary_bytes_in: u64,
    pub dict_terms: u64,
    pub fallbacks: u64,
}

impl CodecSnapshot {
    /// Element-wise sum (for aggregating across endpoints or replicas).
    pub fn merge(self, other: CodecSnapshot) -> CodecSnapshot {
        CodecSnapshot {
            json_responses: self.json_responses + other.json_responses,
            binary_responses: self.binary_responses + other.binary_responses,
            json_bytes_in: self.json_bytes_in + other.json_bytes_in,
            binary_bytes_in: self.binary_bytes_in + other.binary_bytes_in,
            dict_terms: self.dict_terms + other.dict_terms,
            fallbacks: self.fallbacks + other.fallbacks,
        }
    }

    /// The codec this endpoint has settled on, judged by what it last
    /// demonstrably answered with: "binary" once any binary response
    /// landed, "json" after JSON-only traffic, "none" before any
    /// response.
    pub fn negotiated(&self) -> &'static str {
        if self.binary_responses > 0 {
            "binary"
        } else if self.json_responses > 0 {
            "json"
        } else {
            "none"
        }
    }
}

/// A point-in-time reading of [`RequestCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    pub requests: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub simulated_network_time: Duration,
}

impl TrafficSnapshot {
    /// Element-wise sum (for aggregating across endpoints).
    pub fn merge(self, other: TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            requests: self.requests + other.requests,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            simulated_network_time: self.simulated_network_time + other.simulated_network_time,
        }
    }

    /// Difference since an earlier snapshot.
    pub fn since(self, earlier: TrafficSnapshot) -> TrafficSnapshot {
        TrafficSnapshot {
            requests: self.requests - earlier.requests,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            bytes_received: self.bytes_received - earlier.bytes_received,
            simulated_network_time: self.simulated_network_time - earlier.simulated_network_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let p = NetworkProfile {
            latency: Duration::ZERO,
            bytes_per_sec: 1000,
        };
        assert_eq!(p.transfer_time(500), Duration::from_millis(500));
        assert_eq!(p.transfer_time(0), Duration::ZERO);
        assert_eq!(
            NetworkProfile::instant().transfer_time(1 << 30),
            Duration::ZERO
        );
    }

    #[test]
    fn request_cost_adds_latency() {
        let p = NetworkProfile {
            latency: Duration::from_millis(10),
            bytes_per_sec: 1000,
        };
        assert_eq!(p.request_cost(100, 900), Duration::from_millis(1010));
    }

    #[test]
    fn geo_is_slower_than_local() {
        assert!(
            NetworkProfile::geo_distributed().latency > NetworkProfile::local_cluster().latency
        );
        assert!(
            NetworkProfile::geo_distributed().bytes_per_sec
                < NetworkProfile::local_cluster().bytes_per_sec
        );
    }

    #[test]
    fn counters_record_and_snapshot() {
        let c = RequestCounters::new();
        c.record(10, 100, Duration::from_millis(1));
        c.record(20, 200, Duration::from_millis(2));
        let s = c.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes_sent, 30);
        assert_eq!(s.bytes_received, 300);
        assert_eq!(s.simulated_network_time, Duration::from_millis(3));
        c.reset();
        assert_eq!(c.snapshot(), TrafficSnapshot::default());
    }

    #[test]
    fn snapshot_merge_and_since() {
        let a = TrafficSnapshot {
            requests: 1,
            bytes_sent: 2,
            bytes_received: 3,
            simulated_network_time: Duration::from_secs(1),
        };
        let b = a.merge(a);
        assert_eq!(b.requests, 2);
        assert_eq!(b.since(a), a);
    }
}
