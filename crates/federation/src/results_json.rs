//! SPARQL 1.1 Query Results JSON Format (W3C REC, 2013-03-21).
//!
//! One codec shared by both ends of the wire: `lusail-server` serializes
//! [`QueryResult`]s with it and the HTTP client transport
//! ([`crate::http::HttpEndpoint`]) parses them back. Round-tripping is
//! lossless for every term kind (IRI, blank node, plain/typed/language-
//! tagged literal) and preserves bag semantics and row order, so HTTP
//! federation yields bit-identical solutions to the in-process path.
//!
//! Serialization is exposed piecewise (`head_json` / `binding_json` /
//! [`SOLUTIONS_TAIL`]) so the server can stream large result sets row by
//! row without materializing the whole document.

use crate::json::{escape, Json, JsonError};
use lusail_rdf::{Literal, Term};
use lusail_sparql::ast::Variable;
use lusail_sparql::solution::{Relation, Row};
use lusail_store::eval::QueryResult;

/// The media type of this format.
pub const MEDIA_TYPE: &str = "application/sparql-results+json";

/// Closes the document opened by [`head_json`].
pub const SOLUTIONS_TAIL: &str = "]}}";

/// The opening of a solutions document: `head` plus the start of the
/// `results.bindings` array. Append [`binding_json`] rows (comma-separated)
/// and [`SOLUTIONS_TAIL`] to complete it.
pub fn head_json(vars: &[Variable]) -> String {
    head_json_with_warnings(vars, &[])
}

/// Like [`head_json`], but carrying execution warnings (the
/// partial-results contract: a degraded answer names what it is missing).
/// The `"warnings"` array is a Lusail extension to the head; conforming
/// consumers ignore unknown head members, and [`parse_full`] surfaces it.
pub fn head_json_with_warnings(vars: &[Variable], warnings: &[String]) -> String {
    let mut out = String::from("{\"head\":{\"vars\":[");
    for (i, v) in vars.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(v.name()));
        out.push('"');
    }
    out.push(']');
    if !warnings.is_empty() {
        out.push_str(",\"warnings\":[");
        for (i, w) in warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape(w));
            out.push('"');
        }
        out.push(']');
    }
    out.push_str("},\"results\":{\"bindings\":[");
    out
}

/// One solution as a binding object. Unbound variables are omitted, per the
/// spec.
pub fn binding_json(vars: &[Variable], row: &Row) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for (v, cell) in vars.iter().zip(row) {
        let Some(term) = cell else { continue };
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&escape(v.name()));
        out.push_str("\":");
        out.push_str(&term_json(term));
    }
    out.push('}');
    out
}

/// An `ASK` result document.
pub fn boolean_json(value: bool) -> String {
    format!("{{\"head\":{{}},\"boolean\":{value}}}")
}

/// One RDF term as a SPARQL-results JSON object.
pub fn term_json(term: &Term) -> String {
    match term {
        Term::Iri(iri) => format!("{{\"type\":\"uri\",\"value\":\"{}\"}}", escape(iri)),
        Term::BlankNode(label) => {
            format!("{{\"type\":\"bnode\",\"value\":\"{}\"}}", escape(label))
        }
        Term::Literal(lit) => {
            let mut out = format!(
                "{{\"type\":\"literal\",\"value\":\"{}\"",
                escape(&lit.lexical)
            );
            if let Some(lang) = &lit.language {
                out.push_str(&format!(",\"xml:lang\":\"{}\"", escape(lang)));
            } else if let Some(dt) = &lit.datatype {
                out.push_str(&format!(",\"datatype\":\"{}\"", escape(dt)));
            }
            out.push('}');
            out
        }
    }
}

/// Serialize a full result document (non-streaming convenience; the server
/// streams the same pieces instead).
pub fn serialize(result: &QueryResult) -> String {
    match result {
        QueryResult::Boolean(b) => boolean_json(*b),
        QueryResult::Solutions(rel) => {
            let mut out = head_json(rel.vars());
            for (i, row) in rel.rows().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&binding_json(rel.vars(), row));
            }
            out.push_str(SOLUTIONS_TAIL);
            out
        }
    }
}

/// Parse a SPARQL JSON results document into a [`QueryResult`].
///
/// Variables come from `head.vars` in document order; bindings mentioning
/// a variable absent from the head are rejected (a malformed server).
pub fn parse(text: &str) -> Result<QueryResult, ResultsJsonError> {
    Ok(parse_full(text)?.0)
}

/// Like [`parse`], but also returning any `head.warnings` the server
/// attached (empty for standard documents).
pub fn parse_full(text: &str) -> Result<(QueryResult, Vec<String>), ResultsJsonError> {
    let doc = Json::parse(text)?;
    let warnings: Vec<String> = doc
        .get("head")
        .and_then(|h| h.get("warnings"))
        .and_then(Json::as_array)
        .map(|ws| {
            ws.iter()
                .filter_map(|w| w.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    Ok((parse_result(&doc)?, warnings))
}

fn parse_result(doc: &Json) -> Result<QueryResult, ResultsJsonError> {
    if let Some(b) = doc.get("boolean") {
        let b = b
            .as_bool()
            .ok_or_else(|| ResultsJsonError::shape("\"boolean\" must be true or false"))?;
        return Ok(QueryResult::Boolean(b));
    }

    let vars: Vec<Variable> = doc
        .get("head")
        .and_then(|h| h.get("vars"))
        .and_then(Json::as_array)
        .ok_or_else(|| ResultsJsonError::shape("missing head.vars"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(Variable::new)
                .ok_or_else(|| ResultsJsonError::shape("head.vars entries must be strings"))
        })
        .collect::<Result<_, _>>()?;

    let bindings = doc
        .get("results")
        .and_then(|r| r.get("bindings"))
        .and_then(Json::as_array)
        .ok_or_else(|| ResultsJsonError::shape("missing results.bindings"))?;

    let mut rel = Relation::new(vars.clone());
    for binding in bindings {
        let Json::Object(fields) = binding else {
            return Err(ResultsJsonError::shape("bindings entries must be objects"));
        };
        let mut row: Row = vec![None; vars.len()];
        for (name, value) in fields {
            let idx = vars.iter().position(|v| v.name() == name).ok_or_else(|| {
                ResultsJsonError::shape(format!("binding for ?{name} not declared in head.vars"))
            })?;
            row[idx] = Some(parse_term(value)?);
        }
        rel.push(row);
    }
    Ok(QueryResult::Solutions(rel))
}

fn parse_term(value: &Json) -> Result<Term, ResultsJsonError> {
    let kind = value
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| ResultsJsonError::shape("term object missing \"type\""))?;
    let lexical = value
        .get("value")
        .and_then(Json::as_str)
        .ok_or_else(|| ResultsJsonError::shape("term object missing \"value\""))?;
    match kind {
        "uri" => Ok(Term::Iri(lexical.to_string())),
        "bnode" => Ok(Term::BlankNode(lexical.to_string())),
        // "typed-literal" is the legacy alias some servers still emit.
        "literal" | "typed-literal" => {
            let language = value
                .get("xml:lang")
                .and_then(Json::as_str)
                .map(str::to_string);
            let datatype = if language.is_some() {
                None
            } else {
                value
                    .get("datatype")
                    .and_then(Json::as_str)
                    .map(str::to_string)
            };
            Ok(Term::Literal(Literal {
                lexical: lexical.to_string(),
                datatype,
                language,
            }))
        }
        other => Err(ResultsJsonError::shape(format!(
            "unknown term type {other:?}"
        ))),
    }
}

/// A malformed results document: either invalid JSON or valid JSON that
/// does not follow the SPARQL results shape.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultsJsonError {
    Json(JsonError),
    Shape(String),
}

impl ResultsJsonError {
    fn shape(msg: impl Into<String>) -> Self {
        ResultsJsonError::Shape(msg.into())
    }
}

impl std::fmt::Display for ResultsJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResultsJsonError::Json(e) => write!(f, "{e}"),
            ResultsJsonError::Shape(m) => write!(f, "not a SPARQL results document: {m}"),
        }
    }
}

impl std::error::Error for ResultsJsonError {}

impl From<JsonError> for ResultsJsonError {
    fn from(e: JsonError) -> Self {
        ResultsJsonError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    /// One row exercising every term kind plus an unbound cell.
    fn all_kinds_relation() -> Relation {
        let vars = vec![
            v("i"),
            v("b"),
            v("plain"),
            v("typed"),
            v("tagged"),
            v("unbound"),
        ];
        let mut rel = Relation::new(vars);
        rel.push(vec![
            Some(Term::iri("http://example.org/thing?q=1&x=\"quoted\"")),
            Some(Term::bnode("b42")),
            Some(Term::literal("line1\nline2\ttab")),
            Some(Term::integer(-7)),
            Some(Term::Literal(Literal::lang("grüße 😀", "de"))),
            None,
        ]);
        rel
    }

    #[test]
    fn round_trips_every_term_kind() {
        let rel = all_kinds_relation();
        let doc = serialize(&QueryResult::Solutions(rel.clone()));
        let back = parse(&doc).unwrap();
        assert_eq!(back, QueryResult::Solutions(rel));
    }

    #[test]
    fn round_trips_booleans() {
        for b in [true, false] {
            assert_eq!(
                parse(&serialize(&QueryResult::Boolean(b))).unwrap(),
                QueryResult::Boolean(b)
            );
        }
    }

    #[test]
    fn round_trips_empty_and_duplicate_rows() {
        let mut rel = Relation::new(vec![v("x")]);
        // Empty relation first.
        let doc = serialize(&QueryResult::Solutions(rel.clone()));
        assert_eq!(parse(&doc).unwrap(), QueryResult::Solutions(rel.clone()));
        // Bag semantics: duplicates must survive.
        rel.push(vec![Some(Term::iri("http://x/a"))]);
        rel.push(vec![Some(Term::iri("http://x/a"))]);
        let doc = serialize(&QueryResult::Solutions(rel.clone()));
        assert_eq!(parse(&doc).unwrap(), QueryResult::Solutions(rel));
    }

    #[test]
    fn streaming_pieces_match_serialize() {
        let rel = all_kinds_relation();
        let mut streamed = head_json(rel.vars());
        for (i, row) in rel.rows().iter().enumerate() {
            if i > 0 {
                streamed.push(',');
            }
            streamed.push_str(&binding_json(rel.vars(), row));
        }
        streamed.push_str(SOLUTIONS_TAIL);
        assert_eq!(streamed, serialize(&QueryResult::Solutions(rel)));
    }

    #[test]
    fn warnings_round_trip_in_the_head() {
        let rel = all_kinds_relation();
        let warnings = vec![
            "endpoint univ2 unreachable for sq1: connection refused".to_string(),
            "with \"quotes\" and\nnewlines".to_string(),
        ];
        let mut doc = head_json_with_warnings(rel.vars(), &warnings);
        for (i, row) in rel.rows().iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&binding_json(rel.vars(), row));
        }
        doc.push_str(SOLUTIONS_TAIL);
        let (back, got) = parse_full(&doc).unwrap();
        assert_eq!(back, QueryResult::Solutions(rel));
        assert_eq!(got, warnings);
        // A warning-free head emits no "warnings" member at all.
        assert!(!head_json(&[v("x")]).contains("warnings"));
        // Standard documents parse with no warnings.
        let (_, none) = parse_full(&serialize(&QueryResult::Boolean(true))).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn parses_legacy_typed_literal() {
        let doc = r#"{"head":{"vars":["x"]},"results":{"bindings":[
            {"x":{"type":"typed-literal","value":"3","datatype":"http://www.w3.org/2001/XMLSchema#integer"}}
        ]}}"#;
        let QueryResult::Solutions(rel) = parse(doc).unwrap() else {
            panic!("not solutions")
        };
        assert_eq!(rel.rows()[0][0], Some(Term::integer(3)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",                                                                                     // not JSON
            "42",                                                    // not an object
            r#"{"head":{}}"#,                                        // no vars, no boolean
            r#"{"head":{"vars":["x"]}}"#,                            // no results
            r#"{"head":{"vars":[1]},"results":{"bindings":[]}}"#,    // non-string var
            r#"{"head":{"vars":["x"]},"results":{"bindings":[7]}}"#, // non-object binding
            r#"{"head":{"vars":["x"]},"results":{"bindings":[{"y":{"type":"uri","value":"u"}}]}}"#, // undeclared var
            r#"{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"wat","value":"u"}}]}}"#, // bad term type
            r#"{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"uri"}}]}}"#, // missing value
            r#"{"head":{},"boolean":"yes"}"#, // non-bool boolean
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
