//! SPARQL 1.1 Query Results JSON Format (W3C REC, 2013-03-21).
//!
//! One codec shared by both ends of the wire: `lusail-server` serializes
//! [`QueryResult`]s with it and the HTTP client transport
//! ([`crate::http::HttpEndpoint`]) parses them back. Round-tripping is
//! lossless for every term kind (IRI, blank node, plain/typed/language-
//! tagged literal) and preserves bag semantics and row order, so HTTP
//! federation yields bit-identical solutions to the in-process path.
//!
//! Serialization is exposed piecewise (`head_json` / `binding_json` /
//! [`SOLUTIONS_TAIL`]) so the server can stream large result sets row by
//! row without materializing the whole document.

use crate::json::{escape, Json, JsonError};
use lusail_rdf::{Literal, Term};
use lusail_sparql::ast::Variable;
use lusail_sparql::solution::{Relation, Row};
use lusail_store::eval::QueryResult;

/// The media type of this format.
pub const MEDIA_TYPE: &str = "application/sparql-results+json";

/// Closes the document opened by [`head_json`].
pub const SOLUTIONS_TAIL: &str = "]}}";

/// The opening of a solutions document: `head` plus the start of the
/// `results.bindings` array. Append [`binding_json`] rows (comma-separated)
/// and [`SOLUTIONS_TAIL`] to complete it.
pub fn head_json(vars: &[Variable]) -> String {
    head_json_with_warnings(vars, &[])
}

/// Like [`head_json`], but carrying execution warnings (the
/// partial-results contract: a degraded answer names what it is missing).
/// The `"warnings"` array is a Lusail extension to the head; conforming
/// consumers ignore unknown head members, and [`parse_full`] surfaces it.
pub fn head_json_with_warnings(vars: &[Variable], warnings: &[String]) -> String {
    let mut out = String::from("{\"head\":{\"vars\":[");
    for (i, v) in vars.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(v.name()));
        out.push('"');
    }
    out.push(']');
    if !warnings.is_empty() {
        out.push_str(",\"warnings\":[");
        for (i, w) in warnings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape(w));
            out.push('"');
        }
        out.push(']');
    }
    out.push_str("},\"results\":{\"bindings\":[");
    out
}

/// One solution as a binding object. Unbound variables are omitted, per the
/// spec.
pub fn binding_json(vars: &[Variable], row: &Row) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for (v, cell) in vars.iter().zip(row) {
        let Some(term) = cell else { continue };
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(&escape(v.name()));
        out.push_str("\":");
        out.push_str(&term_json(term));
    }
    out.push('}');
    out
}

/// An `ASK` result document.
pub fn boolean_json(value: bool) -> String {
    format!("{{\"head\":{{}},\"boolean\":{value}}}")
}

/// One RDF term as a SPARQL-results JSON object.
pub fn term_json(term: &Term) -> String {
    match term {
        Term::Iri(iri) => format!("{{\"type\":\"uri\",\"value\":\"{}\"}}", escape(iri)),
        Term::BlankNode(label) => {
            format!("{{\"type\":\"bnode\",\"value\":\"{}\"}}", escape(label))
        }
        Term::Literal(lit) => {
            let mut out = format!(
                "{{\"type\":\"literal\",\"value\":\"{}\"",
                escape(&lit.lexical)
            );
            if let Some(lang) = &lit.language {
                out.push_str(&format!(",\"xml:lang\":\"{}\"", escape(lang)));
            } else if let Some(dt) = &lit.datatype {
                out.push_str(&format!(",\"datatype\":\"{}\"", escape(dt)));
            }
            out.push('}');
            out
        }
    }
}

/// Serialize a full result document (non-streaming convenience; the server
/// streams the same pieces instead).
pub fn serialize(result: &QueryResult) -> String {
    match result {
        QueryResult::Boolean(b) => boolean_json(*b),
        QueryResult::Solutions(rel) => {
            let mut out = head_json(rel.vars());
            for (i, row) in rel.rows().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&binding_json(rel.vars(), row));
            }
            out.push_str(SOLUTIONS_TAIL);
            out
        }
    }
}

/// Parse a SPARQL JSON results document into a [`QueryResult`].
///
/// Variables come from `head.vars` in document order; bindings mentioning
/// a variable absent from the head are rejected (a malformed server).
pub fn parse(text: &str) -> Result<QueryResult, ResultsJsonError> {
    Ok(parse_full(text)?.0)
}

/// Like [`parse`], but also returning any `head.warnings` the server
/// attached (empty for standard documents).
pub fn parse_full(text: &str) -> Result<(QueryResult, Vec<String>), ResultsJsonError> {
    let doc = Json::parse(text)?;
    let warnings: Vec<String> = doc
        .get("head")
        .and_then(|h| h.get("warnings"))
        .and_then(Json::as_array)
        .map(|ws| {
            ws.iter()
                .filter_map(|w| w.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default();
    Ok((parse_result(&doc)?, warnings))
}

fn parse_result(doc: &Json) -> Result<QueryResult, ResultsJsonError> {
    if let Some(b) = doc.get("boolean") {
        let b = b
            .as_bool()
            .ok_or_else(|| ResultsJsonError::shape("\"boolean\" must be true or false"))?;
        return Ok(QueryResult::Boolean(b));
    }

    let vars: Vec<Variable> = doc
        .get("head")
        .and_then(|h| h.get("vars"))
        .and_then(Json::as_array)
        .ok_or_else(|| ResultsJsonError::shape("missing head.vars"))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(Variable::new)
                .ok_or_else(|| ResultsJsonError::shape("head.vars entries must be strings"))
        })
        .collect::<Result<_, _>>()?;

    let bindings = doc
        .get("results")
        .and_then(|r| r.get("bindings"))
        .and_then(Json::as_array)
        .ok_or_else(|| ResultsJsonError::shape("missing results.bindings"))?;

    let mut rel = Relation::new(vars.clone());
    for binding in bindings {
        let Json::Object(fields) = binding else {
            return Err(ResultsJsonError::shape("bindings entries must be objects"));
        };
        let mut row: Row = vec![None; vars.len()];
        for (name, value) in fields {
            let idx = vars.iter().position(|v| v.name() == name).ok_or_else(|| {
                ResultsJsonError::shape(format!("binding for ?{name} not declared in head.vars"))
            })?;
            row[idx] = Some(parse_term(value)?);
        }
        rel.push(row);
    }
    Ok(QueryResult::Solutions(rel))
}

fn parse_term(value: &Json) -> Result<Term, ResultsJsonError> {
    let kind = value
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| ResultsJsonError::shape("term object missing \"type\""))?;
    let lexical = value
        .get("value")
        .and_then(Json::as_str)
        .ok_or_else(|| ResultsJsonError::shape("term object missing \"value\""))?;
    match kind {
        "uri" => Ok(Term::Iri(lexical.to_string())),
        "bnode" => Ok(Term::BlankNode(lexical.to_string())),
        // "typed-literal" is the legacy alias some servers still emit.
        "literal" | "typed-literal" => {
            let language = value
                .get("xml:lang")
                .and_then(Json::as_str)
                .map(str::to_string);
            let datatype = if language.is_some() {
                None
            } else {
                value
                    .get("datatype")
                    .and_then(Json::as_str)
                    .map(str::to_string)
            };
            Ok(Term::Literal(Literal {
                lexical: lexical.to_string(),
                datatype,
                language,
            }))
        }
        other => Err(ResultsJsonError::shape(format!(
            "unknown term type {other:?}"
        ))),
    }
}

/// The outcome of a streaming parse: the result, any `head.warnings`, and
/// whether the row cap cut the document short.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedResult {
    pub result: QueryResult,
    pub warnings: Vec<String>,
    /// `true` when `max_rows` stopped the parse before the bindings array
    /// ended — the rest of the input was *not consumed*.
    pub truncated: bool,
}

/// Why a streaming parse stopped: the transport failed mid-body, or the
/// bytes that did arrive are not a results document.
#[derive(Debug)]
pub enum StreamError {
    Io(std::io::Error),
    Malformed(ResultsJsonError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "read error mid-results: {e}"),
            StreamError::Malformed(e) => write!(f, "{e}"),
        }
    }
}

/// Parse a results document incrementally from a byte stream, holding at
/// most `max_rows` rows (plus the parser's fixed-size read buffer) in
/// memory. On hitting the cap the parse returns immediately with
/// `truncated: true` and the remaining input *unread* — a result-bomb
/// body is cut off while parsing, never buffered whole.
///
/// Streaming constraint: `head.vars` must precede `results.bindings`
/// (the order both the W3C examples and this crate's serializer emit;
/// rows cannot be decoded before the header names their columns).
pub fn parse_stream<R: std::io::Read>(
    reader: R,
    max_rows: Option<usize>,
) -> Result<StreamedResult, StreamError> {
    StreamParser::new(reader).parse_document(max_rows)
}

/// [`parse_stream`] over an in-memory document (the simulated-transport
/// and test entry point; a byte slice never yields an I/O error).
pub fn parse_capped(
    text: &str,
    max_rows: Option<usize>,
) -> Result<StreamedResult, ResultsJsonError> {
    parse_stream(text.as_bytes(), max_rows).map_err(|e| match e {
        StreamError::Malformed(e) => e,
        StreamError::Io(e) => ResultsJsonError::shape(format!("read error: {e}")),
    })
}

/// Nesting cap for skipped (unknown) values, mirroring the DOM parser's
/// guard against degenerate nesting.
const STREAM_MAX_DEPTH: usize = 64;

struct StreamParser<R: std::io::Read> {
    reader: R,
    buf: [u8; 8192],
    pos: usize,
    len: usize,
    offset: usize,
    eof: bool,
}

impl<R: std::io::Read> StreamParser<R> {
    fn new(reader: R) -> Self {
        StreamParser {
            reader,
            buf: [0; 8192],
            pos: 0,
            len: 0,
            offset: 0,
            eof: false,
        }
    }

    fn shape(&self, msg: impl std::fmt::Display) -> StreamError {
        StreamError::Malformed(ResultsJsonError::shape(format!(
            "{msg} at offset {}",
            self.offset
        )))
    }

    fn fill(&mut self) -> Result<(), StreamError> {
        if self.pos < self.len || self.eof {
            return Ok(());
        }
        loop {
            match self.reader.read(&mut self.buf) {
                Ok(0) => {
                    self.eof = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.pos = 0;
                    self.len = n;
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(StreamError::Io(e)),
            }
        }
    }

    fn peek(&mut self) -> Result<Option<u8>, StreamError> {
        self.fill()?;
        Ok((self.pos < self.len).then(|| self.buf[self.pos]))
    }

    fn bump(&mut self) -> Result<Option<u8>, StreamError> {
        let b = self.peek()?;
        if b.is_some() {
            self.pos += 1;
            self.offset += 1;
        }
        Ok(b)
    }

    fn skip_ws(&mut self) -> Result<(), StreamError> {
        while let Some(b) = self.peek()? {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.bump()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    fn expect(&mut self, want: u8) -> Result<(), StreamError> {
        match self.bump()? {
            Some(b) if b == want => Ok(()),
            Some(b) => Err(self.shape(format_args!(
                "expected {:?}, found {:?}",
                want as char, b as char
            ))),
            None => Err(self.shape("unexpected end of document")),
        }
    }

    /// Consume a keyword like `true` / `false` / `null`.
    fn expect_keyword(&mut self, word: &str) -> Result<(), StreamError> {
        for want in word.bytes() {
            match self.bump()? {
                Some(b) if b == want => {}
                _ => return Err(self.shape(format_args!("expected {word:?}"))),
            }
        }
        Ok(())
    }

    /// Parse a JSON string (opening quote already *not* consumed).
    fn parse_string(&mut self) -> Result<String, StreamError> {
        self.expect(b'"')?;
        let mut bytes: Vec<u8> = Vec::new();
        let mut pending_surrogate: Option<u16> = None;
        loop {
            let Some(b) = self.bump()? else {
                return Err(self.shape("unterminated string"));
            };
            match b {
                b'"' => break,
                b'\\' => {
                    let Some(esc) = self.bump()? else {
                        return Err(self.shape("unterminated escape"));
                    };
                    let simple = match esc {
                        b'"' => Some(b'"'),
                        b'\\' => Some(b'\\'),
                        b'/' => Some(b'/'),
                        b'b' => Some(0x08),
                        b'f' => Some(0x0C),
                        b'n' => Some(b'\n'),
                        b'r' => Some(b'\r'),
                        b't' => Some(b'\t'),
                        b'u' => None,
                        _ => return Err(self.shape("bad escape")),
                    };
                    if let Some(c) = simple {
                        pending_surrogate = None;
                        bytes.push(c);
                        continue;
                    }
                    let mut code: u32 = 0;
                    for _ in 0..4 {
                        let Some(h) = self.bump()? else {
                            return Err(self.shape("unterminated \\u escape"));
                        };
                        let digit = (h as char)
                            .to_digit(16)
                            .ok_or_else(|| self.shape("bad \\u escape"))?;
                        code = code * 16 + digit;
                    }
                    let unit = code as u16;
                    if let Some(high) = pending_surrogate.take() {
                        if (0xDC00..=0xDFFF).contains(&unit) {
                            let c =
                                0x10000 + ((high as u32 - 0xD800) << 10) + (unit as u32 - 0xDC00);
                            let ch = char::from_u32(c)
                                .ok_or_else(|| self.shape("bad surrogate pair"))?;
                            let mut utf8 = [0u8; 4];
                            bytes.extend_from_slice(ch.encode_utf8(&mut utf8).as_bytes());
                            continue;
                        }
                        // Lone high surrogate: replacement character.
                        bytes.extend_from_slice("\u{FFFD}".as_bytes());
                    }
                    if (0xD800..=0xDBFF).contains(&unit) {
                        pending_surrogate = Some(unit);
                    } else if (0xDC00..=0xDFFF).contains(&unit) {
                        bytes.extend_from_slice("\u{FFFD}".as_bytes());
                    } else {
                        let ch =
                            char::from_u32(code).ok_or_else(|| self.shape("bad \\u escape"))?;
                        let mut utf8 = [0u8; 4];
                        bytes.extend_from_slice(ch.encode_utf8(&mut utf8).as_bytes());
                    }
                }
                0x00..=0x1F => return Err(self.shape("raw control character in string")),
                other => {
                    pending_surrogate = None;
                    bytes.push(other);
                }
            }
        }
        if pending_surrogate.is_some() {
            bytes.extend_from_slice("\u{FFFD}".as_bytes());
        }
        String::from_utf8(bytes).map_err(|_| self.shape("invalid UTF-8 in string"))
    }

    /// Skip any JSON value without materializing it.
    fn skip_value(&mut self, depth: usize) -> Result<(), StreamError> {
        if depth > STREAM_MAX_DEPTH {
            return Err(self.shape("nesting too deep"));
        }
        self.skip_ws()?;
        match self.peek()? {
            None => Err(self.shape("unexpected end of document")),
            Some(b'"') => self.parse_string().map(drop),
            Some(b'{') => {
                self.bump()?;
                self.skip_ws()?;
                if self.peek()? == Some(b'}') {
                    self.bump()?;
                    return Ok(());
                }
                loop {
                    self.skip_ws()?;
                    self.parse_string()?;
                    self.skip_ws()?;
                    self.expect(b':')?;
                    self.skip_value(depth + 1)?;
                    self.skip_ws()?;
                    match self.bump()? {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(()),
                        _ => return Err(self.shape("expected ',' or '}'")),
                    }
                }
            }
            Some(b'[') => {
                self.bump()?;
                self.skip_ws()?;
                if self.peek()? == Some(b']') {
                    self.bump()?;
                    return Ok(());
                }
                loop {
                    self.skip_value(depth + 1)?;
                    self.skip_ws()?;
                    match self.bump()? {
                        Some(b',') => continue,
                        Some(b']') => return Ok(()),
                        _ => return Err(self.shape("expected ',' or ']'")),
                    }
                }
            }
            Some(b't') => self.expect_keyword("true"),
            Some(b'f') => self.expect_keyword("false"),
            Some(b'n') => self.expect_keyword("null"),
            Some(b'-' | b'0'..=b'9') => {
                while let Some(b) = self.peek()? {
                    if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                        self.bump()?;
                    } else {
                        break;
                    }
                }
                Ok(())
            }
            Some(b) => Err(self.shape(format_args!("unexpected byte {:?}", b as char))),
        }
    }

    /// `"head": { "vars": [...], "warnings": [...], ... }`.
    fn parse_head(&mut self) -> Result<(Vec<Variable>, Vec<String>), StreamError> {
        let mut vars = Vec::new();
        let mut warnings = Vec::new();
        self.skip_ws()?;
        self.expect(b'{')?;
        self.skip_ws()?;
        if self.peek()? == Some(b'}') {
            self.bump()?;
            return Ok((vars, warnings));
        }
        loop {
            self.skip_ws()?;
            let key = self.parse_string()?;
            self.skip_ws()?;
            self.expect(b':')?;
            match key.as_str() {
                "vars" => {
                    for s in self.parse_string_array()? {
                        vars.push(Variable::new(s));
                    }
                }
                "warnings" => warnings = self.parse_string_array()?,
                _ => self.skip_value(1)?,
            }
            self.skip_ws()?;
            match self.bump()? {
                Some(b',') => continue,
                Some(b'}') => return Ok((vars, warnings)),
                _ => return Err(self.shape("expected ',' or '}' in head")),
            }
        }
    }

    fn parse_string_array(&mut self) -> Result<Vec<String>, StreamError> {
        self.skip_ws()?;
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws()?;
        if self.peek()? == Some(b']') {
            self.bump()?;
            return Ok(out);
        }
        loop {
            self.skip_ws()?;
            out.push(self.parse_string()?);
            self.skip_ws()?;
            match self.bump()? {
                Some(b',') => continue,
                Some(b']') => return Ok(out),
                _ => return Err(self.shape("expected ',' or ']'")),
            }
        }
    }

    /// One `{ "type": ..., "value": ..., ... }` term object.
    fn parse_term_object(&mut self) -> Result<Term, StreamError> {
        self.skip_ws()?;
        self.expect(b'{')?;
        let mut kind: Option<String> = None;
        let mut value: Option<String> = None;
        let mut datatype: Option<String> = None;
        let mut language: Option<String> = None;
        self.skip_ws()?;
        if self.peek()? == Some(b'}') {
            self.bump()?;
        } else {
            loop {
                self.skip_ws()?;
                let key = self.parse_string()?;
                self.skip_ws()?;
                self.expect(b':')?;
                self.skip_ws()?;
                match key.as_str() {
                    "type" => kind = Some(self.parse_string()?),
                    "value" => value = Some(self.parse_string()?),
                    "datatype" => datatype = Some(self.parse_string()?),
                    "xml:lang" => language = Some(self.parse_string()?),
                    _ => self.skip_value(1)?,
                }
                self.skip_ws()?;
                match self.bump()? {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    _ => return Err(self.shape("expected ',' or '}' in term")),
                }
            }
        }
        let kind = kind.ok_or_else(|| self.shape("term object missing \"type\""))?;
        let lexical = value.ok_or_else(|| self.shape("term object missing \"value\""))?;
        match kind.as_str() {
            "uri" => Ok(Term::Iri(lexical)),
            "bnode" => Ok(Term::BlankNode(lexical)),
            "literal" | "typed-literal" => Ok(Term::Literal(Literal {
                lexical,
                datatype: if language.is_some() { None } else { datatype },
                language,
            })),
            other => Err(self.shape(format_args!("unknown term type {other:?}"))),
        }
    }

    /// One binding object into a row under `vars`.
    fn parse_binding(&mut self, vars: &[Variable]) -> Result<Row, StreamError> {
        self.skip_ws()?;
        self.expect(b'{')?;
        let mut row: Row = vec![None; vars.len()];
        self.skip_ws()?;
        if self.peek()? == Some(b'}') {
            self.bump()?;
            return Ok(row);
        }
        loop {
            self.skip_ws()?;
            let name = self.parse_string()?;
            self.skip_ws()?;
            self.expect(b':')?;
            let idx = vars.iter().position(|v| v.name() == name).ok_or_else(|| {
                self.shape(format_args!(
                    "binding for ?{name} not declared in head.vars"
                ))
            })?;
            row[idx] = Some(self.parse_term_object()?);
            self.skip_ws()?;
            match self.bump()? {
                Some(b',') => continue,
                Some(b'}') => return Ok(row),
                _ => return Err(self.shape("expected ',' or '}' in binding")),
            }
        }
    }

    fn parse_document(mut self, max_rows: Option<usize>) -> Result<StreamedResult, StreamError> {
        let mut vars: Option<Vec<Variable>> = None;
        let mut warnings: Vec<String> = Vec::new();
        let mut boolean: Option<bool> = None;
        let mut solutions: Option<Relation> = None;

        self.skip_ws()?;
        self.expect(b'{')?;
        self.skip_ws()?;
        if self.peek()? == Some(b'}') {
            self.bump()?;
        } else {
            loop {
                self.skip_ws()?;
                let key = self.parse_string()?;
                self.skip_ws()?;
                self.expect(b':')?;
                match key.as_str() {
                    "head" => {
                        let (v, w) = self.parse_head()?;
                        vars = Some(v);
                        warnings = w;
                    }
                    "boolean" => {
                        self.skip_ws()?;
                        boolean = Some(match self.peek()? {
                            Some(b't') => {
                                self.expect_keyword("true")?;
                                true
                            }
                            Some(b'f') => {
                                self.expect_keyword("false")?;
                                false
                            }
                            _ => {
                                return Err(self.shape("\"boolean\" must be true or false"));
                            }
                        });
                    }
                    "results" => {
                        let Some(vars) = vars.as_ref() else {
                            return Err(self
                                .shape("results.bindings before head.vars in streamed document"));
                        };
                        let mut rel = Relation::new(vars.clone());
                        if self.parse_results(vars, &mut rel, max_rows)? {
                            // Truncated: stop consuming immediately.
                            return Ok(StreamedResult {
                                result: QueryResult::Solutions(rel),
                                warnings,
                                truncated: true,
                            });
                        }
                        solutions = Some(rel);
                    }
                    _ => self.skip_value(1)?,
                }
                self.skip_ws()?;
                match self.bump()? {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    _ => return Err(self.shape("expected ',' or '}'")),
                }
            }
        }

        let result = if let Some(b) = boolean {
            QueryResult::Boolean(b)
        } else if let Some(rel) = solutions {
            QueryResult::Solutions(rel)
        } else {
            return Err(self.shape("missing head.vars"));
        };
        Ok(StreamedResult {
            result,
            warnings,
            truncated: false,
        })
    }

    /// `{"bindings": [...]}`; returns `true` when the cap truncated the
    /// array (further input unread).
    fn parse_results(
        &mut self,
        vars: &[Variable],
        rel: &mut Relation,
        max_rows: Option<usize>,
    ) -> Result<bool, StreamError> {
        self.skip_ws()?;
        self.expect(b'{')?;
        self.skip_ws()?;
        if self.peek()? == Some(b'}') {
            self.bump()?;
            return Err(self.shape("missing results.bindings"));
        }
        let mut saw_bindings = false;
        loop {
            self.skip_ws()?;
            let key = self.parse_string()?;
            self.skip_ws()?;
            self.expect(b':')?;
            if key == "bindings" {
                saw_bindings = true;
                self.skip_ws()?;
                self.expect(b'[')?;
                self.skip_ws()?;
                if self.peek()? == Some(b']') {
                    self.bump()?;
                } else {
                    loop {
                        if let Some(cap) = max_rows {
                            if rel.len() >= cap {
                                return Ok(true);
                            }
                        }
                        let row = self.parse_binding(vars)?;
                        rel.push(row);
                        self.skip_ws()?;
                        match self.bump()? {
                            Some(b',') => continue,
                            Some(b']') => break,
                            _ => return Err(self.shape("expected ',' or ']' in bindings")),
                        }
                    }
                }
            } else {
                self.skip_value(1)?;
            }
            self.skip_ws()?;
            match self.bump()? {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.shape("expected ',' or '}' in results")),
            }
        }
        if !saw_bindings {
            return Err(self.shape("missing results.bindings"));
        }
        Ok(false)
    }
}

/// A malformed results document: either invalid JSON or valid JSON that
/// does not follow the SPARQL results shape.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultsJsonError {
    Json(JsonError),
    Shape(String),
}

impl ResultsJsonError {
    fn shape(msg: impl Into<String>) -> Self {
        ResultsJsonError::Shape(msg.into())
    }
}

impl std::fmt::Display for ResultsJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResultsJsonError::Json(e) => write!(f, "{e}"),
            ResultsJsonError::Shape(m) => write!(f, "not a SPARQL results document: {m}"),
        }
    }
}

impl std::error::Error for ResultsJsonError {}

impl From<JsonError> for ResultsJsonError {
    fn from(e: JsonError) -> Self {
        ResultsJsonError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    /// One row exercising every term kind plus an unbound cell.
    fn all_kinds_relation() -> Relation {
        let vars = vec![
            v("i"),
            v("b"),
            v("plain"),
            v("typed"),
            v("tagged"),
            v("unbound"),
        ];
        let mut rel = Relation::new(vars);
        rel.push(vec![
            Some(Term::iri("http://example.org/thing?q=1&x=\"quoted\"")),
            Some(Term::bnode("b42")),
            Some(Term::literal("line1\nline2\ttab")),
            Some(Term::integer(-7)),
            Some(Term::Literal(Literal::lang("grüße 😀", "de"))),
            None,
        ]);
        rel
    }

    #[test]
    fn round_trips_every_term_kind() {
        let rel = all_kinds_relation();
        let doc = serialize(&QueryResult::Solutions(rel.clone()));
        let back = parse(&doc).unwrap();
        assert_eq!(back, QueryResult::Solutions(rel));
    }

    #[test]
    fn round_trips_booleans() {
        for b in [true, false] {
            assert_eq!(
                parse(&serialize(&QueryResult::Boolean(b))).unwrap(),
                QueryResult::Boolean(b)
            );
        }
    }

    #[test]
    fn round_trips_empty_and_duplicate_rows() {
        let mut rel = Relation::new(vec![v("x")]);
        // Empty relation first.
        let doc = serialize(&QueryResult::Solutions(rel.clone()));
        assert_eq!(parse(&doc).unwrap(), QueryResult::Solutions(rel.clone()));
        // Bag semantics: duplicates must survive.
        rel.push(vec![Some(Term::iri("http://x/a"))]);
        rel.push(vec![Some(Term::iri("http://x/a"))]);
        let doc = serialize(&QueryResult::Solutions(rel.clone()));
        assert_eq!(parse(&doc).unwrap(), QueryResult::Solutions(rel));
    }

    #[test]
    fn streaming_pieces_match_serialize() {
        let rel = all_kinds_relation();
        let mut streamed = head_json(rel.vars());
        for (i, row) in rel.rows().iter().enumerate() {
            if i > 0 {
                streamed.push(',');
            }
            streamed.push_str(&binding_json(rel.vars(), row));
        }
        streamed.push_str(SOLUTIONS_TAIL);
        assert_eq!(streamed, serialize(&QueryResult::Solutions(rel)));
    }

    #[test]
    fn warnings_round_trip_in_the_head() {
        let rel = all_kinds_relation();
        let warnings = vec![
            "endpoint univ2 unreachable for sq1: connection refused".to_string(),
            "with \"quotes\" and\nnewlines".to_string(),
        ];
        let mut doc = head_json_with_warnings(rel.vars(), &warnings);
        for (i, row) in rel.rows().iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(&binding_json(rel.vars(), row));
        }
        doc.push_str(SOLUTIONS_TAIL);
        let (back, got) = parse_full(&doc).unwrap();
        assert_eq!(back, QueryResult::Solutions(rel));
        assert_eq!(got, warnings);
        // A warning-free head emits no "warnings" member at all.
        assert!(!head_json(&[v("x")]).contains("warnings"));
        // Standard documents parse with no warnings.
        let (_, none) = parse_full(&serialize(&QueryResult::Boolean(true))).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn parses_legacy_typed_literal() {
        let doc = r#"{"head":{"vars":["x"]},"results":{"bindings":[
            {"x":{"type":"typed-literal","value":"3","datatype":"http://www.w3.org/2001/XMLSchema#integer"}}
        ]}}"#;
        let QueryResult::Solutions(rel) = parse(doc).unwrap() else {
            panic!("not solutions")
        };
        assert_eq!(rel.rows()[0][0], Some(Term::integer(3)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",                                                                                     // not JSON
            "42",                                                    // not an object
            r#"{"head":{}}"#,                                        // no vars, no boolean
            r#"{"head":{"vars":["x"]}}"#,                            // no results
            r#"{"head":{"vars":[1]},"results":{"bindings":[]}}"#,    // non-string var
            r#"{"head":{"vars":["x"]},"results":{"bindings":[7]}}"#, // non-object binding
            r#"{"head":{"vars":["x"]},"results":{"bindings":[{"y":{"type":"uri","value":"u"}}]}}"#, // undeclared var
            r#"{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"wat","value":"u"}}]}}"#, // bad term type
            r#"{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"uri"}}]}}"#, // missing value
            r#"{"head":{},"boolean":"yes"}"#, // non-bool boolean
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn stream_parse_matches_dom_parse() {
        let rel = all_kinds_relation();
        let doc = serialize(&QueryResult::Solutions(rel.clone()));
        let streamed = parse_capped(&doc, None).unwrap();
        assert!(!streamed.truncated);
        assert!(streamed.warnings.is_empty());
        assert_eq!(streamed.result, QueryResult::Solutions(rel));
        assert_eq!(streamed.result, parse(&doc).unwrap());
    }

    #[test]
    fn stream_parse_booleans_and_warnings() {
        for b in [true, false] {
            let doc = boolean_json(b);
            let streamed = parse_capped(&doc, Some(0)).unwrap();
            assert_eq!(streamed.result, QueryResult::Boolean(b));
            assert!(!streamed.truncated);
        }
        let vars = [Variable::new("x")];
        let warnings = vec!["ep-2: timed out".to_string()];
        let doc = format!(
            "{}{}",
            head_json_with_warnings(&vars, &warnings),
            SOLUTIONS_TAIL
        );
        let streamed = parse_capped(&doc, None).unwrap();
        assert_eq!(streamed.warnings, warnings);
    }

    #[test]
    fn stream_cap_truncates_without_consuming_the_rest() {
        let vars = vec![Variable::new("x")];
        let mut rel = Relation::new(vars.clone());
        for i in 0..100 {
            rel.push(vec![Some(Term::iri(format!("http://x/{i}")))]);
        }
        let doc = serialize(&QueryResult::Solutions(rel.clone()));

        // Exactly at the cap: complete, not truncated.
        let full = parse_capped(&doc, Some(100)).unwrap();
        assert!(!full.truncated);
        assert_eq!(full.result, QueryResult::Solutions(rel.clone()));

        // Under the cap: truncated prefix, and the parser must stop
        // reading — garbage after the cap point is never seen.
        let cut_at = doc.find("http://x/7").unwrap();
        let poisoned = format!("{}{}", &doc[..cut_at], "\u{0}garbage not json");
        let streamed = parse_capped(&poisoned, Some(5)).unwrap();
        assert!(streamed.truncated);
        let QueryResult::Solutions(got) = streamed.result else {
            panic!("not solutions")
        };
        assert_eq!(got.len(), 5);
        assert_eq!(got.rows(), &rel.rows()[..5]);

        // A cap of zero keeps the header and drops every row.
        let zero = parse_capped(&doc, Some(0)).unwrap();
        assert!(zero.truncated);
        let QueryResult::Solutions(got) = zero.result else {
            panic!("not solutions")
        };
        assert_eq!(got.vars(), &vars[..]);
        assert!(got.is_empty());
    }

    #[test]
    fn stream_parse_rejects_what_dom_parse_rejects() {
        for bad in [
            "",
            "42",
            r#"{"head":{}}"#,
            r#"{"head":{"vars":["x"]}}"#,
            r#"{"head":{"vars":["x"]},"results":{"bindings":[{"y":{"type":"uri","value":"u"}}]}}"#,
            r#"{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"wat","value":"u"}}]}}"#,
            r#"{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"uri"}}]}}"#,
            r#"{"head":{},"boolean":"yes"}"#,
            // Streaming-specific: bindings cannot precede the header.
            r#"{"results":{"bindings":[]},"head":{"vars":["x"]}}"#,
            // Truncated mid-row.
            r#"{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"uri","#,
        ] {
            assert!(
                parse_capped(bad, None).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn stream_parse_skips_unknown_members_and_handles_escapes() {
        let doc = r#"{"junk":{"a":[1,2,{"b":null}],"c":true},
            "head":{"vars":["x"],"link":["http://meta"]},
            "results":{"distinct":false,"bindings":[
                {"x":{"type":"literal","value":"q\"A😀\n","extra":9}}
            ],"ordered":true}}"#;
        let streamed = parse_capped(doc, None).unwrap();
        let QueryResult::Solutions(rel) = streamed.result else {
            panic!("not solutions")
        };
        assert_eq!(rel.rows()[0][0], Some(Term::literal("q\"A\u{1F600}\n")));
    }
}
