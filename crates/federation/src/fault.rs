//! Deterministic fault injection for chaos testing.
//!
//! [`FaultyEndpoint`] wraps any [`SparqlEndpoint`] and injects the failure
//! modes real Linked Data endpoints exhibit — latency spikes, dropped
//! connections, 5xx bursts, malformed result bodies, or a hard outage —
//! driven by a seeded SplitMix64 stream so every run is reproducible from
//! its seed. The wrapper owns the same retry budget and
//! [`EndpointHealth`] breaker as the HTTP transport, so chaos tests
//! exercise exactly the failure semantics production requests see.
//!
//! The fault profile is switchable at runtime (`set_faults`), which is how
//! the chaos suite demonstrates breaker *recovery*: inject a hard outage,
//! watch the breaker open, clear the faults, and assert the half-open
//! probe closes it again.

use crate::endpoint::{EndpointError, SparqlEndpoint};
use crate::erh::{
    Admission, BreakerConfig, BreakerState, Deadline, EndpointHealth, HealthSnapshot,
};
use crate::network::TrafficSnapshot;
use lusail_sparql::ast::Query;
use lusail_store::eval::QueryResult;
use lusail_store::StoreStats;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which faults to inject, with what probability. Rates are independent
/// per attempt and checked in field order; the first one that fires wins.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// The endpoint is completely down: every attempt is a dropped
    /// connection, regardless of the rates below.
    pub hard_down: bool,
    /// The endpoint accepts every request and then never responds: each
    /// attempt blocks until the query's deadline passes or its cancel
    /// token trips. The wedge the lifecycle watchdog exists to reap.
    pub hang: bool,
    /// Every forwarded plain `SELECT` (not ASK, not an aggregate — so
    /// analysis probes pass through) panics instead of answering, to
    /// prove the service's panic containment. The panic unwinds through
    /// the engine to whoever called it.
    pub panic_on_select: bool,
    /// Probability an attempt's connection drops mid-request.
    pub drop_rate: f64,
    /// Probability an attempt returns an HTTP 5xx.
    pub error_rate: f64,
    /// Probability an attempt returns an unparseable result body
    /// (a *rejection*: not retried, does not trip the breaker — matching
    /// how the HTTP client treats malformed documents).
    pub malformed_rate: f64,
    /// Probability an attempt first stalls for [`spike`](Self::spike).
    pub spike_rate: f64,
    /// Length of an injected latency spike.
    pub spike: Duration,
    /// Deterministic mid-run death: after this many attempts have been
    /// forwarded to the wrapped endpoint, every further attempt drops as
    /// if [`hard_down`](Self::hard_down) — how the chaos suite kills an
    /// endpoint mid-wave at a reproducible point instead of a wall-clock
    /// one. `None` means the endpoint never dies this way.
    pub fail_after: Option<u64>,
    /// Result bomb: every plain `SELECT` (not ASK, not an aggregate — so
    /// analysis probes pass through untouched) answers with this many
    /// fabricated rows, regardless of the real data. Models a hostile or
    /// broken endpoint flooding the federator; drives the `mem-chaos`
    /// suite's proof that a budgeted engine survives it.
    pub bomb_rows: Option<usize>,
    /// Silent truncation: every plain `SELECT` answer is capped at this
    /// many rows with a clean `200 OK` and no error — the DBpedia-style
    /// result limit. ASK and aggregate (COUNT) queries pass through
    /// truthfully, exactly like a real capping server whose `COUNT`
    /// aggregates are computed server-side: the honest counts are what
    /// lets the integrity layer detect the truncation and page the rest.
    pub silent_truncate: Option<usize>,
    /// Miscounting: every `COUNT` aggregate answer is multiplied by this
    /// factor (and plain `SELECT`s answer truthfully), modeling an
    /// endpoint whose statistics lie about its data. Recovery paging
    /// finds nothing beyond the real rows, the claim never reconciles,
    /// and the endpoint earns divergence strikes until quarantined.
    pub miscount_factor: Option<f64>,
}

impl FaultProfile {
    /// No faults: the wrapper forwards transparently.
    pub fn none() -> Self {
        FaultProfile {
            hard_down: false,
            hang: false,
            panic_on_select: false,
            drop_rate: 0.0,
            error_rate: 0.0,
            malformed_rate: 0.0,
            spike_rate: 0.0,
            spike: Duration::ZERO,
            fail_after: None,
            bomb_rows: None,
            silent_truncate: None,
            miscount_factor: None,
        }
    }

    /// A complete outage.
    pub fn hard_down() -> Self {
        FaultProfile {
            hard_down: true,
            ..FaultProfile::none()
        }
    }

    /// Accept requests but never answer them (see [`hang`](Self::hang)).
    pub fn hang() -> Self {
        FaultProfile {
            hang: true,
            ..FaultProfile::none()
        }
    }

    /// Panic on every forwarded plain `SELECT` (see
    /// [`panic_on_select`](Self::panic_on_select)).
    pub fn panics_on_select() -> Self {
        FaultProfile {
            panic_on_select: true,
            ..FaultProfile::none()
        }
    }

    /// Healthy for the first `served` forwarded attempts, hard-down after.
    pub fn dies_after(served: u64) -> Self {
        FaultProfile {
            fail_after: Some(served),
            ..FaultProfile::none()
        }
    }

    /// Answer every plain `SELECT` with `rows` fabricated rows.
    pub fn result_bomb(rows: usize) -> Self {
        FaultProfile {
            bomb_rows: Some(rows),
            ..FaultProfile::none()
        }
    }

    /// Silently cap every plain `SELECT` at `cap` rows, `200 OK` (see
    /// [`silent_truncate`](Self::silent_truncate)).
    pub fn silent_truncate(cap: usize) -> Self {
        FaultProfile {
            silent_truncate: Some(cap),
            ..FaultProfile::none()
        }
    }

    /// Multiply every `COUNT` answer by `factor` (see
    /// [`miscount_factor`](Self::miscount_factor)).
    pub fn miscounts(factor: f64) -> Self {
        FaultProfile {
            miscount_factor: Some(factor),
            ..FaultProfile::none()
        }
    }
}

/// Retry/backoff budget and the simulated cost of a failed attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyConfig {
    /// Additional attempts after the first, on injected transport faults.
    pub retries: u32,
    /// Sleep before the first retry; doubles on each subsequent one.
    pub backoff: Duration,
    /// Wall-clock cost of one failed attempt (the time a real client
    /// would spend discovering the connection is dead).
    pub failure_latency: Duration,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for FaultyConfig {
    fn default() -> Self {
        FaultyConfig {
            retries: 2,
            backoff: Duration::from_millis(2),
            failure_latency: Duration::from_millis(5),
            breaker: BreakerConfig::default(),
        }
    }
}

/// In-tree SplitMix64 step (the `workloads` crate depends on this one, so
/// its generator cannot be imported here).
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn roll(state: &mut u64) -> f64 {
    (splitmix_next(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

struct FaultState {
    profile: FaultProfile,
    rng: u64,
    /// Attempts forwarded to the wrapped endpoint so far (drives
    /// [`FaultProfile::fail_after`]).
    served: u64,
}

/// A fault-injecting wrapper around another endpoint (see module docs).
pub struct FaultyEndpoint {
    inner: Arc<dyn SparqlEndpoint>,
    config: FaultyConfig,
    state: Mutex<FaultState>,
    health: EndpointHealth,
}

impl FaultyEndpoint {
    /// Wrap `inner`, injecting `profile` faults from the seeded stream.
    pub fn new(inner: Arc<dyn SparqlEndpoint>, seed: u64, profile: FaultProfile) -> Self {
        FaultyEndpoint::with_config(inner, seed, profile, FaultyConfig::default())
    }

    /// Wrap `inner` with explicit retry/breaker tuning.
    pub fn with_config(
        inner: Arc<dyn SparqlEndpoint>,
        seed: u64,
        profile: FaultProfile,
        config: FaultyConfig,
    ) -> Self {
        let health = EndpointHealth::new(config.breaker);
        FaultyEndpoint {
            inner,
            config,
            state: Mutex::new(FaultState {
                profile,
                rng: seed,
                served: 0,
            }),
            health,
        }
    }

    /// Replace the fault profile at runtime (e.g. clear faults so a chaos
    /// test can watch the breaker recover). Resets the served-attempt
    /// counter, so a fresh `fail_after` window starts from zero.
    pub fn set_faults(&self, profile: FaultProfile) {
        let mut state = self.lock_state();
        state.profile = profile;
        state.served = 0;
    }

    /// The active fault profile.
    pub fn faults(&self) -> FaultProfile {
        self.lock_state().profile
    }

    /// This wrapper's health registry snapshot (also available through
    /// [`SparqlEndpoint::health`]).
    pub fn health_snapshot(&self) -> HealthSnapshot {
        self.health.snapshot()
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Inflate a successful plain-`SELECT` result to the profile's bomb
    /// size, keeping the real header so the response stays well-shaped —
    /// the point is to flood the federator with *valid* rows. ASK and
    /// aggregate (COUNT) queries pass through so source selection and
    /// cardinality probes behave normally and execution reaches the
    /// subquery wave.
    fn maybe_bomb(&self, query: &Query, result: QueryResult) -> QueryResult {
        let Some(rows) = self.lock_state().profile.bomb_rows else {
            return result;
        };
        let QueryResult::Solutions(rel) = &result else {
            return result;
        };
        if !is_plain_select(query) || rel.vars().is_empty() {
            return result;
        }
        let vars = rel.vars().to_vec();
        let mut bomb = lusail_sparql::solution::Relation::new(vars.clone());
        for i in 0..rows {
            bomb.push(
                (0..vars.len())
                    .map(|c| {
                        Some(lusail_rdf::Term::iri(format!(
                            "http://bomb.example.org/r{i:08}/c{c}"
                        )))
                    })
                    .collect(),
            );
        }
        QueryResult::Solutions(bomb)
    }

    /// Apply the lying-endpoint profile knobs to a successful answer:
    /// silently cap plain-`SELECT` rows at `silent_truncate` (a clean
    /// `200 OK`, no error anywhere), and multiply `COUNT` aggregate
    /// answers by `miscount_factor`. Both are pure functions of the
    /// profile — no randomness — so they are trivially deterministic
    /// under `LUSAIL_CHAOS_SEED`.
    fn maybe_lie(&self, query: &Query, mut result: QueryResult) -> QueryResult {
        let profile = self.lock_state().profile;
        if let Some(cap) = profile.silent_truncate {
            if is_plain_select(query) {
                if let QueryResult::Solutions(rel) = &mut result {
                    rel.rows_mut().truncate(cap);
                }
            }
        }
        if let Some(factor) = profile.miscount_factor {
            if is_count_select(query) {
                if let QueryResult::Solutions(rel) = &mut result {
                    if let Some(cell) = rel.rows_mut().first_mut().and_then(|r| r.first_mut()) {
                        let real = cell
                            .as_ref()
                            .and_then(|t| t.as_literal())
                            .and_then(|l| l.as_i64())
                            .unwrap_or(0);
                        let lied = ((real as f64) * factor).round().max(0.0) as i64;
                        *cell = Some(lusail_rdf::Term::integer(lied));
                    }
                }
            }
        }
        result
    }

    /// Decide what happens to one attempt, consuming randomness under the
    /// lock so concurrent requests still draw a deterministic stream.
    fn next_fault(&self) -> InjectedFault {
        let mut state = self.lock_state();
        let p = state.profile;
        if p.hang {
            return InjectedFault::Hang;
        }
        if p.hard_down {
            return InjectedFault::Drop;
        }
        if let Some(limit) = p.fail_after {
            if state.served >= limit {
                return InjectedFault::Drop;
            }
        }
        if p.drop_rate > 0.0 && roll(&mut state.rng) < p.drop_rate {
            return InjectedFault::Drop;
        }
        if p.error_rate > 0.0 && roll(&mut state.rng) < p.error_rate {
            return InjectedFault::ServerError;
        }
        if p.malformed_rate > 0.0 && roll(&mut state.rng) < p.malformed_rate {
            return InjectedFault::Malformed;
        }
        if p.spike_rate > 0.0 && roll(&mut state.rng) < p.spike_rate {
            state.served += 1;
            return InjectedFault::Spike(p.spike);
        }
        state.served += 1;
        InjectedFault::None
    }
}

enum InjectedFault {
    None,
    Spike(Duration),
    Drop,
    Hang,
    ServerError,
    Malformed,
}

/// A plain `SELECT` — not ASK, not an aggregate — i.e. the query shapes
/// carrying real subquery work rather than analysis probes.
fn is_plain_select(query: &Query) -> bool {
    match &query.form {
        lusail_sparql::ast::QueryForm::Ask(_) => false,
        lusail_sparql::ast::QueryForm::Select(s) => matches!(
            s.projection,
            lusail_sparql::ast::Projection::All | lusail_sparql::ast::Projection::Vars(_)
        ),
    }
}

/// A `SELECT (COUNT(…) AS ?v)` — the shape of cardinality probes and of
/// the integrity layer's verification queries.
fn is_count_select(query: &Query) -> bool {
    match &query.form {
        lusail_sparql::ast::QueryForm::Ask(_) => false,
        lusail_sparql::ast::QueryForm::Select(s) => {
            matches!(s.projection, lusail_sparql::ast::Projection::Count { .. })
        }
    }
}

impl SparqlEndpoint for FaultyEndpoint {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn execute_within(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<QueryResult, EndpointError> {
        if let Admission::Rejected { retry_in } = self.health.admit() {
            return Err(EndpointError::circuit_open(self.name(), retry_in));
        }
        let attempts = self.config.retries + 1;
        let mut made = 0u32;
        let mut last_failure = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                let pause = self.config.backoff * (1 << (attempt - 1).min(16));
                deadline.pause(pause);
                if deadline.expired() {
                    return Err(EndpointError::expired(self.name(), &deadline));
                }
                self.health.record_retry();
            }
            if deadline.expired() {
                return Err(EndpointError::expired(self.name(), &deadline));
            }
            made = attempt + 1;
            let fault = self.next_fault();
            let failure = match fault {
                InjectedFault::None => None,
                InjectedFault::Spike(spike) => {
                    deadline.pause(spike);
                    if deadline.expired() {
                        return Err(EndpointError::expired(self.name(), &deadline));
                    }
                    None
                }
                InjectedFault::Hang => {
                    // Accepted, never answered. A wedged upstream does not
                    // honor our time budget, so with a cancel token
                    // attached only the token frees the slot — the query
                    // wedges right past its deadline, which is precisely
                    // the failure the service watchdog exists to reap.
                    // Without a token, the hard deadline is the sole
                    // escape (an unbounded deadline really does hang —
                    // that is the fault being modeled).
                    match deadline.token() {
                        Some(token) => {
                            while token.wait_timeout(Duration::from_millis(20)).is_none() {}
                        }
                        None => {
                            while !deadline.expired() {
                                deadline.pause(Duration::from_millis(20));
                            }
                        }
                    }
                    return Err(EndpointError::expired(self.name(), &deadline));
                }
                InjectedFault::Drop => Some("connection dropped (injected fault)"),
                InjectedFault::ServerError => Some("HTTP 503 (injected fault)"),
                InjectedFault::Malformed => {
                    // Malformed bodies are rejections, like the HTTP
                    // client's "unparseable results": no retry, no breaker
                    // strike — the transport itself worked.
                    self.health.record_success(self.config.failure_latency);
                    return Err(EndpointError::rejected(
                        self.name(),
                        "unparseable results (injected fault)",
                    ));
                }
            };
            if let Some(message) = failure {
                deadline.pause(self.config.failure_latency);
                if deadline.expired() {
                    return Err(EndpointError::expired(self.name(), &deadline));
                }
                self.health.record_failure();
                last_failure = message.to_string();
                if self.health.state() == BreakerState::Open {
                    break;
                }
                continue;
            }
            let started = Instant::now();
            return match self.inner.execute_within(query, deadline.clone()) {
                Ok(result) => {
                    self.health.record_success(started.elapsed());
                    if self.lock_state().profile.panic_on_select && is_plain_select(query) {
                        panic!("injected fault: endpoint panicked evaluating a SELECT");
                    }
                    Ok(self.maybe_lie(query, self.maybe_bomb(query, result)))
                }
                // The wrapped endpoint's own failures pass through with
                // their kind intact; transport ones count against the
                // shared breaker here (the wrapper *is* the transport).
                Err(e) => {
                    if e.kind == crate::FailureKind::Transport {
                        self.health.record_failure();
                    }
                    Err(e)
                }
            };
        }
        Err(EndpointError::transport(
            self.name(),
            format!("giving up after {made} attempts: {last_failure}"),
        ))
    }

    fn traffic(&self) -> TrafficSnapshot {
        self.inner.traffic()
    }

    fn reset_traffic(&self) {
        self.inner.reset_traffic();
    }

    fn health(&self) -> Option<HealthSnapshot> {
        Some(self.health.snapshot())
    }

    fn set_quarantined(&self, on: bool) {
        self.health.set_quarantined(on);
    }

    fn collect_stats(&self) -> Option<StoreStats> {
        self.inner.collect_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{FailureKind, SimulatedEndpoint};
    use crate::network::NetworkProfile;
    use lusail_rdf::{Graph, Term};
    use lusail_sparql::parse_query;
    use lusail_store::Store;

    fn wrapped(seed: u64, profile: FaultProfile, config: FaultyConfig) -> FaultyEndpoint {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::iri("http://x/b"),
        );
        let inner = Arc::new(SimulatedEndpoint::new(
            "chaotic",
            Store::from_graph(&g),
            NetworkProfile::instant(),
        ));
        FaultyEndpoint::with_config(inner, seed, profile, config)
    }

    fn fast_config() -> FaultyConfig {
        FaultyConfig {
            retries: 2,
            backoff: Duration::from_millis(1),
            failure_latency: Duration::from_millis(1),
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_millis(30),
                ewma_alpha: 0.2,
            },
        }
    }

    fn query() -> Query {
        parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap()
    }

    #[test]
    fn no_faults_forwards_transparently() {
        let ep = wrapped(1, FaultProfile::none(), fast_config());
        assert_eq!(ep.select(&query()).unwrap().len(), 1);
        assert_eq!(ep.name(), "chaotic");
        let h = ep.health_snapshot();
        assert_eq!((h.requests, h.failures), (1, 0));
    }

    #[test]
    fn hard_down_burns_retries_then_opens_breaker() {
        let ep = wrapped(2, FaultProfile::hard_down(), fast_config());
        let err = ep.select(&query()).unwrap_err();
        assert_eq!(err.kind, FailureKind::Transport);
        assert!(err.message.contains("3 attempts"), "{err}");
        assert!(err.message.contains("dropped"), "{err}");
        // Threshold 3 was hit during those attempts: now failing fast.
        let err = ep.select(&query()).unwrap_err();
        assert_eq!(err.kind, FailureKind::CircuitOpen);
        assert_eq!(ep.health_snapshot().breaker, BreakerState::Open);
    }

    #[test]
    fn recovery_after_faults_clear() {
        let ep = wrapped(3, FaultProfile::hard_down(), fast_config());
        assert!(ep.select(&query()).is_err());
        assert_eq!(ep.health_snapshot().breaker, BreakerState::Open);
        ep.set_faults(FaultProfile::none());
        std::thread::sleep(Duration::from_millis(40));
        // Cooldown elapsed: the probe goes through and closes the breaker.
        assert_eq!(ep.select(&query()).unwrap().len(), 1);
        assert_eq!(ep.health_snapshot().breaker, BreakerState::Closed);
    }

    #[test]
    fn malformed_bodies_are_rejections_not_transport_failures() {
        let ep = wrapped(
            4,
            FaultProfile {
                malformed_rate: 1.0,
                ..FaultProfile::none()
            },
            fast_config(),
        );
        let err = ep.select(&query()).unwrap_err();
        assert_eq!(err.kind, FailureKind::Rejected);
        assert!(err.message.contains("unparseable"), "{err}");
        let h = ep.health_snapshot();
        assert_eq!(h.failures, 0, "rejections must not trip the breaker");
        assert_eq!(h.breaker, BreakerState::Closed);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let profile = FaultProfile {
            drop_rate: 0.4,
            error_rate: 0.2,
            ..FaultProfile::none()
        };
        let observe = |seed: u64| -> Vec<bool> {
            let ep = wrapped(seed, profile, fast_config());
            (0..30).map(|_| ep.select(&query()).is_ok()).collect()
        };
        assert_eq!(observe(42), observe(42), "equal seeds must replay");
        assert_ne!(observe(42), observe(43), "different seeds must diverge");
    }

    #[test]
    fn latency_spikes_delay_but_succeed() {
        let ep = wrapped(
            5,
            FaultProfile {
                spike_rate: 1.0,
                spike: Duration::from_millis(25),
                ..FaultProfile::none()
            },
            fast_config(),
        );
        let started = Instant::now();
        assert_eq!(ep.select(&query()).unwrap().len(), 1);
        assert!(started.elapsed() >= Duration::from_millis(25));
        // A spike that outlives the query budget turns into a deadline
        // error instead of stalling the full spike.
        let started = Instant::now();
        let err = ep
            .select_within(&query(), Deadline::within(Duration::from_millis(5)))
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::Deadline);
        assert!(started.elapsed() < Duration::from_millis(25));
    }

    #[test]
    fn fail_after_kills_the_endpoint_at_a_deterministic_point() {
        let ep = wrapped(7, FaultProfile::dies_after(3), fast_config());
        for _ in 0..3 {
            assert_eq!(ep.select(&query()).unwrap().len(), 1);
        }
        let err = ep.select(&query()).unwrap_err();
        assert_eq!(err.kind, FailureKind::Transport);
        assert!(err.message.contains("dropped"), "{err}");
        // Clearing the faults resets the served window.
        ep.set_faults(FaultProfile::dies_after(1));
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(ep.select(&query()).unwrap().len(), 1);
        assert!(ep.select(&query()).is_err());
    }

    #[test]
    fn result_bomb_inflates_selects_but_spares_ask_and_count() {
        let ep = wrapped(8, FaultProfile::result_bomb(5000), fast_config());
        let rel = ep.select(&query()).unwrap();
        assert_eq!(rel.len(), 5000, "SELECT must get the fabricated flood");
        assert_eq!(rel.vars().len(), 1, "the real header is preserved");
        assert!(
            rel.rows()[0][0]
                .as_ref()
                .and_then(|t| t.as_iri())
                .unwrap()
                .starts_with("http://bomb.example.org/"),
            "bomb rows are fabricated"
        );
        // Deterministic: the same row is fabricated every time.
        assert_eq!(ep.select(&query()).unwrap().rows()[0], rel.rows()[0]);

        // ASK probes (source selection) answer truthfully.
        let ask = parse_query("ASK WHERE { ?s <http://x/p> ?o }").unwrap();
        assert!(ep.ask(&ask).unwrap());
        // COUNT probes (cardinality estimation) answer truthfully.
        let count = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s <http://x/p> ?o }").unwrap();
        let counted = ep.select(&count).unwrap();
        assert_eq!(counted.len(), 1, "aggregates must not be bombed");
    }

    #[test]
    fn silent_truncate_caps_selects_but_answers_counts_truthfully() {
        let ep = wrapped(11, FaultProfile::silent_truncate(0), fast_config());
        // A clean 200 OK with zero rows — no error anywhere to catch.
        assert_eq!(ep.select(&query()).unwrap().len(), 0);
        // ASK and COUNT pass through truthfully: the honest COUNT is the
        // signal the integrity layer uses to detect the truncation.
        let ask = parse_query("ASK WHERE { ?s <http://x/p> ?o }").unwrap();
        assert!(ep.ask(&ask).unwrap());
        let count = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s <http://x/p> ?o }").unwrap();
        assert_eq!(ep.count(&count).unwrap(), 1);
        // A cap above the result size leaves it untouched; deterministic.
        let ep = wrapped(11, FaultProfile::silent_truncate(5), fast_config());
        assert_eq!(ep.select(&query()).unwrap().len(), 1);
        assert_eq!(
            ep.health_snapshot().failures,
            0,
            "200 OK means no breaker strikes"
        );
    }

    #[test]
    fn miscounts_inflates_counts_but_answers_selects_truthfully() {
        let ep = wrapped(12, FaultProfile::miscounts(20.0), fast_config());
        // SELECTs deliver the real single row.
        assert_eq!(ep.select(&query()).unwrap().len(), 1);
        // COUNT claims 20× the truth, twice in a row (deterministic).
        let count = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s <http://x/p> ?o }").unwrap();
        assert_eq!(ep.count(&count).unwrap(), 20);
        assert_eq!(ep.count(&count).unwrap(), 20);
        let h = ep.health_snapshot();
        assert_eq!(h.failures, 0, "a lying endpoint never trips the breaker");
    }

    #[test]
    fn quarantine_flag_round_trips_through_health() {
        let ep = wrapped(13, FaultProfile::none(), fast_config());
        assert!(!ep.health().unwrap().quarantined);
        ep.set_quarantined(true);
        assert!(ep.health().unwrap().quarantined);
        ep.set_quarantined(false);
        assert!(!ep.health().unwrap().quarantined);
    }

    #[test]
    fn hang_blocks_until_deadline_or_cancel() {
        use crate::cancel::{CancelReason, CancelToken};
        let ep = Arc::new(wrapped(9, FaultProfile::hang(), fast_config()));
        // Token-less: the hard time deadline is the only escape.
        let started = Instant::now();
        let err = ep
            .select_within(&query(), Deadline::within(Duration::from_millis(40)))
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::Deadline);
        assert!(started.elapsed() >= Duration::from_millis(40));
        // With a token attached the wedge ignores the clock: the call is
        // still blocked well past its deadline, and only the token frees
        // it — with the cancellation, not a timeout, as the verdict.
        let token = CancelToken::new();
        let deadline = Deadline::within(Duration::from_millis(40)).with_token(token.clone());
        let hung = std::thread::spawn({
            let ep = Arc::clone(&ep);
            move || ep.select_within(&query(), deadline).unwrap_err()
        });
        std::thread::sleep(Duration::from_millis(150));
        assert!(
            !hung.is_finished(),
            "a wedged endpoint must outlive its time deadline"
        );
        token.cancel(CancelReason::AdminCancelled);
        let err = hung.join().unwrap();
        assert_eq!(err.kind, FailureKind::Cancelled);
    }

    #[test]
    fn injected_panic_fires_on_select_but_spares_probes() {
        let ep = wrapped(10, FaultProfile::panics_on_select(), fast_config());
        // Analysis probes pass through untouched.
        let ask = parse_query("ASK WHERE { ?s <http://x/p> ?o }").unwrap();
        assert!(ep.ask(&ask).unwrap());
        let count = parse_query("SELECT (COUNT(*) AS ?c) WHERE { ?s <http://x/p> ?o }").unwrap();
        assert_eq!(ep.select(&count).unwrap().len(), 1);
        // The real subquery panics.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ep.select(&query())));
        assert!(caught.is_err(), "plain SELECT must panic");
    }

    #[test]
    fn five_xx_bursts_are_retried() {
        // error_rate 1.0 exhausts the budget with 503s.
        let ep = wrapped(
            6,
            FaultProfile {
                error_rate: 1.0,
                ..FaultProfile::none()
            },
            fast_config(),
        );
        let err = ep.select(&query()).unwrap_err();
        assert_eq!(err.kind, FailureKind::Transport);
        assert!(err.message.contains("503"), "{err}");
        let h = ep.health_snapshot();
        assert_eq!(h.retries, 2);
        assert_eq!(h.failures, 3);
    }
}
