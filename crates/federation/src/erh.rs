//! The Elastic Request Handler (ERH): a thread pool that fans requests out
//! to endpoints in parallel (Section 2 of the paper).
//!
//! LADE uses it to evaluate check queries at all relevant endpoints
//! simultaneously; SAPE uses it to collect non-delayed subquery results
//! with one logical thread per endpoint. The pool is sized by the number of
//! available cores by default, exactly as the paper describes ERH sizing.

use std::sync::{mpsc, Arc, Mutex};

/// A fixed-size worker pool for blocking endpoint requests.
///
/// `run` executes a batch of independent closures and returns their results
/// in submission order. Closures block on simulated network sleeps, so a
/// pool larger than the core count still yields real concurrency — matching
/// how federated engines overlap waiting on many HTTP requests.
pub struct RequestHandler {
    threads: usize,
}

impl RequestHandler {
    /// A pool with an explicit thread count. Counts are clamped to ≥ 1.
    pub fn new(threads: usize) -> Self {
        RequestHandler {
            threads: threads.max(1),
        }
    }

    /// A pool sized like the paper's ERH: the number of physical cores, but
    /// never fewer than 4 so network waits still overlap on small machines.
    pub fn per_core() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        RequestHandler::new(cores.max(4))
    }

    /// The configured degree of parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute all `tasks` on the pool, returning results in order.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        // Run small batches inline to avoid thread spawn overhead.
        if n == 1 || self.threads == 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }

        // Workers pull from a shared queue (a locked iterator — std has no
        // MPMC channel) and push results through an MPSC channel.
        let queue = Mutex::new(tasks.into_iter().enumerate());
        let (res_tx, res_rx) = mpsc::channel::<(usize, T)>();

        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                let res_tx = res_tx.clone();
                scope.spawn(move || loop {
                    let Some((i, f)) = queue.lock().expect("task queue poisoned").next() else {
                        break;
                    };
                    let r = f();
                    if res_tx.send((i, r)).is_err() {
                        break;
                    }
                });
            }
            drop(res_tx);
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            while let Ok((i, r)) = res_rx.recv() {
                slots[i] = Some(r);
            }
            slots
                .into_iter()
                .map(|s| s.expect("worker completed every task"))
                .collect()
        })
    }

    /// Map `f` over `items` in parallel, preserving order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Send + Sync,
    {
        let f = Arc::new(f);
        self.run(
            items
                .into_iter()
                .map(|item| {
                    let f = Arc::clone(&f);
                    move || f(item)
                })
                .collect(),
        )
    }
}

impl Default for RequestHandler {
    fn default() -> Self {
        RequestHandler::per_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn results_in_submission_order() {
        let pool = RequestHandler::new(4);
        let out = pool.map((0..100).collect(), |i: usize| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let pool = RequestHandler::new(4);
        let empty: Vec<usize> = pool.map(Vec::<usize>::new(), |i| i);
        assert!(empty.is_empty());
        assert_eq!(pool.map(vec![7], |i: usize| i + 1), vec![8]);
    }

    #[test]
    fn sleeps_overlap() {
        // 8 tasks × 20 ms each on 8 threads should take ≪ 160 ms.
        let pool = RequestHandler::new(8);
        let start = Instant::now();
        pool.map((0..8).collect(), |_: usize| {
            std::thread::sleep(Duration::from_millis(20))
        });
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(120),
            "tasks did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let pool = RequestHandler::new(3);
        let counter = AtomicUsize::new(0);
        pool.map((0..50).collect(), |_: usize| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn thread_count_clamped() {
        assert_eq!(RequestHandler::new(0).threads(), 1);
    }
}
