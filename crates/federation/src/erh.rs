//! The Elastic Request Handler (ERH): a thread pool that fans requests out
//! to endpoints in parallel (Section 2 of the paper), plus the failure
//! machinery the pool's clients share — query [`Deadline`] budgets and the
//! per-endpoint [`EndpointHealth`] registry with its circuit breaker.
//!
//! LADE uses the pool to evaluate check queries at all relevant endpoints
//! simultaneously; SAPE uses it to collect non-delayed subquery results
//! with one logical thread per endpoint. The pool is sized by the number of
//! available cores by default, exactly as the paper describes ERH sizing.
//!
//! Real Linked Data endpoints are slow, flaky, and frequently down, so the
//! fan-out layer owns the fault semantics: a panicking task is caught and
//! surfaced after its siblings complete (instead of poisoning the shared
//! queue), an expired deadline cancels tasks that have not started yet, and
//! the breaker lets repeated transport failures fail fast instead of each
//! burning a full retry budget.

use crate::cancel::{CancelReason, CancelToken};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// A query-level time budget, threaded from `lusail query --timeout` down
/// through every blocking call (check queries, subqueries, bound joins,
/// HTTP attempts). `Deadline::none()` means unlimited.
///
/// Every layer asks the same deadline for `remaining()` instead of using a
/// fixed per-attempt timeout, so a query that has already spent its budget
/// on one slow endpoint does not grant later requests a fresh allowance.
///
/// A deadline may additionally carry a [`CancelToken`]: `expired()` then
/// reports true the moment the token trips, so every existing deadline
/// check — `map_cancellable`, per-attempt clamps, retry-loop guards —
/// doubles as a cancellation point without any call-site change. Sleeps
/// should go through [`Deadline::pause`], which wakes early on cancel.
#[derive(Debug, Clone)]
pub struct Deadline {
    at: Option<Instant>,
    token: Option<CancelToken>,
}

/// Equality ignores the token: two deadlines compare equal when their time
/// budgets do, which is what the arithmetic tests and clamp logic care
/// about.
impl PartialEq for Deadline {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}

impl Eq for Deadline {}

impl Deadline {
    /// No deadline: every wait is unlimited.
    pub fn none() -> Self {
        Deadline {
            at: None,
            token: None,
        }
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + budget),
            token: None,
        }
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline {
            at: Some(instant),
            token: None,
        }
    }

    /// The same time budget, additionally watching `token`.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn token(&self) -> Option<&CancelToken> {
        self.token.as_ref()
    }

    /// Why the attached token was cancelled, if it was.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        self.token.as_ref().and_then(|t| t.reason())
    }

    /// The absolute expiry instant, if any.
    pub fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// Whether the time budget alone is exhausted, ignoring the token.
    pub fn time_expired(&self) -> bool {
        match self.at {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }

    /// Whether the budget is exhausted — by time, or by cancellation.
    pub fn expired(&self) -> bool {
        self.cancel_reason().is_some() || self.time_expired()
    }

    /// Time left, or `None` when unlimited. An expired deadline reports
    /// `Some(ZERO)`, never a negative value; a cancelled token makes the
    /// remaining budget zero regardless of the clock.
    pub fn remaining(&self) -> Option<Duration> {
        if self.cancel_reason().is_some() {
            return Some(Duration::ZERO);
        }
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// Clamp a per-attempt timeout to the remaining budget.
    pub fn clamp(&self, timeout: Duration) -> Duration {
        match self.remaining() {
            Some(rem) => timeout.min(rem),
            None => timeout,
        }
    }

    /// Sleep for `pause`, clamped to the remaining budget and interrupted
    /// immediately if the token trips. The drop-in replacement for
    /// `thread::sleep(deadline.clamp(pause))` in backoff and simulated-
    /// latency paths.
    pub fn pause(&self, pause: Duration) {
        let allowed = self.clamp(pause);
        if allowed.is_zero() {
            return;
        }
        match &self.token {
            Some(token) => {
                let _ = token.wait_timeout(allowed);
            }
            None => std::thread::sleep(allowed),
        }
    }
}

/// A task that panicked inside [`RequestHandler::run_catch`], carrying the
/// panic message (when it was a string payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload rendered as text, or `"task panicked"` for
    /// non-string payloads.
    pub message: String,
}

impl TaskPanic {
    fn from_payload(payload: &(dyn Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "task panicked".to_string()
        };
        TaskPanic { message }
    }
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// A fixed-size worker pool for blocking endpoint requests.
///
/// `run` executes a batch of independent closures and returns their results
/// in submission order. Closures block on simulated network sleeps, so a
/// pool larger than the core count still yields real concurrency — matching
/// how federated engines overlap waiting on many HTTP requests.
pub struct RequestHandler {
    threads: usize,
}

impl RequestHandler {
    /// A pool with an explicit thread count. Counts are clamped to ≥ 1.
    pub fn new(threads: usize) -> Self {
        RequestHandler {
            threads: threads.max(1),
        }
    }

    /// A pool sized like the paper's ERH: the number of physical cores, but
    /// never fewer than 4 so network waits still overlap on small machines.
    pub fn per_core() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        RequestHandler::new(cores.max(4))
    }

    /// The configured degree of parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute every task, catching panics per task so one bad task cannot
    /// poison the queue or strand its siblings' results.
    fn run_raw<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, Box<dyn Any + Send>>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        // Run small batches inline to avoid thread spawn overhead. Panics
        // are still caught so later tasks in the batch run.
        if n == 1 || self.threads == 1 {
            return tasks
                .into_iter()
                .map(|f| catch_unwind(AssertUnwindSafe(f)))
                .collect();
        }

        // Workers pull from a shared queue (a locked iterator — std has no
        // MPMC channel) and push results through an MPSC channel.
        let queue = Mutex::new(tasks.into_iter().enumerate());
        let (res_tx, res_rx) = mpsc::channel::<(usize, Result<T, Box<dyn Any + Send>>)>();

        let workers = self.threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let queue = &queue;
                let res_tx = res_tx.clone();
                scope.spawn(move || loop {
                    // A poisoned lock just means a sibling worker panicked
                    // between tasks; the queue itself is still consistent.
                    let next = queue
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .next();
                    let Some((i, f)) = next else {
                        break;
                    };
                    let r = catch_unwind(AssertUnwindSafe(f));
                    if res_tx.send((i, r)).is_err() {
                        break;
                    }
                });
            }
            drop(res_tx);
            let mut slots: Vec<Option<Result<T, Box<dyn Any + Send>>>> =
                (0..n).map(|_| None).collect();
            while let Ok((i, r)) = res_rx.recv() {
                slots[i] = Some(r);
            }
            slots
                .into_iter()
                .map(|s| s.expect("worker completed every task"))
                .collect()
        })
    }

    /// Execute all `tasks` on the pool, returning results in order.
    ///
    /// If a task panics, the remaining tasks still complete; the first
    /// panic is then re-raised on the caller's thread (use
    /// [`run_catch`](Self::run_catch) to observe panics as values instead).
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        let out: Vec<Option<T>> = self
            .run_raw(tasks)
            .into_iter()
            .map(|r| match r {
                Ok(v) => Some(v),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                    None
                }
            })
            .collect();
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out.into_iter()
            .map(|v| v.expect("non-panicked task has a result"))
            .collect()
    }

    /// Like [`run`](Self::run), but panics become `Err(TaskPanic)` results
    /// instead of resuming on the caller's thread.
    pub fn run_catch<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, TaskPanic>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.run_raw(tasks)
            .into_iter()
            .map(|r| r.map_err(|p| TaskPanic::from_payload(p.as_ref())))
            .collect()
    }

    /// Map `f` over `items` in parallel, preserving order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Send + Sync,
    {
        let f = Arc::new(f);
        self.run(
            items
                .into_iter()
                .map(|item| {
                    let f = Arc::clone(&f);
                    move || f(item)
                })
                .collect(),
        )
    }

    /// Map `f` over `items` in parallel, except that items whose task has
    /// not started by the time `deadline` expires are *cancelled*: `f` is
    /// never called for them and `cancelled(item)` supplies their result.
    ///
    /// This is how an exhausted query budget stops a wave mid-flight — the
    /// requests already on the wire run to completion (their per-attempt
    /// timeouts are clamped to the same deadline), but queued siblings are
    /// dropped immediately instead of each dialling a dead endpoint.
    pub fn map_cancellable<I, T, F, C>(
        &self,
        items: Vec<I>,
        deadline: Deadline,
        cancelled: C,
        f: F,
    ) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Send + Sync,
        C: Fn(I) -> T + Send + Sync,
    {
        let f = Arc::new(f);
        let cancelled = Arc::new(cancelled);
        self.run(
            items
                .into_iter()
                .map(|item| {
                    let f = Arc::clone(&f);
                    let cancelled = Arc::clone(&cancelled);
                    let deadline = deadline.clone();
                    move || {
                        if deadline.expired() {
                            cancelled(item)
                        } else {
                            f(item)
                        }
                    }
                })
                .collect(),
        )
    }
}

impl Default for RequestHandler {
    fn default() -> Self {
        RequestHandler::per_core()
    }
}

/// Circuit-breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive transport failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects requests before letting one
    /// half-open probe through.
    pub cooldown: Duration,
    /// Weight of the newest sample in the latency EWMA (0 < α ≤ 1).
    pub ewma_alpha: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(500),
            ewma_alpha: 0.2,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never opens (for endpoints that must keep absorbing
    /// their own retry budget, e.g. in baseline comparisons).
    pub fn disabled() -> Self {
        BreakerConfig {
            failure_threshold: u32::MAX,
            ..Default::default()
        }
    }
}

/// The externally visible breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Failing fast: requests are rejected until the cooldown elapses.
    Open,
    /// Cooling down: exactly one probe request is admitted to test
    /// whether the endpoint recovered.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// The breaker's verdict on one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: proceed normally.
    Admitted,
    /// Breaker half-open: proceed, but this request is the probe — its
    /// outcome decides whether the breaker closes again.
    Probe,
    /// Breaker open: fail fast without touching the network.
    Rejected {
        /// Time until a probe will be admitted.
        retry_in: Duration,
    },
}

/// The pure circuit-breaker state machine: closed → open after N
/// consecutive transport failures, open → half-open after the cooldown,
/// half-open → closed on probe success / back to open on probe failure.
///
/// Time is passed in explicitly so tests can drive the machine with a
/// synthetic clock; [`EndpointHealth`] wraps it with `Instant::now()` and
/// the traffic counters.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: State,
    consecutive_failures: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Closed,
    Open { until: Instant },
    HalfOpen { probe_started: Option<Instant> },
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: State::Closed,
            consecutive_failures: 0,
        }
    }

    /// The current state as seen at `now` (an open breaker whose cooldown
    /// has elapsed still reports `Open` until a request half-opens it).
    pub fn state(&self) -> BreakerState {
        match self.state {
            State::Closed => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Consecutive transport failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Decide whether a request starting at `now` may proceed.
    pub fn admit(&mut self, now: Instant) -> Admission {
        match self.state {
            State::Closed => Admission::Admitted,
            State::Open { until } => {
                if now >= until {
                    self.state = State::HalfOpen {
                        probe_started: Some(now),
                    };
                    Admission::Probe
                } else {
                    Admission::Rejected {
                        retry_in: until.duration_since(now),
                    }
                }
            }
            State::HalfOpen { probe_started } => match probe_started {
                // A probe that has been in flight longer than a full
                // cooldown is presumed dead (its thread panicked or was
                // abandoned); admit a replacement so the breaker cannot
                // wedge half-open forever.
                Some(started) if now.saturating_duration_since(started) <= self.config.cooldown => {
                    Admission::Rejected {
                        retry_in: self.config.cooldown - now.saturating_duration_since(started),
                    }
                }
                _ => {
                    self.state = State::HalfOpen {
                        probe_started: Some(now),
                    };
                    Admission::Probe
                }
            },
        }
    }

    /// Record a successful request: resets the failure streak and closes a
    /// half-open breaker.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = State::Closed;
    }

    /// Record a transport failure at `now`. Returns `true` when this
    /// failure opened (or re-opened) the breaker.
    pub fn on_failure(&mut self, now: Instant) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            // The probe failed: straight back to open for a fresh cooldown.
            State::HalfOpen { .. } => {
                self.state = State::Open {
                    until: now + self.config.cooldown,
                };
                true
            }
            State::Closed if self.consecutive_failures >= self.config.failure_threshold => {
                self.state = State::Open {
                    until: now + self.config.cooldown,
                };
                true
            }
            _ => false,
        }
    }
}

/// A point-in-time view of one endpoint's health, exposed through
/// `lusail query --stats` next to the traffic counters. Replica groups
/// also rank their members by this snapshot — breaker state first, then
/// `latency_ewma` (see [`crate::replica::rank_members`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSnapshot {
    /// Logical requests admitted (including probes).
    pub requests: u64,
    /// Transport-failure attempts observed.
    pub failures: u64,
    /// Retry attempts beyond each request's first try.
    pub retries: u64,
    /// Requests rejected outright by an open breaker.
    pub open_rejections: u64,
    /// Current breaker state.
    pub breaker: BreakerState,
    /// Exponentially weighted moving average of successful-request
    /// latency (zero until the first success).
    pub latency_ewma: Duration,
    /// Whether the endpoint is quarantined for result-integrity
    /// violations (up but untrustworthy — distinct from breaker-open).
    /// Quarantined members rank below healthy closed-breaker replicas;
    /// see [`crate::integrity::IntegrityRegistry`] for the lifecycle.
    pub quarantined: bool,
}

/// Per-endpoint health registry: the [`CircuitBreaker`] plus failure/retry
/// counters and a latency EWMA, shared by `HttpEndpoint`, the simulated
/// transport, and the fault-injection wrapper.
pub struct EndpointHealth {
    inner: Mutex<HealthInner>,
}

struct HealthInner {
    breaker: CircuitBreaker,
    requests: u64,
    failures: u64,
    retries: u64,
    open_rejections: u64,
    ewma_micros: f64,
    has_sample: bool,
    ewma_alpha: f64,
    quarantined: bool,
}

impl EndpointHealth {
    /// A healthy registry with the given breaker tuning.
    pub fn new(config: BreakerConfig) -> Self {
        EndpointHealth {
            inner: Mutex::new(HealthInner {
                breaker: CircuitBreaker::new(config),
                requests: 0,
                failures: 0,
                retries: 0,
                open_rejections: 0,
                ewma_micros: 0.0,
                has_sample: false,
                ewma_alpha: config.ewma_alpha,
                quarantined: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HealthInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Ask the breaker whether a request may proceed; admitted requests
    /// (including probes) are counted, rejections are tallied separately.
    pub fn admit(&self) -> Admission {
        let mut inner = self.lock();
        let admission = inner.breaker.admit(Instant::now());
        match admission {
            Admission::Admitted | Admission::Probe => inner.requests += 1,
            Admission::Rejected { .. } => inner.open_rejections += 1,
        }
        admission
    }

    /// Record a successful request and fold its latency into the EWMA.
    pub fn record_success(&self, latency: Duration) {
        let mut inner = self.lock();
        inner.breaker.on_success();
        let sample = latency.as_secs_f64() * 1e6;
        if inner.has_sample {
            let alpha = inner.ewma_alpha;
            inner.ewma_micros = alpha * sample + (1.0 - alpha) * inner.ewma_micros;
        } else {
            inner.ewma_micros = sample;
            inner.has_sample = true;
        }
    }

    /// Record one transport-failure attempt.
    pub fn record_failure(&self) {
        let mut inner = self.lock();
        inner.failures += 1;
        inner.breaker.on_failure(Instant::now());
    }

    /// Record one retry attempt (beyond a request's first try).
    pub fn record_retry(&self) {
        self.lock().retries += 1;
    }

    /// The breaker's current state.
    pub fn state(&self) -> BreakerState {
        self.lock().breaker.state()
    }

    /// Enter or leave result-integrity quarantine. Orthogonal to the
    /// breaker: a quarantined endpoint still answers requests (they are
    /// verification-paged by the engine), it just stops being preferred.
    pub fn set_quarantined(&self, on: bool) {
        self.lock().quarantined = on;
    }

    /// Whether the endpoint is currently quarantined.
    pub fn quarantined(&self) -> bool {
        self.lock().quarantined
    }

    /// A consistent snapshot of all health counters.
    pub fn snapshot(&self) -> HealthSnapshot {
        let inner = self.lock();
        HealthSnapshot {
            requests: inner.requests,
            failures: inner.failures,
            retries: inner.retries,
            open_rejections: inner.open_rejections,
            breaker: inner.breaker.state(),
            latency_ewma: Duration::from_micros(inner.ewma_micros as u64),
            quarantined: inner.quarantined,
        }
    }
}

impl Default for EndpointHealth {
    fn default() -> Self {
        EndpointHealth::new(BreakerConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_submission_order() {
        let pool = RequestHandler::new(4);
        let out = pool.map((0..100).collect(), |i: usize| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let pool = RequestHandler::new(4);
        let empty: Vec<usize> = pool.map(Vec::<usize>::new(), |i| i);
        assert!(empty.is_empty());
        assert_eq!(pool.map(vec![7], |i: usize| i + 1), vec![8]);
    }

    #[test]
    fn sleeps_overlap() {
        // 8 tasks × 20 ms each on 8 threads should take ≪ 160 ms.
        let pool = RequestHandler::new(8);
        let start = Instant::now();
        pool.map((0..8).collect(), |_: usize| {
            std::thread::sleep(Duration::from_millis(20))
        });
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(120),
            "tasks did not overlap: {elapsed:?}"
        );
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let pool = RequestHandler::new(3);
        let counter = AtomicUsize::new(0);
        pool.map((0..50).collect(), |_: usize| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn thread_count_clamped() {
        assert_eq!(RequestHandler::new(0).threads(), 1);
    }

    #[test]
    fn panicking_task_does_not_strand_siblings() {
        // The satellite fix: task 13 panics, the other 39 still complete,
        // and the caller sees the original panic afterwards.
        let pool = RequestHandler::new(4);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..40).collect(), |i: usize| {
                if i == 13 {
                    panic!("injected task failure");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            39,
            "all sibling tasks must have completed"
        );
    }

    #[test]
    fn run_catch_converts_panics_to_errors() {
        let pool = RequestHandler::new(4);
        let out = pool.run_catch(
            (0..6)
                .map(|i| {
                    move || {
                        if i % 3 == 0 {
                            panic!("boom {i}");
                        }
                        i
                    }
                })
                .collect::<Vec<_>>(),
        );
        for (i, r) in out.iter().enumerate() {
            if i % 3 == 0 {
                let p = r.as_ref().unwrap_err();
                assert_eq!(p.message, format!("boom {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn run_catch_inline_path_catches_too() {
        let pool = RequestHandler::new(1);
        let out: Vec<Result<usize, TaskPanic>> = pool.run_catch(vec![|| panic!("solo"), || 5usize]);
        assert!(out[0].is_err());
        assert_eq!(*out[1].as_ref().unwrap(), 5);
    }

    #[test]
    fn deadline_none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.clamp(Duration::from_secs(9)), Duration::from_secs(9));
    }

    #[test]
    fn deadline_budget_counts_down() {
        let d = Deadline::within(Duration::from_millis(50));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() <= Duration::from_millis(50));
        assert!(d.clamp(Duration::from_secs(10)) <= Duration::from_millis(50));
        std::thread::sleep(Duration::from_millis(60));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert_eq!(d.clamp(Duration::from_secs(10)), Duration::ZERO);
    }

    #[test]
    fn map_cancellable_skips_tasks_after_expiry() {
        // One slow task burns the budget; queued siblings must be
        // cancelled without running.
        let pool = RequestHandler::new(1);
        let ran = AtomicUsize::new(0);
        let deadline = Deadline::within(Duration::from_millis(20));
        let out = pool.map_cancellable(
            (0..5).collect(),
            deadline,
            |_: usize| -1i64,
            |i: usize| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(40));
                }
                i as i64
            },
        );
        assert_eq!(out[0], 0, "the in-flight task completes");
        assert_eq!(&out[1..], &[-1, -1, -1, -1], "queued siblings cancel");
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn map_cancellable_without_deadline_runs_everything() {
        let pool = RequestHandler::new(4);
        let out = pool.map_cancellable(
            (0..10).collect(),
            Deadline::none(),
            |_: usize| usize::MAX,
            |i: usize| i,
        );
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    // --- circuit breaker ---

    fn test_config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
            ewma_alpha: 0.5,
        }
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(test_config());
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure(t0));
        assert!(!b.on_failure(t0));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.on_failure(t0), "third failure must open the breaker");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(matches!(b.admit(t0), Admission::Rejected { .. }));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(test_config());
        b.on_failure(t0);
        b.on_failure(t0);
        b.on_success();
        assert_eq!(b.consecutive_failures(), 0);
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_breaker_half_opens_after_cooldown_and_admits_one_probe() {
        let cfg = test_config();
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg);
        for _ in 0..cfg.failure_threshold {
            b.on_failure(t0);
        }
        // Before the cooldown: rejected, with a sensible retry hint.
        match b.admit(t0 + Duration::from_millis(40)) {
            Admission::Rejected { retry_in } => {
                assert_eq!(retry_in, Duration::from_millis(60));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // After the cooldown: exactly one probe.
        let t1 = t0 + cfg.cooldown + Duration::from_millis(1);
        assert_eq!(b.admit(t1), Admission::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(
            matches!(b.admit(t1), Admission::Rejected { .. }),
            "half-open must admit exactly one probe"
        );
        // Probe success closes; probe failure would re-open.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(t1), Admission::Admitted);
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let cfg = test_config();
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg);
        for _ in 0..cfg.failure_threshold {
            b.on_failure(t0);
        }
        let t1 = t0 + cfg.cooldown + Duration::from_millis(1);
        assert_eq!(b.admit(t1), Admission::Probe);
        assert!(b.on_failure(t1), "failed probe re-opens");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(matches!(
            b.admit(t1 + cfg.cooldown / 2),
            Admission::Rejected { .. }
        ));
        assert_eq!(b.admit(t1 + cfg.cooldown), Admission::Probe);
    }

    #[test]
    fn stale_probe_is_replaced() {
        // A probe whose thread died must not wedge the breaker half-open.
        let cfg = test_config();
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg);
        for _ in 0..cfg.failure_threshold {
            b.on_failure(t0);
        }
        let t1 = t0 + cfg.cooldown;
        assert_eq!(b.admit(t1), Admission::Probe);
        // The probe never reports back; one full cooldown later a new
        // request becomes the replacement probe.
        let t2 = t1 + cfg.cooldown + Duration::from_millis(1);
        assert_eq!(b.admit(t2), Admission::Probe);
    }

    /// The satellite property test: a seeded loop drives random
    /// success/failure sequences through the machine with a synthetic
    /// clock and checks every transition against a naive reference model.
    #[test]
    fn breaker_property_loop() {
        // In-tree SplitMix64 step (workloads depends on this crate, so the
        // generator cannot be imported here).
        fn next_u64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        let seed: u64 = std::env::var("LUSAIL_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        let mut rng = seed;
        let cfg = test_config();
        let base = Instant::now();

        for round in 0..200 {
            let mut b = CircuitBreaker::new(cfg);
            let mut now = base;
            let mut streak = 0u32;
            let mut prev_state = b.state();
            for step in 0..300 {
                let ctx = format!("seed={seed} round={round} step={step}");
                // Advance the synthetic clock by 0–49 ms.
                now += Duration::from_millis(next_u64(&mut rng) % 50);
                let admission = b.admit(now);
                let state = b.state();
                // Legal transitions out of admit: Open may become
                // HalfOpen; Closed and HalfOpen never change here
                // (a stale-probe replacement stays HalfOpen).
                match (prev_state, state) {
                    (a, b) if a == b => {}
                    (BreakerState::Open, BreakerState::HalfOpen) => {}
                    (a, b) => panic!("illegal admit transition {a:?} -> {b:?} ({ctx})"),
                }
                match (state, admission) {
                    (BreakerState::Closed, Admission::Admitted) => {}
                    (BreakerState::Open, Admission::Rejected { retry_in }) => {
                        assert!(retry_in <= cfg.cooldown, "{ctx}");
                    }
                    (BreakerState::HalfOpen, Admission::Probe) => {}
                    (BreakerState::HalfOpen, Admission::Rejected { .. }) => {}
                    (s, a) => panic!("state {s:?} returned {a:?} ({ctx})"),
                }
                if admission == Admission::Probe {
                    // Half-open admits exactly one probe: an immediate
                    // second request must be rejected.
                    assert!(
                        matches!(b.admit(now), Admission::Rejected { .. }),
                        "half-open admitted two probes ({ctx})"
                    );
                }
                let proceed = !matches!(admission, Admission::Rejected { .. });
                if proceed {
                    if next_u64(&mut rng) % 100 < 40 {
                        b.on_failure(now);
                        streak += 1;
                        if admission == Admission::Probe {
                            assert_eq!(
                                b.state(),
                                BreakerState::Open,
                                "failed probe must re-open ({ctx})"
                            );
                        } else if streak >= cfg.failure_threshold {
                            assert_eq!(
                                b.state(),
                                BreakerState::Open,
                                "threshold reached but breaker closed ({ctx})"
                            );
                        }
                    } else {
                        b.on_success();
                        streak = 0;
                        assert_eq!(
                            b.state(),
                            BreakerState::Closed,
                            "success must close the breaker ({ctx})"
                        );
                    }
                }
                prev_state = b.state();
            }
        }
    }

    #[test]
    fn health_registry_counts_and_ewma() {
        let health = EndpointHealth::new(BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(50),
            ewma_alpha: 0.5,
        });
        assert_eq!(health.admit(), Admission::Admitted);
        health.record_success(Duration::from_millis(10));
        assert_eq!(health.admit(), Admission::Admitted);
        health.record_retry();
        health.record_success(Duration::from_millis(20));
        let snap = health.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.retries, 1);
        assert_eq!(snap.failures, 0);
        assert_eq!(snap.breaker, BreakerState::Closed);
        // EWMA with α=0.5: 0.5·20ms + 0.5·10ms = 15ms.
        assert_eq!(snap.latency_ewma, Duration::from_millis(15));

        // Two failures open the breaker; admissions then fail fast.
        health.record_failure();
        health.record_failure();
        assert_eq!(health.state(), BreakerState::Open);
        assert!(matches!(health.admit(), Admission::Rejected { .. }));
        let snap = health.snapshot();
        assert_eq!(snap.failures, 2);
        assert_eq!(snap.open_rejections, 1);

        // After the cooldown a probe goes through and recovery closes it.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(health.admit(), Admission::Probe);
        health.record_success(Duration::from_millis(5));
        assert_eq!(health.state(), BreakerState::Closed);
    }
}
