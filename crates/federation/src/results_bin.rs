//! Lusail's compact binary results codec: a per-response term dictionary
//! plus fixed-width ID tuples.
//!
//! The SPARQL 1.1 JSON format ships every term as a string in every row,
//! so a join-heavy federated query pays for the same IRI hundreds of
//! times. This codec interns terms on the wire instead: the first time a
//! term appears in a response it travels once as a dictionary record, and
//! every row is then a flat array of fixed-width `u32` ids. Responses
//! whose rows repeat terms (the common case for subquery results) shrink
//! by the repetition factor; worst-case (all-distinct terms) overhead is
//! a few bytes per row.
//!
//! The format is negotiated via the HTTP `Accept` header (see
//! [`MEDIA_TYPE`]): `lusail serve` answers with it when asked,
//! [`crate::http::HttpEndpoint`] offers it with a SPARQL-JSON fallback,
//! and a foreign endpoint that ignores the offer simply keeps answering
//! JSON — federation works unchanged, just cheaper between Lusail peers.
//!
//! Like [`crate::results_json`], the codec is streaming on both sides:
//! the server emits the document piecewise ([`Encoder`]) and the client
//! decodes it incrementally ([`parse_stream`]) under the same
//! `--max-result-rows` result-bomb defense — the cap fires mid-parse with
//! the rest of the body unread. The decoder is total: arbitrary bytes
//! produce an error, never a panic.
//!
//! ## Wire layout
//!
//! ```text
//! magic  "LSRB"            4 bytes
//! version 0x01             1 byte
//! kind   0x00 solutions | 0x01 boolean
//!
//! boolean: value           1 byte (0x00 / 0x01)
//!
//! solutions:
//!   var count              varint
//!   vars                   varint length + UTF-8, each
//!   warning count          varint
//!   warnings               varint length + UTF-8, each
//!   records, until END:
//!     0x01 DICT            term record; ids assigned sequentially from 0
//!     0x02 ROW             var-count × u32 LE (0 = unbound, else id + 1)
//!     0x00 END
//!
//! term record:
//!   0x01 IRI / 0x02 BNODE  varint length + UTF-8
//!   0x03 LITERAL           presence byte (bit 0 datatype, bit 1 language)
//!                          + lexical + optional datatype + optional lang
//! ```

use lusail_rdf::fxhash::FxHashMap;
use lusail_rdf::{Literal, Term};
use lusail_sparql::ast::Variable;
use lusail_sparql::solution::{Relation, Row};
use lusail_store::eval::QueryResult;

/// The media type of this format, offered in `Accept` and echoed in
/// `Content-Type` by servers that speak it.
pub const MEDIA_TYPE: &str = "application/x-lusail-results-bin";

const MAGIC: &[u8; 4] = b"LSRB";
const VERSION: u8 = 1;
const KIND_SOLUTIONS: u8 = 0x00;
const KIND_BOOLEAN: u8 = 0x01;
const REC_END: u8 = 0x00;
const REC_DICT: u8 = 0x01;
const REC_ROW: u8 = 0x02;
const TERM_IRI: u8 = 0x01;
const TERM_BNODE: u8 = 0x02;
const TERM_LITERAL: u8 = 0x03;

/// Cap on any single length-prefixed string. A malformed (or hostile)
/// length prefix fails fast instead of asking the allocator for the
/// moon.
const MAX_STRING_LEN: usize = 1 << 24;

/// A complete `ASK` document.
pub fn boolean_bin(value: bool) -> Vec<u8> {
    vec![
        MAGIC[0],
        MAGIC[1],
        MAGIC[2],
        MAGIC[3],
        VERSION,
        KIND_BOOLEAN,
        u8::from(value),
    ]
}

/// Streaming encoder for a solutions document: emit [`Encoder::head`]
/// first, then one [`Encoder::row`] per solution, then [`Encoder::tail`].
/// The per-response dictionary lives inside the encoder; each term is
/// serialized the first time it appears and referenced by id afterwards.
pub struct Encoder {
    ids: FxHashMap<Term, u32>,
    arity: usize,
}

impl Encoder {
    /// A fresh encoder with an empty dictionary.
    pub fn new() -> Self {
        Encoder {
            ids: FxHashMap::default(),
            arity: 0,
        }
    }

    /// The document head: magic, header, variables, warnings.
    pub fn head(&mut self, vars: &[Variable], warnings: &[String]) -> Vec<u8> {
        self.arity = vars.len();
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(KIND_SOLUTIONS);
        write_varint(&mut out, vars.len() as u64);
        for v in vars {
            write_str(&mut out, v.name());
        }
        write_varint(&mut out, warnings.len() as u64);
        for w in warnings {
            write_str(&mut out, w);
        }
        out
    }

    /// One solution row: any new terms as dictionary records, then the
    /// fixed-width id tuple.
    pub fn row(&mut self, row: &Row) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 4 * row.len());
        let mut cells = Vec::with_capacity(row.len());
        for cell in row {
            match cell {
                None => cells.push(0u32),
                Some(term) => {
                    let next = self.ids.len() as u32;
                    let id = *self.ids.entry(term.clone()).or_insert_with(|| {
                        out.push(REC_DICT);
                        write_term(&mut out, term);
                        next
                    });
                    cells.push(id + 1);
                }
            }
        }
        out.push(REC_ROW);
        for id in cells {
            out.extend_from_slice(&id.to_le_bytes());
        }
        out
    }

    /// The end-of-results record.
    pub fn tail(&self) -> Vec<u8> {
        vec![REC_END]
    }

    /// How many distinct terms the dictionary holds so far.
    pub fn dict_terms(&self) -> usize {
        self.ids.len()
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

/// Serialize a full result document (non-streaming convenience; the
/// server streams the same pieces instead).
pub fn serialize(result: &QueryResult) -> Vec<u8> {
    serialize_with_warnings(result, &[])
}

/// [`serialize`] with execution warnings in the head.
pub fn serialize_with_warnings(result: &QueryResult, warnings: &[String]) -> Vec<u8> {
    match result {
        QueryResult::Boolean(b) => boolean_bin(*b),
        QueryResult::Solutions(rel) => {
            let mut enc = Encoder::new();
            let mut out = enc.head(rel.vars(), warnings);
            for row in rel.rows() {
                out.extend_from_slice(&enc.row(row));
            }
            out.extend_from_slice(&enc.tail());
            out
        }
    }
}

/// The outcome of a streaming binary parse. Mirrors
/// [`crate::results_json::StreamedResult`], plus the decoded dictionary
/// size for the codec stats.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedBin {
    pub result: QueryResult,
    pub warnings: Vec<String>,
    /// `true` when `max_rows` stopped the parse before the END record —
    /// the rest of the input was *not consumed*.
    pub truncated: bool,
    /// Distinct terms received in the per-response dictionary.
    pub dict_terms: usize,
}

/// Why a streaming binary parse stopped.
#[derive(Debug)]
pub enum BinStreamError {
    Io(std::io::Error),
    Malformed(String),
}

impl std::fmt::Display for BinStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinStreamError::Io(e) => write!(f, "read error mid-results: {e}"),
            BinStreamError::Malformed(m) => write!(f, "not a binary results document: {m}"),
        }
    }
}

/// Decode a binary results document incrementally from a byte stream,
/// holding at most `max_rows` rows (plus the dictionary) in memory. On
/// hitting the cap the parse returns immediately with `truncated: true`
/// and the remaining input *unread*. Total on arbitrary input: malformed
/// bytes yield `Err`, never a panic.
pub fn parse_stream<R: std::io::Read>(
    reader: R,
    max_rows: Option<usize>,
) -> Result<StreamedBin, BinStreamError> {
    Decoder { reader, offset: 0 }.parse_document(max_rows)
}

/// [`parse_stream`] over an in-memory buffer (test entry point).
pub fn parse(bytes: &[u8]) -> Result<StreamedBin, BinStreamError> {
    parse_stream(bytes, None)
}

struct Decoder<R: std::io::Read> {
    reader: R,
    offset: usize,
}

impl<R: std::io::Read> Decoder<R> {
    fn bad(&self, msg: impl std::fmt::Display) -> BinStreamError {
        BinStreamError::Malformed(format!("{msg} at offset {}", self.offset))
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), BinStreamError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.reader.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(self.bad("unexpected end of document"));
                }
                Ok(n) => {
                    filled += n;
                    self.offset += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(BinStreamError::Io(e)),
            }
        }
        Ok(())
    }

    fn byte(&mut self) -> Result<u8, BinStreamError> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    fn varint(&mut self) -> Result<u64, BinStreamError> {
        let mut value: u64 = 0;
        for shift in 0..5 {
            let b = self.byte()?;
            value |= u64::from(b & 0x7F) << (7 * shift);
            if b & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(self.bad("varint longer than 5 bytes"))
    }

    fn string(&mut self) -> Result<String, BinStreamError> {
        let len = self.varint()? as usize;
        if len > MAX_STRING_LEN {
            return Err(self.bad(format!("string length {len} exceeds {MAX_STRING_LEN}")));
        }
        let mut buf = vec![0u8; len];
        self.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|_| self.bad("invalid UTF-8 in string"))
    }

    fn term(&mut self) -> Result<Term, BinStreamError> {
        match self.byte()? {
            TERM_IRI => Ok(Term::Iri(self.string()?)),
            TERM_BNODE => Ok(Term::BlankNode(self.string()?)),
            TERM_LITERAL => {
                let presence = self.byte()?;
                if presence & !0x03 != 0 {
                    return Err(self.bad(format!("bad literal presence byte {presence:#x}")));
                }
                if presence == 0x03 {
                    return Err(self.bad("literal with both datatype and language"));
                }
                let lexical = self.string()?;
                let datatype = (presence & 1 != 0).then(|| self.string()).transpose()?;
                let language = (presence & 2 != 0).then(|| self.string()).transpose()?;
                Ok(Term::Literal(Literal {
                    lexical,
                    datatype,
                    language,
                }))
            }
            other => Err(self.bad(format!("unknown term kind {other:#x}"))),
        }
    }

    fn parse_document(mut self, max_rows: Option<usize>) -> Result<StreamedBin, BinStreamError> {
        let mut magic = [0u8; 4];
        self.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(self.bad("bad magic (not an LSRB document)"));
        }
        let version = self.byte()?;
        if version != VERSION {
            return Err(self.bad(format!("unsupported version {version}")));
        }
        match self.byte()? {
            KIND_BOOLEAN => {
                let value = match self.byte()? {
                    0 => false,
                    1 => true,
                    other => return Err(self.bad(format!("bad boolean value {other:#x}"))),
                };
                Ok(StreamedBin {
                    result: QueryResult::Boolean(value),
                    warnings: Vec::new(),
                    truncated: false,
                    dict_terms: 0,
                })
            }
            KIND_SOLUTIONS => self.parse_solutions(max_rows),
            other => Err(self.bad(format!("unknown document kind {other:#x}"))),
        }
    }

    fn parse_solutions(&mut self, max_rows: Option<usize>) -> Result<StreamedBin, BinStreamError> {
        let var_count = self.varint()? as usize;
        // The arity bounds per-row work; an absurd claim is malformed.
        if var_count > 1 << 16 {
            return Err(self.bad(format!("implausible variable count {var_count}")));
        }
        let mut vars = Vec::with_capacity(var_count.min(1024));
        for _ in 0..var_count {
            vars.push(Variable::new(self.string()?));
        }
        let warn_count = self.varint()? as usize;
        if warn_count > 1 << 16 {
            return Err(self.bad(format!("implausible warning count {warn_count}")));
        }
        let mut warnings = Vec::with_capacity(warn_count.min(1024));
        for _ in 0..warn_count {
            warnings.push(self.string()?);
        }

        let mut dict: Vec<Term> = Vec::new();
        let mut rel = Relation::new(vars.clone());
        // A hostile stream of dictionary records with no rows is a result
        // bomb too: under a row cap, the dictionary may not outgrow what
        // the capped rows could possibly reference.
        let dict_cap = max_rows.map(|cap| (cap + 1).saturating_mul(var_count.max(1)));
        loop {
            match self.byte()? {
                REC_END => break,
                REC_DICT => {
                    if let Some(cap) = dict_cap {
                        if dict.len() >= cap {
                            return Ok(StreamedBin {
                                result: QueryResult::Solutions(rel),
                                warnings,
                                truncated: true,
                                dict_terms: dict.len(),
                            });
                        }
                    }
                    let term = self.term()?;
                    dict.push(term);
                }
                REC_ROW => {
                    if let Some(cap) = max_rows {
                        if rel.len() >= cap {
                            // The cap fired: stop consuming immediately.
                            return Ok(StreamedBin {
                                result: QueryResult::Solutions(rel),
                                warnings,
                                truncated: true,
                                dict_terms: dict.len(),
                            });
                        }
                    }
                    let mut cell = [0u8; 4];
                    let mut row: Row = Vec::with_capacity(var_count);
                    for _ in 0..var_count {
                        self.read_exact(&mut cell)?;
                        let id = u32::from_le_bytes(cell);
                        if id == 0 {
                            row.push(None);
                        } else {
                            let term = dict.get(id as usize - 1).ok_or_else(|| {
                                self.bad(format!("row references undefined term id {id}"))
                            })?;
                            row.push(Some(term.clone()));
                        }
                    }
                    rel.push(row);
                }
                other => return Err(self.bad(format!("unknown record tag {other:#x}"))),
            }
        }
        Ok(StreamedBin {
            result: QueryResult::Solutions(rel),
            warnings,
            truncated: false,
            dict_terms: dict.len(),
        })
    }
}

fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn write_term(out: &mut Vec<u8>, term: &Term) {
    match term {
        Term::Iri(s) => {
            out.push(TERM_IRI);
            write_str(out, s);
        }
        Term::BlankNode(s) => {
            out.push(TERM_BNODE);
            write_str(out, s);
        }
        Term::Literal(l) => {
            out.push(TERM_LITERAL);
            let presence = u8::from(l.datatype.is_some()) | (u8::from(l.language.is_some()) << 1);
            out.push(presence);
            write_str(out, &l.lexical);
            if let Some(d) = &l.datatype {
                write_str(out, d);
            }
            if let Some(g) = &l.language {
                write_str(out, g);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results_json;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn all_kinds_relation() -> Relation {
        let vars = vec![
            v("i"),
            v("b"),
            v("plain"),
            v("typed"),
            v("tagged"),
            v("unbound"),
        ];
        let mut rel = Relation::new(vars);
        rel.push(vec![
            Some(Term::iri("http://example.org/thing?q=1&x=\"quoted\"")),
            Some(Term::bnode("b42")),
            Some(Term::literal("line1\nline2\ttab")),
            Some(Term::integer(-7)),
            Some(Term::Literal(Literal::lang("grüße 😀", "de"))),
            None,
        ]);
        rel
    }

    #[test]
    fn round_trips_every_term_kind() {
        let rel = all_kinds_relation();
        let doc = serialize(&QueryResult::Solutions(rel.clone()));
        let back = parse(&doc).unwrap();
        assert!(!back.truncated);
        assert_eq!(back.result, QueryResult::Solutions(rel));
        assert_eq!(back.dict_terms, 5);
    }

    #[test]
    fn round_trips_booleans() {
        for b in [true, false] {
            let back = parse(&serialize(&QueryResult::Boolean(b))).unwrap();
            assert_eq!(back.result, QueryResult::Boolean(b));
        }
    }

    #[test]
    fn matches_json_decode_exactly() {
        let rel = all_kinds_relation();
        let result = QueryResult::Solutions(rel);
        let from_bin = parse(&serialize(&result)).unwrap().result;
        let from_json = results_json::parse(&results_json::serialize(&result)).unwrap();
        assert_eq!(from_bin, from_json);
    }

    #[test]
    fn repeated_terms_ship_once() {
        let mut rel = Relation::new(vec![v("x"), v("y")]);
        let long = Term::iri(format!("http://example.org/{}", "a".repeat(200)));
        for i in 0..100 {
            rel.push(vec![Some(long.clone()), Some(Term::integer(i))]);
        }
        let result = QueryResult::Solutions(rel);
        let bin = serialize(&result);
        let json = results_json::serialize(&result);
        assert!(
            bin.len() * 2 < json.len(),
            "binary ({}) should be far smaller than JSON ({}) on repetitive rows",
            bin.len(),
            json.len()
        );
        let back = parse(&bin).unwrap();
        assert_eq!(back.result, result);
        assert_eq!(back.dict_terms, 101);
    }

    #[test]
    fn warnings_round_trip_in_the_head() {
        let rel = all_kinds_relation();
        let warnings = vec![
            "endpoint univ2 unreachable for sq1: connection refused".to_string(),
            "with \"quotes\" and\nnewlines".to_string(),
        ];
        let doc = serialize_with_warnings(&QueryResult::Solutions(rel.clone()), &warnings);
        let back = parse(&doc).unwrap();
        assert_eq!(back.result, QueryResult::Solutions(rel));
        assert_eq!(back.warnings, warnings);
    }

    #[test]
    fn streaming_pieces_match_serialize() {
        let rel = all_kinds_relation();
        let mut enc = Encoder::new();
        let mut doc = enc.head(rel.vars(), &[]);
        for row in rel.rows() {
            doc.extend_from_slice(&enc.row(row));
        }
        doc.extend_from_slice(&enc.tail());
        assert_eq!(doc, serialize(&QueryResult::Solutions(rel)));
        assert_eq!(enc.dict_terms(), 5);
    }

    #[test]
    fn row_cap_truncates_without_consuming_the_rest() {
        let vars = vec![v("x")];
        let mut rel = Relation::new(vars.clone());
        for i in 0..100 {
            rel.push(vec![Some(Term::iri(format!("http://x/{i}")))]);
        }
        let doc = serialize(&QueryResult::Solutions(rel.clone()));

        // Exactly at the cap: complete, not truncated.
        let full = parse_stream(&doc[..], Some(100)).unwrap();
        assert!(!full.truncated);
        assert_eq!(full.result, QueryResult::Solutions(rel.clone()));

        // Under the cap: truncated prefix; bytes after the cap point are
        // never read (poisoning them must not matter).
        let mut reads = CountingReader {
            inner: &doc[..],
            read: 0,
        };
        let streamed = parse_stream(&mut reads, Some(5)).unwrap();
        assert!(streamed.truncated);
        let QueryResult::Solutions(got) = streamed.result else {
            panic!("not solutions")
        };
        assert_eq!(got.len(), 5);
        assert_eq!(got.rows(), &rel.rows()[..5]);
        assert!(
            reads.read < doc.len(),
            "the capped parse must leave input unread"
        );

        // A cap of zero keeps the header and drops every row.
        let zero = parse_stream(&doc[..], Some(0)).unwrap();
        assert!(zero.truncated);
        let QueryResult::Solutions(got) = zero.result else {
            panic!("not solutions")
        };
        assert_eq!(got.vars(), &vars[..]);
        assert!(got.is_empty());
    }

    /// A reader that counts how many bytes were pulled, reading one byte
    /// at a time so the decoder cannot over-buffer past the cap point.
    struct CountingReader<'a> {
        inner: &'a [u8],
        read: usize,
    }

    impl std::io::Read for CountingReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.inner.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.inner[0];
            self.inner = &self.inner[1..];
            self.read += 1;
            Ok(1)
        }
    }

    #[test]
    fn dictionary_bomb_is_cut_off_under_a_row_cap() {
        // A hostile body of endless dictionary records and no rows: the
        // cap must fire once the dictionary outgrows what capped rows
        // could reference.
        let mut enc = Encoder::new();
        let mut doc = enc.head(&[v("x")], &[]);
        for i in 0..10_000 {
            doc.push(REC_DICT);
            write_term(&mut doc, &Term::iri(format!("http://bomb/{i}")));
        }
        let streamed = parse_stream(&doc[..], Some(4)).unwrap();
        assert!(streamed.truncated);
        assert!(streamed.dict_terms <= 5, "{}", streamed.dict_terms);
        // Without a cap the same prefix is just an unterminated document.
        assert!(parse_stream(&doc[..], None).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        let good = serialize(&QueryResult::Solutions(all_kinds_relation()));
        let mut cases: Vec<Vec<u8>> = vec![
            Vec::new(),                            // empty
            b"LSRB".to_vec(),                      // truncated header
            b"JSON\x01\x00".to_vec(),              // bad magic
            vec![b'L', b'S', b'R', b'B', 9, 0],    // bad version
            vec![b'L', b'S', b'R', b'B', 1, 7],    // bad kind
            vec![b'L', b'S', b'R', b'B', 1, 1, 9], // bad boolean value
        ];
        // Truncations of a valid document (except the full length).
        for cut in [5, 8, good.len() / 2, good.len() - 1] {
            cases.push(good[..cut].to_vec());
        }
        // A row referencing an id the dictionary never defined.
        let mut enc = Encoder::new();
        let mut bad_ref = enc.head(&[v("x")], &[]);
        bad_ref.push(REC_ROW);
        bad_ref.extend_from_slice(&99u32.to_le_bytes());
        bad_ref.push(REC_END);
        cases.push(bad_ref);
        // A literal claiming both datatype and language.
        let mut both = enc.head(&[v("x")], &[]);
        both.push(REC_DICT);
        both.push(TERM_LITERAL);
        both.push(0x03);
        cases.push(both);
        for bad in cases {
            assert!(parse(&bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn empty_relation_round_trips() {
        let rel = Relation::new(vec![v("x"), v("y")]);
        let back = parse(&serialize(&QueryResult::Solutions(rel.clone()))).unwrap();
        assert_eq!(back.result, QueryResult::Solutions(rel));
        assert_eq!(back.dict_terms, 0);
    }

    #[test]
    fn bag_semantics_survive() {
        let mut rel = Relation::new(vec![v("x")]);
        rel.push(vec![Some(Term::iri("http://x/a"))]);
        rel.push(vec![Some(Term::iri("http://x/a"))]);
        let back = parse(&serialize(&QueryResult::Solutions(rel.clone()))).unwrap();
        assert_eq!(back.result, QueryResult::Solutions(rel));
        assert_eq!(back.dict_terms, 1, "the duplicate term ships once");
    }
}
