//! Cooperative cancellation: a shared token that execution checks at every
//! existing deadline point, kept orthogonal to the engine itself.
//!
//! A [`CancelToken`] is a cheap clonable handle to a shared flag plus a
//! structured [`CancelReason`]. The first `cancel()` wins; later calls are
//! no-ops so the recorded reason is stable. Sleeps and waits throughout the
//! federation layer go through [`CancelToken::wait_timeout`] (via
//! `Deadline::pause`) so a cancelled query stops burning its backoff and
//! hedge windows immediately instead of sleeping them out.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Why a query was cancelled. Ordered by who pulled the trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The client hung up while the query was executing or streaming.
    ClientDisconnected,
    /// An operator cancelled it via `POST /queries/<id>/cancel`.
    AdminCancelled,
    /// The lifecycle watchdog reaped it past deadline + grace.
    WatchdogReaped,
    /// The server is shutting down and force-cancelled stragglers.
    ServerDraining,
}

impl CancelReason {
    /// Stable lower-snake name used in JSON stats and error bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            CancelReason::ClientDisconnected => "client_disconnected",
            CancelReason::AdminCancelled => "admin_cancelled",
            CancelReason::WatchdogReaped => "watchdog_reaped",
            CancelReason::ServerDraining => "server_draining",
        }
    }

    fn code(self) -> u8 {
        match self {
            CancelReason::ClientDisconnected => 1,
            CancelReason::AdminCancelled => 2,
            CancelReason::WatchdogReaped => 3,
            CancelReason::ServerDraining => 4,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(CancelReason::ClientDisconnected),
            2 => Some(CancelReason::AdminCancelled),
            3 => Some(CancelReason::WatchdogReaped),
            4 => Some(CancelReason::ServerDraining),
            _ => None,
        }
    }
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CancelReason::ClientDisconnected => "client disconnected",
            CancelReason::AdminCancelled => "cancelled by administrator",
            CancelReason::WatchdogReaped => "reaped by watchdog",
            CancelReason::ServerDraining => "server draining",
        })
    }
}

#[derive(Debug)]
struct CancelInner {
    /// 0 = live, otherwise `CancelReason::code`.
    reason: AtomicU8,
    /// Wakes sleepers in `wait_timeout` the moment the token trips.
    gate: Mutex<()>,
    bell: Condvar,
}

/// Shared cancellation flag with a structured reason. Clones observe the
/// same underlying state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                reason: AtomicU8::new(0),
                gate: Mutex::new(()),
                bell: Condvar::new(),
            }),
        }
    }

    /// Trip the token. The first reason wins; returns whether this call
    /// was the one that tripped it.
    pub fn cancel(&self, reason: CancelReason) -> bool {
        let won = self
            .inner
            .reason
            .compare_exchange(0, reason.code(), Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if won {
            // Take the lock so a waiter between its check and its wait
            // cannot miss the notification.
            let _g = self.inner.gate.lock().unwrap_or_else(|e| e.into_inner());
            self.inner.bell.notify_all();
        }
        won
    }

    pub fn is_cancelled(&self) -> bool {
        self.inner.reason.load(Ordering::Acquire) != 0
    }

    /// The recorded reason, if the token has tripped.
    pub fn reason(&self) -> Option<CancelReason> {
        CancelReason::from_code(self.inner.reason.load(Ordering::Acquire))
    }

    /// Sleep for up to `timeout`, waking early if the token trips. Returns
    /// the reason if cancellation cut the sleep short (or had already
    /// happened).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<CancelReason> {
        if let Some(reason) = self.reason() {
            return Some(reason);
        }
        if timeout.is_zero() {
            return None;
        }
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = self.inner.gate.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(reason) = self.reason() {
                return Some(reason);
            }
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return self.reason();
            };
            let (g, _timed_out) = self
                .inner
                .bell
                .wait_timeout(guard, left)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
    }

    /// Two handles to the same underlying token.
    pub fn same_token(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn first_cancel_wins() {
        let t = CancelToken::new();
        assert!(t.cancel(CancelReason::AdminCancelled));
        assert!(!t.cancel(CancelReason::WatchdogReaped));
        assert_eq!(t.reason(), Some(CancelReason::AdminCancelled));
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel(CancelReason::ClientDisconnected);
        assert_eq!(c.reason(), Some(CancelReason::ClientDisconnected));
        assert!(t.same_token(&c));
        assert!(!t.same_token(&CancelToken::new()));
    }

    #[test]
    fn wait_timeout_sleeps_full_window_when_live() {
        let t = CancelToken::new();
        let start = Instant::now();
        assert_eq!(t.wait_timeout(Duration::from_millis(30)), None);
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn wait_timeout_wakes_on_cancel() {
        let t = CancelToken::new();
        let waker = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.cancel(CancelReason::ServerDraining);
        });
        let start = Instant::now();
        let reason = t.wait_timeout(Duration::from_secs(10));
        assert_eq!(reason, Some(CancelReason::ServerDraining));
        assert!(start.elapsed() < Duration::from_secs(5));
        h.join().unwrap();
    }

    #[test]
    fn wait_timeout_returns_immediately_when_already_cancelled() {
        let t = CancelToken::new();
        t.cancel(CancelReason::WatchdogReaped);
        let start = Instant::now();
        assert_eq!(
            t.wait_timeout(Duration::from_secs(10)),
            Some(CancelReason::WatchdogReaped)
        );
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(
            CancelReason::ClientDisconnected.as_str(),
            "client_disconnected"
        );
        assert_eq!(CancelReason::AdminCancelled.as_str(), "admin_cancelled");
        assert_eq!(CancelReason::WatchdogReaped.as_str(), "watchdog_reaped");
        assert_eq!(CancelReason::ServerDraining.as_str(), "server_draining");
    }
}
