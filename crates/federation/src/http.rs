//! A real HTTP transport for SPARQL endpoints, built on `std::net` only.
//!
//! [`HttpEndpoint`] implements [`SparqlEndpoint`] by speaking the SPARQL
//! 1.1 Protocol over hand-rolled HTTP/1.1: it POSTs the query as
//! `application/sparql-query` (or GETs `?query=` when configured),
//! reads Content-Length or chunked responses, and parses the
//! `application/sparql-results+json` body with [`crate::results_json`].
//!
//! Reliability knobs live in [`HttpConfig`]: a per-attempt deadline that
//! bounds connect, send, and every read; and retry with doubling backoff
//! on connect/transport errors and 5xx responses (4xx and malformed
//! result documents fail immediately — retrying a rejected query cannot
//! help). Connections are kept alive and reused across requests; a stale
//! pooled connection simply burns one retry. The CLI surfaces the retry
//! budget as `lusail query --retries N --backoff MS`. Retries here are
//! *per member*; failing over to a different mirror of the same dataset
//! is the layer above — see [`crate::replica::ReplicaGroup`].
//!
//! Traffic accounting mirrors [`SimulatedEndpoint`](crate::SimulatedEndpoint):
//! requests, bytes on the wire in both directions, and the measured
//! network time (here it is *real* wall-clock time spent on the socket,
//! reported through the same `simulated_network_time` field).

use crate::cancel::CancelToken;
use crate::endpoint::{EndpointError, SparqlEndpoint};
use crate::erh::{
    Admission, BreakerConfig, BreakerState, Deadline, EndpointHealth, HealthSnapshot,
};
use crate::network::{CodecCounters, CodecSnapshot, RequestCounters, TrafficSnapshot};
use crate::results_bin;
use crate::results_json;
use lusail_sparql::ast::Query;
use lusail_store::eval::QueryResult;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A parsed `http://host[:port]/path` endpoint URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Url {
    pub host: String,
    pub port: u16,
    /// Path plus any query string, always starting with `/`.
    pub path: String,
}

impl Url {
    /// Parse an endpoint URL. Only `http` is supported (there is no TLS
    /// stack in a std-only build); `https` URLs are rejected with a clear
    /// message rather than failing mid-handshake.
    pub fn parse(url: &str) -> Result<Url, String> {
        let rest = url.strip_prefix("http://").ok_or_else(|| {
            if url.starts_with("https://") {
                format!("{url}: https is not supported (std-only build has no TLS)")
            } else {
                format!("{url}: expected an http:// URL")
            }
        })?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port = p
                    .parse::<u16>()
                    .map_err(|_| format!("{url}: invalid port {p:?}"))?;
                (h, port)
            }
            None => (authority, 80),
        };
        if host.is_empty() {
            return Err(format!("{url}: missing host"));
        }
        Ok(Url {
            host: host.to_string(),
            port,
            path: path.to_string(),
        })
    }

    /// The `Host:` header value (port elided when it is the default 80).
    pub fn host_header(&self) -> String {
        if self.port == 80 {
            self.host.clone()
        } else {
            format!("{}:{}", self.host, self.port)
        }
    }

    fn socket_addr(&self) -> io::Result<SocketAddr> {
        (self.host.as_str(), self.port)
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "host resolved to no address"))
    }
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http://{}{}", self.host_header(), self.path)
    }
}

/// Client transport settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Overall deadline for one request attempt (send + all reads).
    pub request_timeout: Duration,
    /// Additional attempts after the first, on connect/transport errors
    /// and 5xx responses.
    pub retries: u32,
    /// Sleep before the first retry; doubles on each subsequent one.
    pub backoff: Duration,
    /// Send `GET ?query=…` instead of `POST application/sparql-query`.
    pub use_get: bool,
    /// Row cap applied *while parsing* the streamed response body: a
    /// result-bomb endpoint is rejected after this many rows with the
    /// rest of its body unread, never buffered. `None` disables the cap.
    pub max_result_rows: Option<usize>,
    /// Offer Lusail's compact binary results codec in the `Accept`
    /// header (preferred, with SPARQL-JSON as the q=0.9 fallback). A
    /// foreign endpoint that ignores the offer answers JSON and
    /// everything works; set `false` to force JSON-only negotiation
    /// (baseline measurements, debugging).
    pub offer_binary: bool,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            retries: 2,
            backoff: Duration::from_millis(50),
            use_get: false,
            max_result_rows: None,
            offer_binary: true,
        }
    }
}

/// A remote SPARQL endpoint reached over HTTP.
pub struct HttpEndpoint {
    name: String,
    url: Url,
    config: HttpConfig,
    counters: RequestCounters,
    codec: CodecCounters,
    health: EndpointHealth,
    /// Pooled keep-alive connection, reused across requests.
    conn: Mutex<Option<TcpStream>>,
}

impl HttpEndpoint {
    /// Create an endpoint from a URL string like
    /// `http://127.0.0.1:8890/sparql`.
    pub fn new(name: impl Into<String>, url: &str) -> Result<Self, EndpointError> {
        let name = name.into();
        let url =
            Url::parse(url).map_err(|message| EndpointError::rejected(name.clone(), message))?;
        Ok(HttpEndpoint {
            name,
            url,
            config: HttpConfig::default(),
            counters: RequestCounters::new(),
            codec: CodecCounters::new(),
            health: EndpointHealth::new(BreakerConfig::default()),
            conn: Mutex::new(None),
        })
    }

    /// Override the transport settings.
    pub fn with_config(mut self, config: HttpConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the circuit-breaker tuning.
    pub fn with_breaker(mut self, config: BreakerConfig) -> Self {
        self.health = EndpointHealth::new(config);
        self
    }

    /// The endpoint URL.
    pub fn url(&self) -> &Url {
        &self.url
    }

    /// One attempt: send the request, read one response before `deadline`,
    /// streaming a 200 body through the capped results parser as it
    /// arrives. Transport failures come back as `Err(io)`; any complete
    /// HTTP response — even a 500 — is `Ok`. The second tuple element is
    /// the wire bytes read.
    fn attempt(
        &self,
        request: &[u8],
        deadline: Instant,
        token: Option<&CancelToken>,
    ) -> io::Result<(AttemptOutcome, usize)> {
        let mut pooled = true;
        let stream = match self.conn.lock().expect("conn lock poisoned").take() {
            Some(s) => s,
            None => {
                pooled = false;
                TcpStream::connect_timeout(&self.url.socket_addr()?, self.config.connect_timeout)?
            }
        };
        stream.set_nodelay(true).ok();
        let result = send_and_read(
            &stream,
            request,
            deadline,
            token,
            self.config.max_result_rows,
        );
        match result {
            Ok((outcome, wire_bytes, reusable)) => {
                // A connection whose body was not drained to its framing
                // boundary (truncated parse, capped error body) still has
                // response bytes in flight — never pool it.
                if reusable {
                    *self.conn.lock().expect("conn lock poisoned") = Some(stream);
                }
                Ok((outcome, wire_bytes))
            }
            Err(e) if pooled => {
                // The server closed our pooled connection between requests;
                // surface as a retryable transport error on a fresh socket.
                Err(io::Error::new(
                    e.kind(),
                    format!("stale pooled connection: {e}"),
                ))
            }
            Err(e) => Err(e),
        }
    }

    /// The `Accept` header value: binary preferred with a JSON fallback
    /// when offering the compact codec, plain SPARQL-JSON otherwise.
    fn accept_header(&self) -> String {
        if self.config.offer_binary {
            format!(
                "{}, {};q=0.9",
                results_bin::MEDIA_TYPE,
                results_json::MEDIA_TYPE
            )
        } else {
            results_json::MEDIA_TYPE.to_string()
        }
    }

    fn build_request(&self, query_text: &str) -> Vec<u8> {
        let host = self.url.host_header();
        if self.config.use_get {
            let sep = if self.url.path.contains('?') {
                '&'
            } else {
                '?'
            };
            format!(
                "GET {}{}query={} HTTP/1.1\r\nHost: {}\r\nAccept: {}\r\nUser-Agent: lusail\r\n\r\n",
                self.url.path,
                sep,
                percent_encode(query_text),
                host,
                self.accept_header(),
            )
            .into_bytes()
        } else {
            let body = query_text.as_bytes();
            let mut req = format!(
                "POST {} HTTP/1.1\r\nHost: {}\r\nAccept: {}\r\nUser-Agent: lusail\r\n\
                 Content-Type: application/sparql-query\r\nContent-Length: {}\r\n\r\n",
                self.url.path,
                host,
                self.accept_header(),
                body.len(),
            )
            .into_bytes();
            req.extend_from_slice(body);
            req
        }
    }

    /// The full request loop, returning the result together with whether
    /// the server advertised truncation (`X-Lusail-Truncated`) on the
    /// winning response. `execute_within` discards the flag;
    /// `select_with_meta` surfaces it to the integrity layer.
    fn execute_meta(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<(QueryResult, bool), EndpointError> {
        // Consult the breaker first: an open circuit fails fast without
        // touching the network or burning any of the retry budget.
        if let Admission::Rejected { retry_in } = self.health.admit() {
            return Err(EndpointError::circuit_open(&self.name, retry_in));
        }
        let text = lusail_sparql::serializer::serialize_query(query);
        let request = self.build_request(&text);
        let attempts = self.config.retries + 1;
        let mut made = 0u32;
        let mut last_failure = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                let pause = self.config.backoff * (1 << (attempt - 1).min(16));
                // Backoff sleeps never overrun the query budget, and a
                // cancel token trips them awake immediately.
                deadline.pause(pause);
                if deadline.expired() {
                    return Err(EndpointError::expired(&self.name, &deadline));
                }
                self.health.record_retry();
            }
            // Each attempt gets the smaller of the per-attempt timeout and
            // whatever is left of the query budget.
            let budget = deadline.clamp(self.config.request_timeout);
            if budget.is_zero() {
                return Err(EndpointError::expired(&self.name, &deadline));
            }
            made = attempt + 1;
            let started = Instant::now();
            match self.attempt(&request, started + budget, deadline.token()) {
                Ok((outcome, wire_bytes)) => {
                    self.counters
                        .record(request.len(), wire_bytes, started.elapsed());
                    match outcome {
                        AttemptOutcome::Results(streamed, codec, server_truncated) => {
                            self.health.record_success(started.elapsed());
                            match codec {
                                ResponseCodec::Binary { dict_terms } => {
                                    self.codec.record_binary(wire_bytes, dict_terms)
                                }
                                ResponseCodec::Json => {
                                    self.codec.record_json(wire_bytes, self.config.offer_binary)
                                }
                            }
                            if streamed.truncated {
                                // The cap fired mid-parse: a result bomb.
                                // Rejected, not retried — asking again
                                // yields the same bomb.
                                let cap = self.config.max_result_rows.unwrap_or(0);
                                return Err(EndpointError::rejected(
                                    &self.name,
                                    format!(
                                        "response from {} exceeded --max-result-rows ({cap}): \
                                         truncated while parsing, rest of body unread",
                                        self.url
                                    ),
                                ));
                            }
                            return Ok((streamed.result, server_truncated));
                        }
                        AttemptOutcome::Malformed(message) => {
                            // A complete 200 whose body is not a results
                            // document: the transport worked, the content
                            // is bad — don't retry.
                            self.health.record_success(started.elapsed());
                            return Err(EndpointError::rejected(
                                &self.name,
                                format!("unparseable results from {}: {message}", self.url),
                            ));
                        }
                        AttemptOutcome::Status {
                            status: status @ 500..=599,
                            body_head,
                        } => {
                            self.health.record_failure();
                            last_failure = format!("HTTP {status} from {}: {body_head}", self.url);
                        }
                        AttemptOutcome::Status { status, body_head } => {
                            // 4xx (and anything else unexpected) is the
                            // server rejecting *this query* — don't retry.
                            // The transport itself worked, so the breaker
                            // sees a success.
                            self.health.record_success(started.elapsed());
                            return Err(EndpointError::rejected(
                                &self.name,
                                format!("HTTP {status} from {}: {body_head}", self.url),
                            ));
                        }
                    }
                }
                Err(e) => {
                    self.counters.record(request.len(), 0, started.elapsed());
                    if deadline.expired() {
                        // Our own budget clipped this attempt (or its
                        // cancel token tripped mid-read); that is not
                        // evidence against the endpoint.
                        return Err(EndpointError::expired(&self.name, &deadline));
                    }
                    self.health.record_failure();
                    last_failure = format!("transport error talking to {}: {e}", self.url);
                }
            }
            if self.health.state() == BreakerState::Open {
                // The breaker opened mid-request (possibly fed by parallel
                // requests): stop retrying a circuit everyone else is
                // already failing fast on.
                break;
            }
        }
        Err(EndpointError::transport(
            &self.name,
            format!("giving up after {made} attempts: {last_failure}"),
        ))
    }
}

impl SparqlEndpoint for HttpEndpoint {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute_within(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<QueryResult, EndpointError> {
        Ok(self.execute_meta(query, deadline)?.0)
    }

    fn select_with_meta(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<crate::endpoint::SelectResponse, EndpointError> {
        let (result, truncated) = self.execute_meta(query, deadline)?;
        Ok(crate::endpoint::SelectResponse {
            rows: result.into_solutions(),
            truncated,
        })
    }

    fn set_quarantined(&self, on: bool) {
        self.health.set_quarantined(on);
    }

    fn traffic(&self) -> TrafficSnapshot {
        self.counters.snapshot()
    }

    fn reset_traffic(&self) {
        self.counters.reset();
    }

    fn health(&self) -> Option<HealthSnapshot> {
        Some(self.health.snapshot())
    }

    fn codec(&self) -> Option<CodecSnapshot> {
        Some(self.codec.snapshot())
    }
}

/// The interesting outcomes of one HTTP attempt, from the caller's point
/// of view. The body of a 200 is consumed *while parsing* — there is no
/// buffered-whole-body representation of a results response any more.
enum AttemptOutcome {
    /// A 200 whose body parsed as a results document (possibly cut short
    /// by the row cap — see [`results_json::StreamedResult::truncated`]),
    /// tagged with the codec the server actually answered in and whether
    /// the *server* advertised that it truncated the result
    /// (`X-Lusail-Truncated` — ground truth for the integrity layer,
    /// distinct from our own client-side parse cap).
    Results(results_json::StreamedResult, ResponseCodec, bool),
    /// A complete 200 whose body is not a results document.
    Malformed(String),
    /// Any non-200 status, with the head of its body for error messages.
    Status { status: u16, body_head: String },
}

/// Which results codec a 200 response was decoded with, per its
/// `Content-Type` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ResponseCodec {
    /// SPARQL 1.1 JSON — the universal fallback.
    Json,
    /// Lusail's binary codec, carrying a term dictionary this large.
    Binary { dict_terms: usize },
}

/// Cap on how much of a non-200 error body (or post-document slack) is
/// read: plenty for an error message, useless to a result bomb.
const ERROR_BODY_CAP: usize = 64 * 1024;

fn send_and_read(
    stream: &TcpStream,
    request: &[u8],
    deadline: Instant,
    token: Option<&CancelToken>,
    max_result_rows: Option<usize>,
) -> io::Result<(AttemptOutcome, usize, bool)> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "request deadline exceeded"))?;
    stream.set_write_timeout(Some(remaining))?;
    (&mut &*stream).write_all(request)?;
    (&mut &*stream).flush()?;
    let mut reader = DeadlineReader {
        stream,
        buf: Vec::new(),
        pos: 0,
        deadline,
        token,
        total: 0,
    };

    let head = read_head(&mut reader)?;
    let framing = if head.chunked {
        Framing::Chunked {
            remaining: 0,
            done: false,
        }
    } else if let Some(n) = head.content_length {
        Framing::Sized { remaining: n }
    } else {
        // No framing: the body runs to connection close.
        Framing::Close
    };
    let keep_alive = head.keep_alive && !matches!(framing, Framing::Close);
    let mut body = BodyReader {
        reader: &mut reader,
        framing,
    };

    // Dispatch on the response Content-Type: the binary codec only when
    // the server explicitly declared it, SPARQL-JSON for everything else
    // (including no Content-Type at all) — that IS the foreign-endpoint
    // fallback.
    let binary = head
        .content_type
        .as_deref()
        .is_some_and(|ct| ct.starts_with(results_bin::MEDIA_TYPE));
    let (outcome, drained) = if head.status == 200 && binary {
        match results_bin::parse_stream(&mut body, max_result_rows) {
            Ok(streamed) => {
                let drained = !streamed.truncated && body.discard(ERROR_BODY_CAP).unwrap_or(false);
                let codec = ResponseCodec::Binary {
                    dict_terms: streamed.dict_terms,
                };
                (
                    AttemptOutcome::Results(
                        results_json::StreamedResult {
                            result: streamed.result,
                            warnings: streamed.warnings,
                            truncated: streamed.truncated,
                        },
                        codec,
                        head.truncated,
                    ),
                    drained,
                )
            }
            Err(results_bin::BinStreamError::Io(e)) => return Err(e),
            Err(results_bin::BinStreamError::Malformed(m)) => (AttemptOutcome::Malformed(m), false),
        }
    } else if head.status == 200 {
        match results_json::parse_stream(&mut body, max_result_rows) {
            Ok(streamed) => {
                // Reuse the connection only when the body actually ends
                // where the document did (modulo a little slack). A drain
                // error just forfeits pooling; the response already won.
                let drained = !streamed.truncated && body.discard(ERROR_BODY_CAP).unwrap_or(false);
                (
                    AttemptOutcome::Results(streamed, ResponseCodec::Json, head.truncated),
                    drained,
                )
            }
            Err(results_json::StreamError::Io(e)) => return Err(e),
            Err(results_json::StreamError::Malformed(e)) => {
                (AttemptOutcome::Malformed(e.to_string()), false)
            }
        }
    } else {
        let (bytes, complete) = body.read_capped(ERROR_BODY_CAP)?;
        (
            AttemptOutcome::Status {
                status: head.status,
                body_head: body_head(&bytes),
            },
            complete,
        )
    };
    Ok((outcome, reader.total, keep_alive && drained))
}

/// The first line of a body, truncated — enough for an error message
/// without dumping a whole document.
fn body_head(bytes: &[u8]) -> String {
    let text = String::from_utf8_lossy(bytes);
    let line = text.lines().next().unwrap_or("");
    let head: String = line.chars().take(160).collect();
    if head.is_empty() {
        "<empty body>".to_string()
    } else {
        head
    }
}

/// Status line plus the framing-relevant headers of one response.
struct ResponseHead {
    status: u16,
    content_length: Option<usize>,
    content_type: Option<String>,
    chunked: bool,
    keep_alive: bool,
    /// The server declared the result truncated (`X-Lusail-Truncated`).
    truncated: bool,
}

fn read_head(reader: &mut DeadlineReader<'_>) -> io::Result<ResponseHead> {
    let status_line = reader.read_line()?;
    let status = parse_status_line(&status_line)
        .ok_or_else(|| bad_data(format!("malformed status line {status_line:?}")))?;

    let mut head = ResponseHead {
        status,
        content_length: None,
        content_type: None,
        chunked: false,
        keep_alive: true, // HTTP/1.1 default
        truncated: false,
    };
    loop {
        let line = reader.read_line()?;
        if line.is_empty() {
            return Ok(head);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad_data(format!("malformed header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                head.content_length = Some(
                    value
                        .parse()
                        .map_err(|_| bad_data(format!("bad Content-Length {value:?}")))?,
                );
            }
            "content-type" => {
                head.content_type = Some(value.to_ascii_lowercase());
            }
            "transfer-encoding" => {
                head.chunked = value.eq_ignore_ascii_case("chunked");
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    head.keep_alive = false;
                }
            }
            "x-lusail-truncated" => {
                head.truncated = !value.eq_ignore_ascii_case("false");
            }
            _ => {}
        }
    }
}

fn parse_status_line(line: &str) -> Option<u16> {
    let mut parts = line.split_whitespace();
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    parts.next()?.parse().ok()
}

/// Body framing, decoded incrementally.
enum Framing {
    /// `Content-Length: n` — `remaining` bytes left.
    Sized { remaining: usize },
    /// `Transfer-Encoding: chunked` — `remaining` bytes left in the
    /// current chunk; `done` after the terminal 0-chunk and trailers.
    Chunked { remaining: usize, done: bool },
    /// No framing: the body runs to connection close.
    Close,
}

/// Presents the framed response body as a plain byte stream, so the
/// results parser consumes it incrementally — a result bomb is truncated
/// at the parser without the body ever existing in memory at once.
struct BodyReader<'a, 'b> {
    reader: &'b mut DeadlineReader<'a>,
    framing: Framing,
}

impl io::Read for BodyReader<'_, '_> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        match &mut self.framing {
            Framing::Sized { remaining } => {
                if *remaining == 0 {
                    return Ok(0);
                }
                let want = out.len().min(*remaining);
                let n = self.reader.read_buf(&mut out[..want])?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-body",
                    ));
                }
                *remaining -= n;
                Ok(n)
            }
            Framing::Chunked { remaining, done } => {
                if *done {
                    return Ok(0);
                }
                if *remaining == 0 {
                    let size_line = self.reader.read_line()?;
                    let size_hex = size_line.split(';').next().unwrap_or("").trim();
                    let size = usize::from_str_radix(size_hex, 16)
                        .map_err(|_| bad_data(format!("bad chunk size {size_line:?}")))?;
                    if size == 0 {
                        // Trailer section, ends with an empty line.
                        while !self.reader.read_line()?.is_empty() {}
                        *done = true;
                        return Ok(0);
                    }
                    *remaining = size;
                }
                let want = out.len().min(*remaining);
                let n = self.reader.read_buf(&mut out[..want])?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-chunk",
                    ));
                }
                *remaining -= n;
                if *remaining == 0 {
                    let crlf = self.reader.read_line()?;
                    if !crlf.is_empty() {
                        return Err(bad_data("chunk data not followed by CRLF"));
                    }
                }
                Ok(n)
            }
            Framing::Close => self.reader.read_buf(out),
        }
    }
}

impl BodyReader<'_, '_> {
    /// Read at most `cap` bytes of the remaining body. Returns the bytes
    /// and whether the body ended within the cap.
    fn read_capped(&mut self, cap: usize) -> io::Result<(Vec<u8>, bool)> {
        use io::Read;
        let mut out = Vec::new();
        let mut chunk = [0u8; 4096];
        while out.len() < cap {
            let want = chunk.len().min(cap - out.len());
            let n = self.read(&mut chunk[..want])?;
            if n == 0 {
                return Ok((out, true));
            }
            out.extend_from_slice(&chunk[..n]);
        }
        let n = self.read(&mut chunk[..1])?;
        out.truncate(cap);
        Ok((out, n == 0))
    }

    /// Discard up to `cap` remaining body bytes; `true` when the body
    /// ended within the cap.
    fn discard(&mut self, cap: usize) -> io::Result<bool> {
        use io::Read;
        let mut thrown = 0usize;
        let mut chunk = [0u8; 4096];
        while thrown <= cap {
            let n = self.read(&mut chunk)?;
            if n == 0 {
                return Ok(true);
            }
            thrown += n;
        }
        Ok(false)
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A tiny buffered reader that re-arms the socket read timeout with the
/// remaining deadline before every receive, and counts bytes read. With a
/// cancel token, receives wait in short slices so a trip mid-transfer
/// aborts the read promptly instead of after the full response window.
struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    buf: Vec<u8>,
    pos: usize,
    deadline: Instant,
    token: Option<&'a CancelToken>,
    total: usize,
}

impl DeadlineReader<'_> {
    /// Pull more bytes off the socket. Returns 0 at orderly EOF.
    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; 8192];
        loop {
            if let Some(reason) = self.token.and_then(|t| t.reason()) {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("read abandoned: query cancelled ({reason})"),
                ));
            }
            let remaining = self
                .deadline
                .checked_duration_since(Instant::now())
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::TimedOut, "response deadline exceeded")
                })?;
            let window = if self.token.is_some() {
                remaining.min(Duration::from_millis(100))
            } else {
                remaining
            };
            self.stream
                .set_read_timeout(Some(window.max(Duration::from_millis(1))))?;
            match (&mut &*self.stream).read(&mut chunk) {
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.total += n;
                    return Ok(n);
                }
                // A sliced wait lapsing is not an error: loop to check the
                // token and the real deadline, then wait again.
                Err(e)
                    if self.token.is_some()
                        && matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read one line, stripping the trailing CRLF (or bare LF).
    fn read_line(&mut self) -> io::Result<String> {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let end = self.pos + nl;
                let mut line = &self.buf[self.pos..end];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let text = String::from_utf8_lossy(line).into_owned();
                self.pos = end + 1;
                return Ok(text);
            }
            if self.buf.len() > 1 << 20 {
                return Err(bad_data("header line longer than 1 MiB"));
            }
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ));
            }
        }
    }

    /// Copy buffered (or freshly received) bytes into `out`, compacting
    /// the internal buffer whenever it is fully consumed so a streamed
    /// body never accumulates. Returns 0 at orderly EOF.
    fn read_buf(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if self.fill()? == 0 {
                return Ok(0);
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Percent-encode for a URL query component (RFC 3986 unreserved set kept).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decode a percent-encoded component. With `form`, `+` decodes to space
/// (the `application/x-www-form-urlencoded` convention).
pub fn percent_decode(s: &str, form: bool) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| "truncated percent escape".to_string())?;
                let hex = std::str::from_utf8(hex).map_err(|_| "bad percent escape")?;
                let v = u8::from_str_radix(hex, 16)
                    .map_err(|_| format!("bad percent escape %{hex}"))?;
                out.push(v);
                i += 3;
            }
            b'+' if form => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| "percent-decoded bytes are not UTF-8".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    #[test]
    fn url_parsing() {
        let u = Url::parse("http://127.0.0.1:8890/sparql").unwrap();
        assert_eq!(
            (u.host.as_str(), u.port, u.path.as_str()),
            ("127.0.0.1", 8890, "/sparql")
        );
        assert_eq!(u.host_header(), "127.0.0.1:8890");

        let u = Url::parse("http://example.org").unwrap();
        assert_eq!((u.port, u.path.as_str()), (80, "/"));
        assert_eq!(u.host_header(), "example.org");

        assert!(Url::parse("https://example.org/")
            .unwrap_err()
            .contains("TLS"));
        assert!(Url::parse("ftp://example.org/").is_err());
        assert!(Url::parse("http://:80/").is_err());
        assert!(Url::parse("http://h:notaport/").is_err());
    }

    #[test]
    fn percent_round_trip() {
        let q = "SELECT ?s WHERE { ?s <http://x/p> \"a b+c\" } # ünïcödé";
        let enc = percent_encode(q);
        assert!(!enc.contains(' ') && !enc.contains('"'));
        assert_eq!(percent_decode(&enc, false).unwrap(), q);
        // Form decoding turns '+' into space.
        assert_eq!(percent_decode("a+b%20c", true).unwrap(), "a b c");
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
        assert!(percent_decode("%zz", false).is_err());
        assert!(percent_decode("%2", false).is_err());
    }

    /// Spawn a one-shot server that answers each accepted connection with
    /// the canned responses, in order (one response per connection).
    fn canned_server(responses: Vec<Vec<u8>>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for response in responses {
                let (mut sock, _) = listener.accept().unwrap();
                // Drain the request headers (and POST body) minimally.
                let mut reader = BufReader::new(sock.try_clone().unwrap());
                let mut content_length = 0usize;
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    let t = line.trim();
                    if let Some(v) = t.to_ascii_lowercase().strip_prefix("content-length:") {
                        content_length = v.trim().parse().unwrap_or(0);
                    }
                    if t.is_empty() {
                        break;
                    }
                }
                if content_length > 0 {
                    let mut body = vec![0u8; content_length];
                    reader.read_exact(&mut body).ok();
                }
                sock.write_all(&response).ok();
                // Connection drops when `sock` goes out of scope.
            }
        });
        (format!("http://{addr}/sparql"), handle)
    }

    fn ok_response(body: &str) -> Vec<u8> {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/sparql-results+json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
        .into_bytes()
    }

    fn test_config() -> HttpConfig {
        HttpConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(1),
            use_get: false,
            max_result_rows: None,
            offer_binary: true,
        }
    }

    fn ask_query() -> Query {
        lusail_sparql::parse_query("ASK { ?s ?p ?o }").unwrap()
    }

    #[test]
    fn x_lusail_truncated_header_is_ground_truth() {
        let mut rel =
            lusail_sparql::solution::Relation::new(vec![lusail_sparql::ast::Variable::new("s")]);
        rel.push(vec![Some(lusail_rdf::Term::iri("http://x/a"))]);
        let body = results_json::serialize(&QueryResult::Solutions(rel));
        let with_header = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/sparql-results+json\r\n\
             X-Lusail-Truncated: true\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
        .into_bytes();
        let (url, server) = canned_server(vec![with_header, ok_response(&body)]);
        let ep = HttpEndpoint::new("t", &url)
            .unwrap()
            .with_config(test_config());
        let q = lusail_sparql::parse_query("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        // The advertisement arrives as metadata, not an error: the rows
        // are delivered and the flag tells the integrity layer to page.
        let resp = ep.select_with_meta(&q, Deadline::none()).unwrap();
        assert!(resp.truncated, "header must surface as ground truth");
        assert_eq!(resp.rows.len(), 1);
        // Without the header, the same body reports no advertisement.
        let resp = ep.select_with_meta(&q, Deadline::none()).unwrap();
        assert!(!resp.truncated);
        server.join().unwrap();
    }

    #[test]
    fn retries_500_then_succeeds() {
        let boolean = results_json::boolean_json(true);
        let (url, server) = canned_server(vec![
            b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 4\r\nConnection: close\r\n\r\noops".to_vec(),
            ok_response(&boolean),
        ]);
        let ep = HttpEndpoint::new("flaky", &url)
            .unwrap()
            .with_config(test_config());
        assert!(ep.ask(&ask_query()).unwrap());
        let t = ep.traffic();
        assert_eq!(t.requests, 2, "the 500 attempt must be counted too");
        assert!(t.simulated_network_time > Duration::ZERO);
        server.join().unwrap();
    }

    #[test]
    fn exhausted_retries_surface_endpoint_error() {
        let five_hundred =
            b"HTTP/1.1 503 Unavailable\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbusy"
                .to_vec();
        let (url, server) = canned_server(vec![
            five_hundred.clone(),
            five_hundred.clone(),
            five_hundred,
        ]);
        let ep = HttpEndpoint::new("down", &url)
            .unwrap()
            .with_config(test_config());
        let err = ep.execute(&ask_query()).unwrap_err();
        assert_eq!(err.endpoint, "down");
        assert!(err.message.contains("3 attempts"), "{err}");
        assert!(err.message.contains("503"), "{err}");
        server.join().unwrap();
    }

    #[test]
    fn client_error_is_not_retried() {
        let (url, server) = canned_server(vec![
            b"HTTP/1.1 400 Bad Request\r\nContent-Length: 9\r\nConnection: close\r\n\r\nbad query"
                .to_vec(),
        ]);
        let ep = HttpEndpoint::new("strict", &url)
            .unwrap()
            .with_config(test_config());
        let err = ep.execute(&ask_query()).unwrap_err();
        assert!(err.message.contains("400"), "{err}");
        assert!(err.message.contains("bad query"), "{err}");
        assert_eq!(ep.traffic().requests, 1, "4xx must not be retried");
        server.join().unwrap();
    }

    #[test]
    fn connection_drop_mid_response_is_retried() {
        let boolean = results_json::boolean_json(false);
        let truncated = b"HTTP/1.1 200 OK\r\nContent-Length: 9999\r\n\r\n{\"head\":".to_vec();
        let (url, server) = canned_server(vec![truncated, ok_response(&boolean)]);
        let ep = HttpEndpoint::new("drops", &url)
            .unwrap()
            .with_config(test_config());
        assert!(!ep.ask(&ask_query()).unwrap());
        assert_eq!(ep.traffic().requests, 2);
        server.join().unwrap();
    }

    #[test]
    fn malformed_http_is_a_transport_error() {
        let (url, server) = canned_server(vec![b"NOT HTTP AT ALL\r\n\r\n".to_vec(); 3]);
        let ep = HttpEndpoint::new("garbled", &url)
            .unwrap()
            .with_config(test_config());
        let err = ep.execute(&ask_query()).unwrap_err();
        assert!(err.message.contains("malformed status line"), "{err}");
        server.join().unwrap();
    }

    #[test]
    fn chunked_responses_are_reassembled() {
        let boolean = results_json::boolean_json(true);
        let (a, b) = boolean.split_at(boolean.len() / 2);
        let chunked = format!(
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n\
             {:x}\r\n{}\r\n{:x}\r\n{}\r\n0\r\n\r\n",
            a.len(),
            a,
            b.len(),
            b
        );
        let (url, server) = canned_server(vec![chunked.into_bytes()]);
        let ep = HttpEndpoint::new("chunky", &url)
            .unwrap()
            .with_config(test_config());
        assert!(ep.ask(&ask_query()).unwrap());
        server.join().unwrap();
    }

    #[test]
    fn row_cap_truncates_result_bomb_while_parsing() {
        use lusail_sparql::ast::Variable;
        // A hostile endpoint declares a gigantic body and streams rows
        // until the client hangs up. With --max-result-rows the client
        // must reject after the cap with the rest of the body unread —
        // if it tried to buffer the response this test would never end.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(sock.try_clone().unwrap());
            loop {
                let mut line = String::new();
                if reader.read_line(&mut line).unwrap_or(0) == 0 || line.trim().is_empty() {
                    break;
                }
            }
            let vars = [Variable::new("x")];
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: {}\r\nContent-Length: 999999999\r\n\r\n{}",
                results_json::MEDIA_TYPE,
                results_json::head_json(&vars),
            );
            sock.write_all(head.as_bytes()).unwrap();
            let mut written = 0usize;
            for i in 0u64.. {
                let row = vec![Some(lusail_rdf::Term::iri(format!("http://bomb/{i}")))];
                let sep = if i == 0 { "" } else { "," };
                let payload = format!("{sep}{}", results_json::binding_json(&vars, &row));
                written += payload.len();
                if sock.write_all(payload.as_bytes()).is_err() {
                    break; // the client hung up — exactly what we want
                }
            }
            written
        });
        let ep = HttpEndpoint::new("bomb", &format!("http://{addr}/sparql"))
            .unwrap()
            .with_config(HttpConfig {
                retries: 0,
                max_result_rows: Some(8),
                ..test_config()
            });
        let q = lusail_sparql::parse_query("SELECT ?x WHERE { ?s ?p ?x }").unwrap();
        let err = ep.execute(&q).unwrap_err();
        assert!(err.message.contains("--max-result-rows (8)"), "{err}");
        assert!(err.message.contains("unread"), "{err}");
        drop(ep); // closes the socket so the server thread stops writing
        let written = server.join().unwrap();
        assert!(
            written < 4 << 20,
            "server should hit a closed socket early, wrote {written} bytes"
        );
    }

    #[test]
    fn streamed_solutions_round_trip_and_pool_the_connection() {
        use lusail_sparql::ast::Variable;
        let vars = [Variable::new("x")];
        let mut doc = results_json::head_json(&vars);
        for i in 0..3 {
            if i > 0 {
                doc.push(',');
            }
            let row = vec![Some(lusail_rdf::Term::iri(format!("http://x/{i}")))];
            doc.push_str(&results_json::binding_json(&vars, &row));
        }
        doc.push_str(results_json::SOLUTIONS_TAIL);
        // Two keep-alive responses on ONE connection: the second request
        // only works if the first body was fully drained and pooled.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let body = doc.clone();
        let server = std::thread::spawn(move || {
            let (mut sock, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(sock.try_clone().unwrap());
            for _ in 0..2 {
                let mut content_length = 0usize;
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        return;
                    }
                    let t = line.trim();
                    if let Some(v) = t.to_ascii_lowercase().strip_prefix("content-length:") {
                        content_length = v.trim().parse().unwrap_or(0);
                    }
                    if t.is_empty() {
                        break;
                    }
                }
                if content_length > 0 {
                    let mut b = vec![0u8; content_length];
                    reader.read_exact(&mut b).ok();
                }
                sock.write_all(
                    format!(
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{}",
                        body.len(),
                        body
                    )
                    .as_bytes(),
                )
                .unwrap();
            }
        });
        let ep = HttpEndpoint::new("pooled", &format!("http://{addr}/sparql"))
            .unwrap()
            .with_config(test_config());
        let q = lusail_sparql::parse_query("SELECT ?x WHERE { ?s ?p ?x }").unwrap();
        for _ in 0..2 {
            let rel = ep.select(&q).unwrap();
            assert_eq!(rel.len(), 3);
            assert_eq!(rel.rows()[2][0], Some(lusail_rdf::Term::iri("http://x/2")));
        }
        server.join().unwrap();
    }

    #[test]
    fn unreachable_endpoint_reports_transport_error() {
        // A bound-then-dropped listener leaves a port nothing listens on.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let ep = HttpEndpoint::new("nobody", &format!("http://127.0.0.1:{port}/sparql"))
            .unwrap()
            .with_config(HttpConfig {
                retries: 1,
                ..test_config()
            });
        let err = ep.execute(&ask_query()).unwrap_err();
        assert!(err.message.contains("transport error"), "{err}");
        assert_eq!(err.kind, crate::FailureKind::Transport);
        assert_eq!(ep.traffic().requests, 2);
    }

    #[test]
    fn open_breaker_fails_fast_without_touching_the_network() {
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let ep = HttpEndpoint::new("dead", &format!("http://127.0.0.1:{port}/sparql"))
            .unwrap()
            .with_config(test_config())
            .with_breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_secs(30),
                ewma_alpha: 0.2,
            });
        // First call burns the retry budget (3 attempts) and opens the
        // breaker; the second fails fast with no new traffic.
        let err = ep.execute(&ask_query()).unwrap_err();
        assert_eq!(err.kind, crate::FailureKind::Transport);
        let requests_after_first = ep.traffic().requests;
        assert_eq!(requests_after_first, 3);

        let started = Instant::now();
        let err = ep.execute(&ask_query()).unwrap_err();
        assert_eq!(err.kind, crate::FailureKind::CircuitOpen);
        assert!(err.message.contains("circuit breaker open"), "{err}");
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "must not dial"
        );
        assert_eq!(ep.traffic().requests, requests_after_first);

        let h = ep.health().unwrap();
        assert_eq!(h.breaker, BreakerState::Open);
        assert_eq!(h.failures, 3);
        assert_eq!(h.open_rejections, 1);
    }

    #[test]
    fn breaker_recovers_via_half_open_probe() {
        let boolean = results_json::boolean_json(true);
        let (url, server) = canned_server(vec![ok_response(&boolean)]);
        // Open the breaker by hand, with a cooldown short enough to lapse.
        let ep = HttpEndpoint::new("flappy", &url)
            .unwrap()
            .with_config(test_config())
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(30),
                ewma_alpha: 0.2,
            });
        ep.health.record_failure();
        ep.health.record_failure();
        assert_eq!(ep.health().unwrap().breaker, BreakerState::Open);
        assert!(matches!(
            ep.execute(&ask_query()),
            Err(e) if e.kind == crate::FailureKind::CircuitOpen
        ));
        std::thread::sleep(Duration::from_millis(40));
        // The cooldown elapsed: the next request is the probe, it
        // succeeds, and the breaker closes again.
        assert!(ep.ask(&ask_query()).unwrap());
        assert_eq!(ep.health().unwrap().breaker, BreakerState::Closed);
        server.join().unwrap();
    }

    #[test]
    fn expired_deadline_fails_before_dialling() {
        let (url, _server) = canned_server(vec![]);
        let ep = HttpEndpoint::new("late", &url)
            .unwrap()
            .with_config(test_config());
        let err = ep
            .execute_within(&ask_query(), Deadline::within(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err.kind, crate::FailureKind::Deadline);
        assert_eq!(ep.traffic().requests, 0);
    }

    #[test]
    fn deadline_clamps_the_attempt_timeout() {
        // A server that accepts but never answers: the attempt must give
        // up when the query budget lapses, long before request_timeout.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let conns: Vec<_> = (0..1).filter_map(|_| listener.accept().ok()).collect();
            std::thread::sleep(Duration::from_millis(300));
            drop(conns);
        });
        let ep = HttpEndpoint::new("silent", &format!("http://{addr}/sparql"))
            .unwrap()
            .with_config(HttpConfig {
                request_timeout: Duration::from_secs(30),
                retries: 2,
                ..test_config()
            });
        let started = Instant::now();
        let err = ep
            .execute_within(&ask_query(), Deadline::within(Duration::from_millis(60)))
            .unwrap_err();
        assert_eq!(err.kind, crate::FailureKind::Deadline, "{err}");
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "query budget must clip the 30 s per-attempt timeout: {:?}",
            started.elapsed()
        );
        server.join().unwrap();
    }
}
