//! A real HTTP transport for SPARQL endpoints, built on `std::net` only.
//!
//! [`HttpEndpoint`] implements [`SparqlEndpoint`] by speaking the SPARQL
//! 1.1 Protocol over hand-rolled HTTP/1.1: it POSTs the query as
//! `application/sparql-query` (or GETs `?query=` when configured),
//! reads Content-Length or chunked responses, and parses the
//! `application/sparql-results+json` body with [`crate::results_json`].
//!
//! Reliability knobs live in [`HttpConfig`]: a per-attempt deadline that
//! bounds connect, send, and every read; and retry with doubling backoff
//! on connect/transport errors and 5xx responses (4xx and malformed
//! result documents fail immediately — retrying a rejected query cannot
//! help). Connections are kept alive and reused across requests; a stale
//! pooled connection simply burns one retry. The CLI surfaces the retry
//! budget as `lusail query --retries N --backoff MS`. Retries here are
//! *per member*; failing over to a different mirror of the same dataset
//! is the layer above — see [`crate::replica::ReplicaGroup`].
//!
//! Traffic accounting mirrors [`SimulatedEndpoint`](crate::SimulatedEndpoint):
//! requests, bytes on the wire in both directions, and the measured
//! network time (here it is *real* wall-clock time spent on the socket,
//! reported through the same `simulated_network_time` field).

use crate::endpoint::{EndpointError, SparqlEndpoint};
use crate::erh::{
    Admission, BreakerConfig, BreakerState, Deadline, EndpointHealth, HealthSnapshot,
};
use crate::network::{RequestCounters, TrafficSnapshot};
use crate::results_json;
use lusail_sparql::ast::Query;
use lusail_store::eval::QueryResult;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A parsed `http://host[:port]/path` endpoint URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Url {
    pub host: String,
    pub port: u16,
    /// Path plus any query string, always starting with `/`.
    pub path: String,
}

impl Url {
    /// Parse an endpoint URL. Only `http` is supported (there is no TLS
    /// stack in a std-only build); `https` URLs are rejected with a clear
    /// message rather than failing mid-handshake.
    pub fn parse(url: &str) -> Result<Url, String> {
        let rest = url.strip_prefix("http://").ok_or_else(|| {
            if url.starts_with("https://") {
                format!("{url}: https is not supported (std-only build has no TLS)")
            } else {
                format!("{url}: expected an http:// URL")
            }
        })?;
        let (authority, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port = p
                    .parse::<u16>()
                    .map_err(|_| format!("{url}: invalid port {p:?}"))?;
                (h, port)
            }
            None => (authority, 80),
        };
        if host.is_empty() {
            return Err(format!("{url}: missing host"));
        }
        Ok(Url {
            host: host.to_string(),
            port,
            path: path.to_string(),
        })
    }

    /// The `Host:` header value (port elided when it is the default 80).
    pub fn host_header(&self) -> String {
        if self.port == 80 {
            self.host.clone()
        } else {
            format!("{}:{}", self.host, self.port)
        }
    }

    fn socket_addr(&self) -> io::Result<SocketAddr> {
        (self.host.as_str(), self.port)
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "host resolved to no address"))
    }
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http://{}{}", self.host_header(), self.path)
    }
}

/// Client transport settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HttpConfig {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Overall deadline for one request attempt (send + all reads).
    pub request_timeout: Duration,
    /// Additional attempts after the first, on connect/transport errors
    /// and 5xx responses.
    pub retries: u32,
    /// Sleep before the first retry; doubles on each subsequent one.
    pub backoff: Duration,
    /// Send `GET ?query=…` instead of `POST application/sparql-query`.
    pub use_get: bool,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            connect_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            retries: 2,
            backoff: Duration::from_millis(50),
            use_get: false,
        }
    }
}

/// A remote SPARQL endpoint reached over HTTP.
pub struct HttpEndpoint {
    name: String,
    url: Url,
    config: HttpConfig,
    counters: RequestCounters,
    health: EndpointHealth,
    /// Pooled keep-alive connection, reused across requests.
    conn: Mutex<Option<TcpStream>>,
}

impl HttpEndpoint {
    /// Create an endpoint from a URL string like
    /// `http://127.0.0.1:8890/sparql`.
    pub fn new(name: impl Into<String>, url: &str) -> Result<Self, EndpointError> {
        let name = name.into();
        let url =
            Url::parse(url).map_err(|message| EndpointError::rejected(name.clone(), message))?;
        Ok(HttpEndpoint {
            name,
            url,
            config: HttpConfig::default(),
            counters: RequestCounters::new(),
            health: EndpointHealth::new(BreakerConfig::default()),
            conn: Mutex::new(None),
        })
    }

    /// Override the transport settings.
    pub fn with_config(mut self, config: HttpConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the circuit-breaker tuning.
    pub fn with_breaker(mut self, config: BreakerConfig) -> Self {
        self.health = EndpointHealth::new(config);
        self
    }

    /// The endpoint URL.
    pub fn url(&self) -> &Url {
        &self.url
    }

    /// One attempt: send the request, read one full response before
    /// `deadline`. Transport failures come back as `Err(io)`; any complete
    /// HTTP response — even a 500 — is `Ok`.
    fn attempt(&self, request: &[u8], deadline: Instant) -> io::Result<HttpResponse> {
        let mut pooled = true;
        let stream = match self.conn.lock().expect("conn lock poisoned").take() {
            Some(s) => s,
            None => {
                pooled = false;
                TcpStream::connect_timeout(&self.url.socket_addr()?, self.config.connect_timeout)?
            }
        };
        stream.set_nodelay(true).ok();
        let result = send_and_read(&stream, request, deadline);
        match result {
            Ok(resp) => {
                if resp.keep_alive {
                    *self.conn.lock().expect("conn lock poisoned") = Some(stream);
                }
                Ok(resp)
            }
            Err(e) if pooled => {
                // The server closed our pooled connection between requests;
                // surface as a retryable transport error on a fresh socket.
                Err(io::Error::new(
                    e.kind(),
                    format!("stale pooled connection: {e}"),
                ))
            }
            Err(e) => Err(e),
        }
    }

    fn build_request(&self, query_text: &str) -> Vec<u8> {
        let host = self.url.host_header();
        if self.config.use_get {
            let sep = if self.url.path.contains('?') {
                '&'
            } else {
                '?'
            };
            format!(
                "GET {}{}query={} HTTP/1.1\r\nHost: {}\r\nAccept: {}\r\nUser-Agent: lusail\r\n\r\n",
                self.url.path,
                sep,
                percent_encode(query_text),
                host,
                results_json::MEDIA_TYPE,
            )
            .into_bytes()
        } else {
            let body = query_text.as_bytes();
            let mut req = format!(
                "POST {} HTTP/1.1\r\nHost: {}\r\nAccept: {}\r\nUser-Agent: lusail\r\n\
                 Content-Type: application/sparql-query\r\nContent-Length: {}\r\n\r\n",
                self.url.path,
                host,
                results_json::MEDIA_TYPE,
                body.len(),
            )
            .into_bytes();
            req.extend_from_slice(body);
            req
        }
    }
}

impl SparqlEndpoint for HttpEndpoint {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute_within(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<QueryResult, EndpointError> {
        // Consult the breaker first: an open circuit fails fast without
        // touching the network or burning any of the retry budget.
        if let Admission::Rejected { retry_in } = self.health.admit() {
            return Err(EndpointError::circuit_open(&self.name, retry_in));
        }
        let text = lusail_sparql::serializer::serialize_query(query);
        let request = self.build_request(&text);
        let attempts = self.config.retries + 1;
        let mut made = 0u32;
        let mut last_failure = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                let pause = self.config.backoff * (1 << (attempt - 1).min(16));
                // Backoff sleeps never overrun the query budget.
                std::thread::sleep(deadline.clamp(pause));
                if deadline.expired() {
                    return Err(EndpointError::deadline(&self.name));
                }
                self.health.record_retry();
            }
            // Each attempt gets the smaller of the per-attempt timeout and
            // whatever is left of the query budget.
            let budget = deadline.clamp(self.config.request_timeout);
            if budget.is_zero() {
                return Err(EndpointError::deadline(&self.name));
            }
            made = attempt + 1;
            let started = Instant::now();
            match self.attempt(&request, started + budget) {
                Ok(resp) => {
                    self.counters
                        .record(request.len(), resp.wire_bytes, started.elapsed());
                    match resp.status {
                        200 => {
                            self.health.record_success(started.elapsed());
                            let body = String::from_utf8_lossy(&resp.body);
                            return results_json::parse(&body).map_err(|e| {
                                EndpointError::rejected(
                                    &self.name,
                                    format!("unparseable results from {}: {e}", self.url),
                                )
                            });
                        }
                        500..=599 => {
                            self.health.record_failure();
                            last_failure = format!(
                                "HTTP {} from {}: {}",
                                resp.status,
                                self.url,
                                resp.body_head()
                            );
                        }
                        status => {
                            // 4xx (and anything else unexpected) is the
                            // server rejecting *this query* — don't retry.
                            // The transport itself worked, so the breaker
                            // sees a success.
                            self.health.record_success(started.elapsed());
                            return Err(EndpointError::rejected(
                                &self.name,
                                format!("HTTP {status} from {}: {}", self.url, resp.body_head()),
                            ));
                        }
                    }
                }
                Err(e) => {
                    self.counters.record(request.len(), 0, started.elapsed());
                    if deadline.expired() {
                        // Our own budget clipped this attempt; that is a
                        // query timeout, not evidence against the endpoint.
                        return Err(EndpointError::deadline(&self.name));
                    }
                    self.health.record_failure();
                    last_failure = format!("transport error talking to {}: {e}", self.url);
                }
            }
            if self.health.state() == BreakerState::Open {
                // The breaker opened mid-request (possibly fed by parallel
                // requests): stop retrying a circuit everyone else is
                // already failing fast on.
                break;
            }
        }
        Err(EndpointError::transport(
            &self.name,
            format!("giving up after {made} attempts: {last_failure}"),
        ))
    }

    fn traffic(&self) -> TrafficSnapshot {
        self.counters.snapshot()
    }

    fn reset_traffic(&self) {
        self.counters.reset();
    }

    fn health(&self) -> Option<HealthSnapshot> {
        Some(self.health.snapshot())
    }
}

/// One fully-read HTTP response.
struct HttpResponse {
    status: u16,
    body: Vec<u8>,
    /// Total bytes read off the socket (status line + headers + body).
    wire_bytes: usize,
    keep_alive: bool,
}

impl HttpResponse {
    /// The first line of the body, truncated — enough for an error message
    /// without dumping a whole document.
    fn body_head(&self) -> String {
        let text = String::from_utf8_lossy(&self.body);
        let line = text.lines().next().unwrap_or("");
        let head: String = line.chars().take(160).collect();
        if head.is_empty() {
            "<empty body>".to_string()
        } else {
            head
        }
    }
}

fn send_and_read(
    stream: &TcpStream,
    request: &[u8],
    deadline: Instant,
) -> io::Result<HttpResponse> {
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "request deadline exceeded"))?;
    stream.set_write_timeout(Some(remaining))?;
    (&mut &*stream).write_all(request)?;
    (&mut &*stream).flush()?;
    let mut reader = DeadlineReader {
        stream,
        buf: Vec::new(),
        pos: 0,
        deadline,
        total: 0,
    };
    read_response(&mut reader)
}

/// Parse one HTTP/1.1 response from `reader`.
fn read_response(reader: &mut DeadlineReader<'_>) -> io::Result<HttpResponse> {
    let status_line = reader.read_line()?;
    let status = parse_status_line(&status_line)
        .ok_or_else(|| bad_data(format!("malformed status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut keep_alive = true; // HTTP/1.1 default
    loop {
        let line = reader.read_line()?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad_data(format!("malformed header line {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = Some(
                    value
                        .parse()
                        .map_err(|_| bad_data(format!("bad Content-Length {value:?}")))?,
                );
            }
            "transfer-encoding" => {
                chunked = value.eq_ignore_ascii_case("chunked");
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                }
            }
            _ => {}
        }
    }

    let body = if chunked {
        read_chunked_body(reader)?
    } else if let Some(n) = content_length {
        reader.read_exact_vec(n)?
    } else {
        // No framing: the body runs to connection close.
        keep_alive = false;
        reader.read_to_close()?
    };
    Ok(HttpResponse {
        status,
        body,
        wire_bytes: reader.total,
        keep_alive,
    })
}

fn parse_status_line(line: &str) -> Option<u16> {
    let mut parts = line.split_whitespace();
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    parts.next()?.parse().ok()
}

fn read_chunked_body(reader: &mut DeadlineReader<'_>) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let size_line = reader.read_line()?;
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| bad_data(format!("bad chunk size {size_line:?}")))?;
        if size == 0 {
            // Trailer section, ends with an empty line.
            while !reader.read_line()?.is_empty() {}
            return Ok(body);
        }
        body.extend_from_slice(&reader.read_exact_vec(size)?);
        let crlf = reader.read_line()?;
        if !crlf.is_empty() {
            return Err(bad_data("chunk data not followed by CRLF"));
        }
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A tiny buffered reader that re-arms the socket read timeout with the
/// remaining deadline before every receive, and counts bytes read.
struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    buf: Vec<u8>,
    pos: usize,
    deadline: Instant,
    total: usize,
}

impl DeadlineReader<'_> {
    /// Pull more bytes off the socket. Returns 0 at orderly EOF.
    fn fill(&mut self) -> io::Result<usize> {
        let remaining = self
            .deadline
            .checked_duration_since(Instant::now())
            .ok_or_else(|| io::Error::new(io::ErrorKind::TimedOut, "response deadline exceeded"))?;
        self.stream.set_read_timeout(Some(remaining))?;
        let mut chunk = [0u8; 8192];
        let n = (&mut &*self.stream).read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        self.total += n;
        Ok(n)
    }

    /// Read one line, stripping the trailing CRLF (or bare LF).
    fn read_line(&mut self) -> io::Result<String> {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let end = self.pos + nl;
                let mut line = &self.buf[self.pos..end];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let text = String::from_utf8_lossy(line).into_owned();
                self.pos = end + 1;
                return Ok(text);
            }
            if self.buf.len() > 1 << 20 {
                return Err(bad_data("header line longer than 1 MiB"));
            }
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-line",
                ));
            }
        }
    }

    fn read_exact_vec(&mut self, n: usize) -> io::Result<Vec<u8>> {
        while self.buf.len() - self.pos < n {
            if self.fill()? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        let out = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(out)
    }

    fn read_to_close(&mut self) -> io::Result<Vec<u8>> {
        while self.fill()? > 0 {}
        let out = self.buf[self.pos..].to_vec();
        self.pos = self.buf.len();
        Ok(out)
    }
}

/// Percent-encode for a URL query component (RFC 3986 unreserved set kept).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decode a percent-encoded component. With `form`, `+` decodes to space
/// (the `application/x-www-form-urlencoded` convention).
pub fn percent_decode(s: &str, form: bool) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| "truncated percent escape".to_string())?;
                let hex = std::str::from_utf8(hex).map_err(|_| "bad percent escape")?;
                let v = u8::from_str_radix(hex, 16)
                    .map_err(|_| format!("bad percent escape %{hex}"))?;
                out.push(v);
                i += 3;
            }
            b'+' if form => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| "percent-decoded bytes are not UTF-8".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    #[test]
    fn url_parsing() {
        let u = Url::parse("http://127.0.0.1:8890/sparql").unwrap();
        assert_eq!(
            (u.host.as_str(), u.port, u.path.as_str()),
            ("127.0.0.1", 8890, "/sparql")
        );
        assert_eq!(u.host_header(), "127.0.0.1:8890");

        let u = Url::parse("http://example.org").unwrap();
        assert_eq!((u.port, u.path.as_str()), (80, "/"));
        assert_eq!(u.host_header(), "example.org");

        assert!(Url::parse("https://example.org/")
            .unwrap_err()
            .contains("TLS"));
        assert!(Url::parse("ftp://example.org/").is_err());
        assert!(Url::parse("http://:80/").is_err());
        assert!(Url::parse("http://h:notaport/").is_err());
    }

    #[test]
    fn percent_round_trip() {
        let q = "SELECT ?s WHERE { ?s <http://x/p> \"a b+c\" } # ünïcödé";
        let enc = percent_encode(q);
        assert!(!enc.contains(' ') && !enc.contains('"'));
        assert_eq!(percent_decode(&enc, false).unwrap(), q);
        // Form decoding turns '+' into space.
        assert_eq!(percent_decode("a+b%20c", true).unwrap(), "a b c");
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
        assert!(percent_decode("%zz", false).is_err());
        assert!(percent_decode("%2", false).is_err());
    }

    /// Spawn a one-shot server that answers each accepted connection with
    /// the canned responses, in order (one response per connection).
    fn canned_server(responses: Vec<Vec<u8>>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for response in responses {
                let (mut sock, _) = listener.accept().unwrap();
                // Drain the request headers (and POST body) minimally.
                let mut reader = BufReader::new(sock.try_clone().unwrap());
                let mut content_length = 0usize;
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break;
                    }
                    let t = line.trim();
                    if let Some(v) = t.to_ascii_lowercase().strip_prefix("content-length:") {
                        content_length = v.trim().parse().unwrap_or(0);
                    }
                    if t.is_empty() {
                        break;
                    }
                }
                if content_length > 0 {
                    let mut body = vec![0u8; content_length];
                    reader.read_exact(&mut body).ok();
                }
                sock.write_all(&response).ok();
                // Connection drops when `sock` goes out of scope.
            }
        });
        (format!("http://{addr}/sparql"), handle)
    }

    fn ok_response(body: &str) -> Vec<u8> {
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: application/sparql-results+json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
        .into_bytes()
    }

    fn test_config() -> HttpConfig {
        HttpConfig {
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(5),
            retries: 2,
            backoff: Duration::from_millis(1),
            use_get: false,
        }
    }

    fn ask_query() -> Query {
        lusail_sparql::parse_query("ASK { ?s ?p ?o }").unwrap()
    }

    #[test]
    fn retries_500_then_succeeds() {
        let boolean = results_json::boolean_json(true);
        let (url, server) = canned_server(vec![
            b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 4\r\nConnection: close\r\n\r\noops".to_vec(),
            ok_response(&boolean),
        ]);
        let ep = HttpEndpoint::new("flaky", &url)
            .unwrap()
            .with_config(test_config());
        assert!(ep.ask(&ask_query()).unwrap());
        let t = ep.traffic();
        assert_eq!(t.requests, 2, "the 500 attempt must be counted too");
        assert!(t.simulated_network_time > Duration::ZERO);
        server.join().unwrap();
    }

    #[test]
    fn exhausted_retries_surface_endpoint_error() {
        let five_hundred =
            b"HTTP/1.1 503 Unavailable\r\nContent-Length: 4\r\nConnection: close\r\n\r\nbusy"
                .to_vec();
        let (url, server) = canned_server(vec![
            five_hundred.clone(),
            five_hundred.clone(),
            five_hundred,
        ]);
        let ep = HttpEndpoint::new("down", &url)
            .unwrap()
            .with_config(test_config());
        let err = ep.execute(&ask_query()).unwrap_err();
        assert_eq!(err.endpoint, "down");
        assert!(err.message.contains("3 attempts"), "{err}");
        assert!(err.message.contains("503"), "{err}");
        server.join().unwrap();
    }

    #[test]
    fn client_error_is_not_retried() {
        let (url, server) = canned_server(vec![
            b"HTTP/1.1 400 Bad Request\r\nContent-Length: 9\r\nConnection: close\r\n\r\nbad query"
                .to_vec(),
        ]);
        let ep = HttpEndpoint::new("strict", &url)
            .unwrap()
            .with_config(test_config());
        let err = ep.execute(&ask_query()).unwrap_err();
        assert!(err.message.contains("400"), "{err}");
        assert!(err.message.contains("bad query"), "{err}");
        assert_eq!(ep.traffic().requests, 1, "4xx must not be retried");
        server.join().unwrap();
    }

    #[test]
    fn connection_drop_mid_response_is_retried() {
        let boolean = results_json::boolean_json(false);
        let truncated = b"HTTP/1.1 200 OK\r\nContent-Length: 9999\r\n\r\n{\"head\":".to_vec();
        let (url, server) = canned_server(vec![truncated, ok_response(&boolean)]);
        let ep = HttpEndpoint::new("drops", &url)
            .unwrap()
            .with_config(test_config());
        assert!(!ep.ask(&ask_query()).unwrap());
        assert_eq!(ep.traffic().requests, 2);
        server.join().unwrap();
    }

    #[test]
    fn malformed_http_is_a_transport_error() {
        let (url, server) = canned_server(vec![b"NOT HTTP AT ALL\r\n\r\n".to_vec(); 3]);
        let ep = HttpEndpoint::new("garbled", &url)
            .unwrap()
            .with_config(test_config());
        let err = ep.execute(&ask_query()).unwrap_err();
        assert!(err.message.contains("malformed status line"), "{err}");
        server.join().unwrap();
    }

    #[test]
    fn chunked_responses_are_reassembled() {
        let boolean = results_json::boolean_json(true);
        let (a, b) = boolean.split_at(boolean.len() / 2);
        let chunked = format!(
            "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n\
             {:x}\r\n{}\r\n{:x}\r\n{}\r\n0\r\n\r\n",
            a.len(),
            a,
            b.len(),
            b
        );
        let (url, server) = canned_server(vec![chunked.into_bytes()]);
        let ep = HttpEndpoint::new("chunky", &url)
            .unwrap()
            .with_config(test_config());
        assert!(ep.ask(&ask_query()).unwrap());
        server.join().unwrap();
    }

    #[test]
    fn unreachable_endpoint_reports_transport_error() {
        // A bound-then-dropped listener leaves a port nothing listens on.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let ep = HttpEndpoint::new("nobody", &format!("http://127.0.0.1:{port}/sparql"))
            .unwrap()
            .with_config(HttpConfig {
                retries: 1,
                ..test_config()
            });
        let err = ep.execute(&ask_query()).unwrap_err();
        assert!(err.message.contains("transport error"), "{err}");
        assert_eq!(err.kind, crate::FailureKind::Transport);
        assert_eq!(ep.traffic().requests, 2);
    }

    #[test]
    fn open_breaker_fails_fast_without_touching_the_network() {
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let ep = HttpEndpoint::new("dead", &format!("http://127.0.0.1:{port}/sparql"))
            .unwrap()
            .with_config(test_config())
            .with_breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_secs(30),
                ewma_alpha: 0.2,
            });
        // First call burns the retry budget (3 attempts) and opens the
        // breaker; the second fails fast with no new traffic.
        let err = ep.execute(&ask_query()).unwrap_err();
        assert_eq!(err.kind, crate::FailureKind::Transport);
        let requests_after_first = ep.traffic().requests;
        assert_eq!(requests_after_first, 3);

        let started = Instant::now();
        let err = ep.execute(&ask_query()).unwrap_err();
        assert_eq!(err.kind, crate::FailureKind::CircuitOpen);
        assert!(err.message.contains("circuit breaker open"), "{err}");
        assert!(
            started.elapsed() < Duration::from_millis(50),
            "must not dial"
        );
        assert_eq!(ep.traffic().requests, requests_after_first);

        let h = ep.health().unwrap();
        assert_eq!(h.breaker, BreakerState::Open);
        assert_eq!(h.failures, 3);
        assert_eq!(h.open_rejections, 1);
    }

    #[test]
    fn breaker_recovers_via_half_open_probe() {
        let boolean = results_json::boolean_json(true);
        let (url, server) = canned_server(vec![ok_response(&boolean)]);
        // Open the breaker by hand, with a cooldown short enough to lapse.
        let ep = HttpEndpoint::new("flappy", &url)
            .unwrap()
            .with_config(test_config())
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(30),
                ewma_alpha: 0.2,
            });
        ep.health.record_failure();
        ep.health.record_failure();
        assert_eq!(ep.health().unwrap().breaker, BreakerState::Open);
        assert!(matches!(
            ep.execute(&ask_query()),
            Err(e) if e.kind == crate::FailureKind::CircuitOpen
        ));
        std::thread::sleep(Duration::from_millis(40));
        // The cooldown elapsed: the next request is the probe, it
        // succeeds, and the breaker closes again.
        assert!(ep.ask(&ask_query()).unwrap());
        assert_eq!(ep.health().unwrap().breaker, BreakerState::Closed);
        server.join().unwrap();
    }

    #[test]
    fn expired_deadline_fails_before_dialling() {
        let (url, _server) = canned_server(vec![]);
        let ep = HttpEndpoint::new("late", &url)
            .unwrap()
            .with_config(test_config());
        let err = ep
            .execute_within(&ask_query(), Deadline::within(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err.kind, crate::FailureKind::Deadline);
        assert_eq!(ep.traffic().requests, 0);
    }

    #[test]
    fn deadline_clamps_the_attempt_timeout() {
        // A server that accepts but never answers: the attempt must give
        // up when the query budget lapses, long before request_timeout.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let conns: Vec<_> = (0..1).filter_map(|_| listener.accept().ok()).collect();
            std::thread::sleep(Duration::from_millis(300));
            drop(conns);
        });
        let ep = HttpEndpoint::new("silent", &format!("http://{addr}/sparql"))
            .unwrap()
            .with_config(HttpConfig {
                request_timeout: Duration::from_secs(30),
                retries: 2,
                ..test_config()
            });
        let started = Instant::now();
        let err = ep
            .execute_within(&ask_query(), Deadline::within(Duration::from_millis(60)))
            .unwrap_err();
        assert_eq!(err.kind, crate::FailureKind::Deadline, "{err}");
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "query budget must clip the 30 s per-attempt timeout: {:?}",
            started.elapsed()
        );
        server.join().unwrap();
    }
}
