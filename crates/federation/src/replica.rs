//! Replica groups: N equivalent transports behind one [`SparqlEndpoint`].
//!
//! Real federations replicate fragments across mirrors (Montoya et al.,
//! "Efficient Query Processing for SPARQL Federations with Replicated
//! Fragments"), and endpoint instability is the dominant failure mode in
//! practice (Schwarte et al., FedX experience report). [`ReplicaGroup`]
//! makes a set of member endpoints — simulated, HTTP, or fault-injected —
//! look like one endpoint that survives its members:
//!
//! * **Selection.** Each request goes to the *preferred* member: members
//!   are ranked by circuit-breaker state (closed < half-open < open), then
//!   latency EWMA, then index — a pure function of the members'
//!   [`EndpointHealth`](crate::erh::EndpointHealth) snapshots, so selection
//!   is deterministic for a fixed health state (see [`rank_members`]).
//! * **Failover.** On a transport error or an open circuit, the request is
//!   transparently re-dispatched to the next-ranked member, with the
//!   caller's deadline still enforced and a per-request
//!   [`failover budget`](ReplicaConfig::failover_budget) so a fully dead
//!   group fails fast with a structured error naming every member tried.
//!   `Rejected` and `Deadline` failures propagate immediately — an
//!   equivalent replica would reject the same request, and an expired
//!   budget is the query's fault, not the member's.
//! * **Hedging.** For idempotent requests (see [`hedge_safe`]), once the
//!   preferred member has been silent for
//!   [`hedge_after`](ReplicaConfig::hedge_after), one duplicate is launched
//!   on the second-best member and the first success wins. At most one
//!   duplicate is ever launched, bounding request amplification at 2×; the
//!   losing attempt's result is discarded (its lifetime is bounded by the
//!   same deadline, and queued work it would have spawned is cancelled by
//!   the ERH's deadline-aware `map_cancellable`).
//!
//! Members are assumed *equivalent*: same data, same answer for the same
//! request. The group never merges results across members — it picks one
//! answer — so a stale replica returns stale rows, not corrupt ones.

use crate::endpoint::{EndpointError, FailureKind, SparqlEndpoint};
use crate::erh::{BreakerState, Deadline, HealthSnapshot};
use crate::network::TrafficSnapshot;
use lusail_sparql::ast::{GraphPattern, Query, QueryForm};
use lusail_store::eval::QueryResult;
use lusail_store::StoreStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Replica-group tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaConfig {
    /// Maximum *additional* members a request may be re-dispatched to
    /// after its first attempt fails. `0` disables failover entirely.
    pub failover_budget: u32,
    /// After this long without an answer from the preferred member, launch
    /// one duplicate on the second-best member and take the first success.
    /// `None` disables hedging. Only idempotent requests (no `VALUES`
    /// blocks — see [`hedge_safe`]) are ever hedged.
    pub hedge_after: Option<Duration>,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            failover_budget: 3,
            hedge_after: None,
        }
    }
}

/// Per-member replica counters, exposed through `lusail query --stats` so
/// operators can see which replica is carrying the group.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaMemberSnapshot {
    /// The member endpoint's name.
    pub name: String,
    /// Requests dispatched to this member (first tries, failovers, and
    /// hedge duplicates).
    pub dispatches: u64,
    /// Dispatches that were failover re-dispatches (a sibling failed
    /// first).
    pub failovers: u64,
    /// Hedge duplicates launched on this member.
    pub hedges_launched: u64,
    /// Hedge duplicates on this member that won their race.
    pub hedges_won: u64,
    /// The member transport's own health registry snapshot.
    pub health: Option<HealthSnapshot>,
}

/// Group-level totals (sums of the member counters plus the logical
/// request count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaGroupStats {
    /// Logical requests the group accepted.
    pub logical_requests: u64,
    /// Total member dispatches (≥ logical; the ratio is the group's
    /// request amplification, ≤ 2 when only hedging fires).
    pub dispatches: u64,
    /// Failover re-dispatches taken.
    pub failovers: u64,
    /// Hedge duplicates launched.
    pub hedges_launched: u64,
    /// Hedge duplicates that won.
    pub hedges_won: u64,
}

#[derive(Default)]
struct MemberCounters {
    dispatches: AtomicU64,
    failovers: AtomicU64,
    hedges_launched: AtomicU64,
    hedges_won: AtomicU64,
}

/// Rank member indices by health: closed breakers before half-open before
/// open; within each breaker class, integrity-quarantined members after
/// trusted ones (a quarantined endpoint is up but untrustworthy — still
/// usable, never preferred); then by latency EWMA (fresh members, with no
/// samples, report zero and sort first), then by index. A pure function of
/// the snapshots, so replica selection is deterministic for a fixed health
/// state.
pub fn rank_members(health: &[Option<HealthSnapshot>]) -> Vec<usize> {
    fn breaker_rank(b: BreakerState) -> u8 {
        match b {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
    let mut order: Vec<usize> = (0..health.len()).collect();
    order.sort_by_key(|&i| match &health[i] {
        Some(h) => (
            breaker_rank(h.breaker),
            h.quarantined as u8,
            h.latency_ewma.as_nanos(),
            i,
        ),
        None => (0, 0, 0, i),
    });
    order
}

/// Whether a query is safe to hedge: duplicating a request is only allowed
/// for plain read patterns. Bound-join requests (`VALUES` blocks anywhere
/// in the pattern) are excluded — they are the large, endpoint-straining
/// requests whose duplication doubles exactly the load the paper's
/// Table 2 shows endpoints rejecting, so they are not considered safe to
/// repeat speculatively.
pub fn hedge_safe(query: &Query) -> bool {
    fn pattern_safe(p: &GraphPattern) -> bool {
        match p {
            GraphPattern::Values(..) => false,
            GraphPattern::Bgp(_) => true,
            GraphPattern::Join(a, b)
            | GraphPattern::LeftJoin(a, b)
            | GraphPattern::Union(a, b)
            | GraphPattern::Minus(a, b) => pattern_safe(a) && pattern_safe(b),
            GraphPattern::Filter(a, _) | GraphPattern::Bind(a, _, _) => pattern_safe(a),
            GraphPattern::SubSelect(s) => pattern_safe(&s.pattern),
        }
    }
    match &query.form {
        QueryForm::Select(s) => pattern_safe(&s.pattern),
        QueryForm::Ask(p) => pattern_safe(p),
    }
}

/// One endpoint backed by N equivalent member transports (see module docs).
pub struct ReplicaGroup {
    name: String,
    members: Vec<Arc<dyn SparqlEndpoint>>,
    config: ReplicaConfig,
    counters: Vec<MemberCounters>,
    logical_requests: AtomicU64,
}

impl ReplicaGroup {
    /// Group `members` under one name. Panics on an empty member list (a
    /// group with nothing behind it is a configuration error).
    pub fn new(
        name: impl Into<String>,
        members: Vec<Arc<dyn SparqlEndpoint>>,
        config: ReplicaConfig,
    ) -> Self {
        assert!(
            !members.is_empty(),
            "replica group needs at least one member"
        );
        let counters = members.iter().map(|_| MemberCounters::default()).collect();
        ReplicaGroup {
            name: name.into(),
            members,
            config,
            counters,
            logical_requests: AtomicU64::new(0),
        }
    }

    /// The member endpoints, in declaration order.
    pub fn members(&self) -> &[Arc<dyn SparqlEndpoint>] {
        &self.members
    }

    /// The group's tuning.
    pub fn config(&self) -> ReplicaConfig {
        self.config
    }

    /// Group-level totals.
    pub fn stats(&self) -> ReplicaGroupStats {
        let mut s = ReplicaGroupStats {
            logical_requests: self.logical_requests.load(Ordering::Relaxed),
            ..Default::default()
        };
        for c in &self.counters {
            s.dispatches += c.dispatches.load(Ordering::Relaxed);
            s.failovers += c.failovers.load(Ordering::Relaxed);
            s.hedges_launched += c.hedges_launched.load(Ordering::Relaxed);
            s.hedges_won += c.hedges_won.load(Ordering::Relaxed);
        }
        s
    }

    /// Member indices in current preference order.
    fn ranked(&self) -> Vec<usize> {
        let health: Vec<Option<HealthSnapshot>> = self.members.iter().map(|m| m.health()).collect();
        rank_members(&health)
    }

    /// Dispatch to one member, counting it.
    fn dispatch(
        &self,
        member: usize,
        query: &Query,
        deadline: &Deadline,
        is_failover: bool,
    ) -> Result<QueryResult, EndpointError> {
        self.counters[member]
            .dispatches
            .fetch_add(1, Ordering::Relaxed);
        if is_failover {
            self.counters[member]
                .failovers
                .fetch_add(1, Ordering::Relaxed);
        }
        self.members[member].execute_within(query, deadline.clone())
    }

    /// The failure classes worth re-dispatching: the member (not the
    /// request) is at fault.
    fn can_fail_over(e: &EndpointError) -> bool {
        matches!(e.kind, FailureKind::Transport | FailureKind::CircuitOpen)
    }

    /// The structured "everything failed" error naming every member tried.
    fn all_failed(&self, tried: &[(String, String)], untried: usize) -> EndpointError {
        let detail: Vec<String> = tried
            .iter()
            .map(|(name, msg)| format!("{name}: {msg}"))
            .collect();
        let budget_note = if untried > 0 {
            format!(" (failover budget exhausted with {untried} member(s) untried)")
        } else {
            String::new()
        };
        EndpointError::transport(
            &self.name,
            format!(
                "all {} replica member(s) tried failed{budget_note}: {}",
                tried.len(),
                detail.join("; ")
            ),
        )
    }

    /// Hedged first attempt: dispatch to `primary`; if it is still silent
    /// after the hedge delay, duplicate on `secondary` and take the first
    /// success. Returns `Err(tried)` with both members' failures when
    /// neither succeeds (terminal failures short-circuit as `Err` of the
    /// outer result).
    #[allow(clippy::type_complexity)]
    fn hedged_pair(
        &self,
        primary: usize,
        secondary: usize,
        query: &Query,
        deadline: &Deadline,
    ) -> Result<Result<QueryResult, Vec<(String, String)>>, EndpointError> {
        let hedge_after = self
            .config
            .hedge_after
            .expect("hedged_pair called without hedge_after");
        let (tx, rx) = mpsc::channel::<(usize, Result<QueryResult, EndpointError>)>();
        let launch = |member: usize| {
            let ep = Arc::clone(&self.members[member]);
            let q = query.clone();
            let tx = tx.clone();
            let deadline = deadline.clone();
            std::thread::spawn(move || {
                let r = ep.execute_within(&q, deadline);
                // The receiver is gone once a sibling won; the loser's
                // result is deliberately dropped.
                let _ = tx.send((member, r));
            });
        };

        self.counters[primary]
            .dispatches
            .fetch_add(1, Ordering::Relaxed);
        launch(primary);

        // We keep a sender alive, so the loop terminates on the
        // `outstanding` count, never on channel disconnection.
        let mut failures: Vec<(String, String)> = Vec::new();
        let mut outstanding = 1usize;
        let mut hedged = false;
        loop {
            let received = if hedged {
                // Bounded slices instead of an unconditional recv(): a
                // cancelled query stops waiting on its in-flight attempts
                // within one slice instead of blocking until a loser
                // thread reports in.
                loop {
                    match rx.recv_timeout(Duration::from_millis(100)) {
                        Ok(v) => break Some(v),
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if deadline.expired() {
                                return Err(EndpointError::expired(&self.name, deadline));
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break None,
                    }
                }
            } else {
                match rx.recv_timeout(deadline.clamp(hedge_after)) {
                    Ok(v) => Some(v),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // The preferred member is slow: launch the one
                        // allowed duplicate (unless the query budget is
                        // already gone, in which case keep waiting — the
                        // in-flight attempt clamps to the same deadline).
                        if !deadline.expired() {
                            self.counters[secondary]
                                .dispatches
                                .fetch_add(1, Ordering::Relaxed);
                            self.counters[secondary]
                                .hedges_launched
                                .fetch_add(1, Ordering::Relaxed);
                            launch(secondary);
                            outstanding += 1;
                        }
                        hedged = true;
                        continue;
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => None,
                }
            };
            let Some((member, result)) = received else {
                // All attempt threads are gone without a success.
                break;
            };
            outstanding -= 1;
            match result {
                Ok(v) => {
                    if hedged && member == secondary {
                        self.counters[secondary]
                            .hedges_won
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(Ok(v));
                }
                Err(e) if e.kind == FailureKind::Rejected => {
                    // An equivalent replica would reject the same request.
                    return Err(e);
                }
                Err(e) if matches!(e.kind, FailureKind::Deadline | FailureKind::Cancelled) => {
                    return Err(EndpointError::expired(&self.name, deadline));
                }
                Err(e) => {
                    failures.push((self.members[member].name().to_string(), e.message));
                    if outstanding == 0 {
                        break;
                    }
                }
            }
        }
        Ok(Err(failures))
    }
}

impl SparqlEndpoint for ReplicaGroup {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute_within(
        &self,
        query: &Query,
        deadline: Deadline,
    ) -> Result<QueryResult, EndpointError> {
        self.logical_requests.fetch_add(1, Ordering::Relaxed);
        if deadline.expired() {
            return Err(EndpointError::expired(&self.name, &deadline));
        }
        let order = self.ranked();
        let mut tried: Vec<(String, String)> = Vec::new();
        // Members the failover budget allows us to reach (first try + up
        // to `failover_budget` re-dispatches). The hedge duplicate is not
        // a failover: it targets a member the budget already covers when
        // possible, and is bounded to one per request regardless.
        let allowed = order.len().min(self.config.failover_budget as usize + 1);
        let mut next = 0usize;

        // First attempt, hedged when configured, safe, and a second
        // member exists to hedge onto.
        if self.config.hedge_after.is_some() && order.len() >= 2 && hedge_safe(query) {
            match self.hedged_pair(order[0], order[1], query, &deadline)? {
                Ok(v) => return Ok(v),
                Err(failures) => {
                    // Both the primary and (if launched) the hedge failed.
                    // The secondary consumed one failover slot: its answer
                    // was demanded after the primary's failure.
                    next = 1 + failures
                        .iter()
                        .filter(|(n, _)| n == self.members[order[1]].name())
                        .count();
                    tried.extend(failures);
                }
            }
        }

        while next < allowed {
            if deadline.expired() {
                return Err(EndpointError::expired(&self.name, &deadline));
            }
            let member = order[next];
            let is_failover = next > 0 || !tried.is_empty();
            match self.dispatch(member, query, &deadline, is_failover) {
                Ok(v) => return Ok(v),
                Err(e) if matches!(e.kind, FailureKind::Deadline | FailureKind::Cancelled) => {
                    return Err(EndpointError::expired(&self.name, &deadline));
                }
                Err(e) if Self::can_fail_over(&e) => {
                    tried.push((self.members[member].name().to_string(), e.message));
                }
                Err(e) => return Err(e),
            }
            next += 1;
        }
        Err(self.all_failed(&tried, order.len() - tried.len()))
    }

    fn traffic(&self) -> TrafficSnapshot {
        self.members
            .iter()
            .map(|m| m.traffic())
            .fold(TrafficSnapshot::default(), TrafficSnapshot::merge)
    }

    fn reset_traffic(&self) {
        for m in &self.members {
            m.reset_traffic();
        }
    }

    /// Codec counters summed across members; `None` when no member
    /// transport negotiates a codec (e.g. all simulated).
    fn codec(&self) -> Option<crate::network::CodecSnapshot> {
        let snapshots: Vec<_> = self.members.iter().filter_map(|m| m.codec()).collect();
        if snapshots.is_empty() {
            return None;
        }
        Some(
            snapshots
                .into_iter()
                .fold(Default::default(), crate::network::CodecSnapshot::merge),
        )
    }

    /// A merged view: counters summed across members, breaker state and
    /// latency taken from the currently preferred member.
    fn health(&self) -> Option<HealthSnapshot> {
        let preferred = *self.ranked().first()?;
        let mut merged = self.members[preferred].health()?;
        for (i, m) in self.members.iter().enumerate() {
            if i == preferred {
                continue;
            }
            if let Some(h) = m.health() {
                merged.requests += h.requests;
                merged.failures += h.failures;
                merged.retries += h.retries;
                merged.open_rejections += h.open_rejections;
            }
        }
        Some(merged)
    }

    fn replica_members(&self) -> Option<Vec<ReplicaMemberSnapshot>> {
        Some(
            self.members
                .iter()
                .zip(&self.counters)
                .map(|(m, c)| ReplicaMemberSnapshot {
                    name: m.name().to_string(),
                    dispatches: c.dispatches.load(Ordering::Relaxed),
                    failovers: c.failovers.load(Ordering::Relaxed),
                    hedges_launched: c.hedges_launched.load(Ordering::Relaxed),
                    hedges_won: c.hedges_won.load(Ordering::Relaxed),
                    health: m.health(),
                })
                .collect(),
        )
    }

    fn collect_stats(&self) -> Option<StoreStats> {
        self.members.iter().find_map(|m| m.collect_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::SimulatedEndpoint;
    use crate::erh::BreakerConfig;
    use crate::fault::{FaultProfile, FaultyConfig, FaultyEndpoint};
    use crate::network::NetworkProfile;
    use lusail_rdf::{Graph, Term};
    use lusail_sparql::ast::{TermPattern, TriplePattern, Variable};
    use lusail_sparql::parse_query;
    use lusail_store::Store;
    use std::time::Instant;

    fn graph() -> Graph {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::iri("http://x/b"),
        );
        g
    }

    fn sim(name: &str, profile: NetworkProfile) -> Arc<dyn SparqlEndpoint> {
        Arc::new(SimulatedEndpoint::new(
            name,
            Store::from_graph(&graph()),
            profile,
        ))
    }

    fn dead(name: &str) -> Arc<dyn SparqlEndpoint> {
        let inner = Arc::new(SimulatedEndpoint::new(
            name,
            Store::from_graph(&graph()),
            NetworkProfile::instant(),
        )) as Arc<dyn SparqlEndpoint>;
        Arc::new(FaultyEndpoint::with_config(
            inner,
            7,
            FaultProfile::hard_down(),
            FaultyConfig {
                retries: 0,
                backoff: Duration::ZERO,
                failure_latency: Duration::from_micros(100),
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    cooldown: Duration::from_secs(30),
                    ewma_alpha: 0.2,
                },
            },
        ))
    }

    fn query() -> Query {
        parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap()
    }

    /// In-tree SplitMix64 step for the seeded property loops.
    fn next_u64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chaos_seed() -> u64 {
        std::env::var("LUSAIL_CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42)
    }

    #[test]
    fn healthy_group_serves_from_preferred_member() {
        let g = ReplicaGroup::new(
            "grp",
            vec![
                sim("m0", NetworkProfile::instant()),
                sim("m1", NetworkProfile::instant()),
            ],
            ReplicaConfig::default(),
        );
        assert_eq!(g.select(&query()).unwrap().len(), 1);
        let members = g.replica_members().unwrap();
        assert_eq!(members[0].dispatches, 1, "preferred member serves");
        assert_eq!(members[1].dispatches, 0);
        assert_eq!(g.stats().failovers, 0);
    }

    #[test]
    fn dead_preferred_member_fails_over_transparently() {
        let g = ReplicaGroup::new(
            "grp",
            vec![dead("m0"), sim("m1", NetworkProfile::instant())],
            ReplicaConfig::default(),
        );
        // Every call succeeds despite m0 being hard-down.
        for _ in 0..4 {
            assert_eq!(g.select(&query()).unwrap().len(), 1);
        }
        let s = g.stats();
        assert_eq!(s.logical_requests, 4);
        assert!(s.failovers >= 1, "{s:?}");
        // Once m0's breaker opens, ranking prefers m1 and failovers stop.
        let members = g.replica_members().unwrap();
        assert_eq!(members[1].dispatches, 4);
        assert!(
            members[0].dispatches < 4,
            "open breaker must stop first-try dispatches to the dead member: {members:?}"
        );
    }

    #[test]
    fn fully_dead_group_names_every_member_tried() {
        let g = ReplicaGroup::new(
            "grp",
            vec![dead("m0"), dead("m1"), dead("m2")],
            ReplicaConfig {
                failover_budget: 8,
                hedge_after: None,
            },
        );
        let err = g.select(&query()).unwrap_err();
        assert_eq!(err.endpoint, "grp");
        assert_eq!(err.kind, FailureKind::Transport);
        for m in ["m0", "m1", "m2"] {
            assert!(err.message.contains(m), "error must name {m}: {err}");
        }
    }

    #[test]
    fn failover_budget_bounds_dispatches_and_is_reported() {
        let g = ReplicaGroup::new(
            "grp",
            vec![dead("m0"), dead("m1"), dead("m2"), dead("m3")],
            ReplicaConfig {
                failover_budget: 1,
                hedge_after: None,
            },
        );
        let err = g.select(&query()).unwrap_err();
        assert!(err.message.contains("budget exhausted"), "{err}");
        let s = g.stats();
        assert_eq!(s.dispatches, 2, "budget 1 = first try + one failover");
        assert_eq!(s.failovers, 1);
    }

    #[test]
    fn deadline_propagates_as_group_deadline() {
        let g = ReplicaGroup::new(
            "grp",
            vec![sim("m0", NetworkProfile::instant())],
            ReplicaConfig::default(),
        );
        let err = g
            .select_within(&query(), Deadline::within(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err.kind, FailureKind::Deadline);
        assert_eq!(err.endpoint, "grp");
    }

    #[test]
    fn hedge_launches_on_slow_member_and_second_best_wins() {
        let slow = NetworkProfile {
            latency: Duration::from_millis(60),
            bytes_per_sec: u64::MAX,
        };
        let g = ReplicaGroup::new(
            "grp",
            vec![sim("slow", slow), sim("fast", NetworkProfile::instant())],
            ReplicaConfig {
                failover_budget: 1,
                hedge_after: Some(Duration::from_millis(5)),
            },
        );
        let started = Instant::now();
        assert_eq!(g.select(&query()).unwrap().len(), 1);
        assert!(
            started.elapsed() < Duration::from_millis(55),
            "hedge must beat the slow member: {:?}",
            started.elapsed()
        );
        let s = g.stats();
        assert_eq!(s.hedges_launched, 1);
        assert_eq!(s.hedges_won, 1);
        assert!(s.dispatches <= 2 * s.logical_requests, "{s:?}");
        let members = g.replica_members().unwrap();
        assert_eq!(members[1].hedges_won, 1);
    }

    #[test]
    fn values_requests_are_never_hedged() {
        let slow = NetworkProfile {
            latency: Duration::from_millis(30),
            bytes_per_sec: u64::MAX,
        };
        let g = ReplicaGroup::new(
            "grp",
            vec![sim("slow", slow), sim("fast", NetworkProfile::instant())],
            ReplicaConfig {
                failover_budget: 1,
                hedge_after: Some(Duration::from_millis(2)),
            },
        );
        // A bound-join-shaped request: BGP joined with a VALUES block.
        let bgp = GraphPattern::Bgp(vec![TriplePattern::new(
            TermPattern::var("s"),
            TermPattern::iri("http://x/p"),
            TermPattern::var("o"),
        )]);
        let values = GraphPattern::Values(
            vec![Variable::new("s")],
            vec![vec![Some(Term::iri("http://x/a"))]],
        );
        let q = Query::select(lusail_sparql::ast::SelectQuery::new(
            lusail_sparql::ast::Projection::All,
            bgp.join(values),
        ));
        assert!(!hedge_safe(&q));
        assert_eq!(g.select(&q).unwrap().len(), 1);
        let s = g.stats();
        assert_eq!(s.hedges_launched, 0, "VALUES requests must not be hedged");
        assert_eq!(s.dispatches, 1);
    }

    #[test]
    fn hedge_safe_classifies_plain_queries() {
        assert!(hedge_safe(&query()));
        assert!(hedge_safe(
            &parse_query("ASK { ?s <http://x/p> ?o }").unwrap()
        ));
        let with_values =
            parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o VALUES ?s { <http://x/a> } }")
                .unwrap();
        assert!(!hedge_safe(&with_values));
    }

    #[test]
    fn rank_prefers_closed_then_fast_then_index() {
        let snap = |breaker: BreakerState, micros: u64| {
            Some(HealthSnapshot {
                requests: 1,
                failures: 0,
                retries: 0,
                open_rejections: 0,
                breaker,
                latency_ewma: Duration::from_micros(micros),
                quarantined: false,
            })
        };
        let health = vec![
            snap(BreakerState::Open, 10),
            snap(BreakerState::Closed, 500),
            snap(BreakerState::Closed, 100),
            snap(BreakerState::HalfOpen, 1),
            None,
        ];
        // None ranks as closed/zero-latency, ahead of measured members.
        assert_eq!(rank_members(&health), vec![4, 2, 1, 3, 0]);
    }

    #[test]
    fn rank_demotes_quarantined_below_healthy_but_above_half_open() {
        let snap = |breaker: BreakerState, micros: u64, quarantined: bool| {
            Some(HealthSnapshot {
                requests: 1,
                failures: 0,
                retries: 0,
                open_rejections: 0,
                breaker,
                latency_ewma: Duration::from_micros(micros),
                quarantined,
            })
        };
        let health = vec![
            snap(BreakerState::Closed, 1, true),    // fastest, but lying
            snap(BreakerState::Closed, 900, false), // slow and honest wins
            snap(BreakerState::HalfOpen, 1, false),
            snap(BreakerState::Open, 1, false),
        ];
        // Quarantine demotes below every healthy closed member, but a
        // lying-yet-up endpoint still beats breaker-degraded ones.
        assert_eq!(rank_members(&health), vec![1, 0, 2, 3]);
    }

    /// Seeded property loop: replica selection is a deterministic pure
    /// function of the health state, and always orders closed breakers
    /// before half-open before open.
    #[test]
    fn rank_property_deterministic_and_breaker_ordered() {
        let seed = chaos_seed();
        let mut rng = seed;
        for round in 0..500 {
            let n = 1 + (next_u64(&mut rng) % 6) as usize;
            let health: Vec<Option<HealthSnapshot>> = (0..n)
                .map(|_| {
                    if next_u64(&mut rng) % 8 == 0 {
                        return None;
                    }
                    let breaker = match next_u64(&mut rng) % 3 {
                        0 => BreakerState::Closed,
                        1 => BreakerState::HalfOpen,
                        _ => BreakerState::Open,
                    };
                    Some(HealthSnapshot {
                        requests: next_u64(&mut rng) % 100,
                        failures: next_u64(&mut rng) % 10,
                        retries: 0,
                        open_rejections: 0,
                        breaker,
                        latency_ewma: Duration::from_micros(next_u64(&mut rng) % 10_000),
                        quarantined: next_u64(&mut rng) % 4 == 0,
                    })
                })
                .collect();
            let a = rank_members(&health);
            let b = rank_members(&health);
            assert_eq!(
                a, b,
                "selection must be deterministic (seed={seed} round={round})"
            );
            let rank_of = |i: usize| match &health[i] {
                None => 0u8,
                Some(h) => match h.breaker {
                    BreakerState::Closed => 0,
                    BreakerState::HalfOpen => 1,
                    BreakerState::Open => 2,
                },
            };
            for w in a.windows(2) {
                assert!(
                    rank_of(w[0]) <= rank_of(w[1]),
                    "breaker ordering violated (seed={seed} round={round}): {a:?}"
                );
            }
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "must be a permutation");
        }
    }

    /// Seeded property loop: across random member liveness and budgets,
    /// failover never dispatches to more than `budget + 1` members and a
    /// live member inside the budget window always rescues the request.
    #[test]
    fn failover_property_respects_budget() {
        let seed = chaos_seed();
        let mut rng = seed;
        for round in 0..60 {
            let n = 2 + (next_u64(&mut rng) % 3) as usize;
            let budget = (next_u64(&mut rng) % n as u64) as u32;
            let alive: Vec<bool> = (0..n).map(|_| next_u64(&mut rng) % 2 == 0).collect();
            let members: Vec<Arc<dyn SparqlEndpoint>> = alive
                .iter()
                .enumerate()
                .map(|(i, &ok)| {
                    if ok {
                        sim(&format!("m{i}"), NetworkProfile::instant())
                    } else {
                        dead(&format!("m{i}"))
                    }
                })
                .collect();
            let g = ReplicaGroup::new(
                "grp",
                members,
                ReplicaConfig {
                    failover_budget: budget,
                    hedge_after: None,
                },
            );
            let result = g.select(&query());
            let s = g.stats();
            let ctx = format!("seed={seed} round={round} alive={alive:?} budget={budget}");
            assert!(
                s.dispatches <= budget as u64 + 1,
                "dispatches {} exceed budget+1 ({ctx})",
                s.dispatches
            );
            // Fresh group: ranking is by index, so the first `budget+1`
            // members are exactly the reachable window.
            let window_has_live = alive.iter().take(budget as usize + 1).any(|&a| a);
            assert_eq!(
                result.is_ok(),
                window_has_live,
                "result must match window liveness ({ctx}): {result:?}"
            );
        }
    }
}
