//! A federation: the set of endpoints a query is evaluated over.

use crate::endpoint::{EndpointId, SparqlEndpoint};
use crate::network::{CodecSnapshot, TrafficSnapshot};
use std::sync::Arc;

/// An immutable registry of endpoints. Engines address endpoints by
/// [`EndpointId`] (their position in the registry).
#[derive(Clone)]
pub struct Federation {
    endpoints: Vec<Arc<dyn SparqlEndpoint>>,
}

impl Federation {
    /// Build a federation from endpoints.
    pub fn new(endpoints: Vec<Arc<dyn SparqlEndpoint>>) -> Self {
        Federation { endpoints }
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True when the federation has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// The endpoint with id `id`. Panics on an invalid id (ids come from
    /// this federation, so that is a programming error).
    pub fn endpoint(&self, id: EndpointId) -> &Arc<dyn SparqlEndpoint> {
        &self.endpoints[id]
    }

    /// All endpoint ids.
    pub fn ids(&self) -> impl Iterator<Item = EndpointId> + '_ {
        0..self.endpoints.len()
    }

    /// Iterate `(id, endpoint)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EndpointId, &Arc<dyn SparqlEndpoint>)> {
        self.endpoints.iter().enumerate()
    }

    /// Aggregate traffic across all endpoints.
    pub fn total_traffic(&self) -> TrafficSnapshot {
        self.endpoints
            .iter()
            .map(|e| e.traffic())
            .fold(TrafficSnapshot::default(), TrafficSnapshot::merge)
    }

    /// Reset every endpoint's traffic counters.
    pub fn reset_traffic(&self) {
        for e in &self.endpoints {
            e.reset_traffic();
        }
    }

    /// Aggregate result-codec counters across the endpoints that have a
    /// wire (HTTP endpoints and replica groups); `None` when the whole
    /// federation is simulated.
    pub fn total_codec(&self) -> Option<CodecSnapshot> {
        self.endpoints
            .iter()
            .filter_map(|e| e.codec())
            .reduce(CodecSnapshot::merge)
    }

    /// Per-endpoint `(name, codec snapshot)` pairs for endpoints with a
    /// wire, in registry order.
    pub fn codec_by_endpoint(&self) -> Vec<(String, CodecSnapshot)> {
        self.endpoints
            .iter()
            .filter_map(|e| e.codec().map(|c| (e.name().to_string(), c)))
            .collect()
    }
}

impl std::fmt::Debug for Federation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Federation")
            .field(
                "endpoints",
                &self.endpoints.iter().map(|e| e.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::SimulatedEndpoint;
    use crate::network::NetworkProfile;
    use lusail_rdf::{Graph, Term};
    use lusail_sparql::parse_query;
    use lusail_store::Store;

    fn fed() -> Federation {
        let eps = (0..3)
            .map(|i| {
                let mut g = Graph::new();
                g.add(
                    Term::iri(format!("http://ep{i}/s")),
                    Term::iri("http://x/p"),
                    Term::integer(i),
                );
                Arc::new(SimulatedEndpoint::new(
                    format!("ep{i}"),
                    Store::from_graph(&g),
                    NetworkProfile::instant(),
                )) as Arc<dyn SparqlEndpoint>
            })
            .collect();
        Federation::new(eps)
    }

    #[test]
    fn registry_basics() {
        let f = fed();
        assert_eq!(f.len(), 3);
        assert_eq!(f.endpoint(1).name(), "ep1");
        assert_eq!(f.ids().count(), 3);
    }

    #[test]
    fn traffic_aggregation() {
        let f = fed();
        let q = parse_query("ASK { ?s <http://x/p> ?o }").unwrap();
        for id in f.ids() {
            assert!(f.endpoint(id).ask(&q).unwrap());
        }
        assert_eq!(f.total_traffic().requests, 3);
        f.reset_traffic();
        assert_eq!(f.total_traffic().requests, 0);
    }
}
