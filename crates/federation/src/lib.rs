//! # lusail-federation
//!
//! The federation substrate: SPARQL endpoints, the simulated network
//! between them, request/byte accounting, and the Elastic Request Handler
//! (ERH) thread pool that Lusail and the baselines use to talk to endpoints
//! in parallel.
//!
//! ## What is simulated, and how
//!
//! The paper runs endpoints as real Jena Fuseki / Virtuoso servers on
//! clusters and on Azure VMs in seven regions. We replace the HTTP hop with
//! [`SimulatedEndpoint`]: each request
//!
//! 1. serializes the query to SPARQL text (the request payload — its size
//!    is charged to the network),
//! 2. sleeps for the endpoint's [`NetworkProfile`] latency plus a
//!    bandwidth-proportional transfer time for request and response bytes,
//! 3. evaluates the query on the endpoint's own [`lusail_store::Store`]
//!    (re-parsing the text, exactly as a real endpoint would), and
//! 4. bumps the endpoint's [`RequestCounters`].
//!
//! Because latency is paid with real `thread::sleep`, issuing requests from
//! multiple ERH threads genuinely overlaps them — the parallelism-versus-
//! communication trade-off that SAPE optimizes behaves as it does against
//! real endpoints, just on a compressed timescale.
//!
//! ## The real wire
//!
//! The simulation is one side of a seam; the other is [`HttpEndpoint`], a
//! std-only HTTP client that speaks the SPARQL 1.1 Protocol to any server
//! (including our own `lusail-server`). Both implement [`SparqlEndpoint`],
//! so every engine runs unchanged over either transport. The shared wire
//! format — SPARQL 1.1 JSON Results — lives in [`results_json`], with its
//! hand-rolled JSON layer in [`json`].

pub mod cancel;
pub mod endpoint;
pub mod erh;
pub mod fault;
pub mod federation;
pub mod http;
pub mod integrity;
pub mod json;
pub mod network;
pub mod replica;
pub mod results_bin;
pub mod results_json;

pub use cancel::{CancelReason, CancelToken};
pub use endpoint::{
    EndpointError, EndpointId, EndpointLimits, FailureKind, SelectResponse, SimulatedEndpoint,
    SparqlEndpoint,
};
pub use erh::{
    Admission, BreakerConfig, BreakerState, CircuitBreaker, Deadline, EndpointHealth,
    HealthSnapshot, RequestHandler, TaskPanic,
};
pub use fault::{FaultProfile, FaultyConfig, FaultyEndpoint};
pub use federation::Federation;
pub use http::{HttpConfig, HttpEndpoint};
pub use integrity::{IntegrityConfig, IntegrityRegistry, IntegritySnapshot, QuarantineTransition};
pub use network::{CodecCounters, CodecSnapshot, NetworkProfile, RequestCounters, TrafficSnapshot};
pub use replica::{
    hedge_safe, rank_members, ReplicaConfig, ReplicaGroup, ReplicaGroupStats, ReplicaMemberSnapshot,
};
