//! A minimal JSON document model: parser and string escaping.
//!
//! The wire layer needs JSON twice — serializing SPARQL results on the
//! server and parsing them back in the HTTP client — and the offline
//! build has no serde. This module implements exactly RFC 8259: all six
//! value kinds, `\uXXXX` escapes with surrogate pairs, and a nesting
//! depth cap so a hostile endpoint cannot blow the parser's stack.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`].
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Objects preserve key order (harmless, and it makes
/// round-trip tests deterministic).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of document")),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| JsonError {
                offset: start,
                message: format!("bad number {text:?}"),
            })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so it's valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0], Json::Number(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Object(vec![]));
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote\" slash\\ newline\n tab\t bell\u{07} ünïcödé 😀";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap(), Json::String(nasty.into()));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::String("é".into()));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::String("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "[1] trailing",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_degenerate_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }
}
