//! Binary store snapshots.
//!
//! Parsing N-Triples and rebuilding the three permutation indexes
//! dominates endpoint start-up time; a snapshot stores the dictionary and
//! the id-triples directly, so re-loading is a single pass with no string
//! parsing. Used by the CLI (`.snap` data files).
//!
//! Format (little-endian):
//!
//! ```text
//! magic "LUSNAP01"
//! u32 term_count
//!   per term: u8 tag (0 iri | 1 bnode | 2 plain | 3 typed | 4 lang),
//!             then 1–2 length-prefixed UTF-8 strings
//! u64 triple_count
//!   per triple: 3 × u32 term ids (ids index the dictionary section)
//! ```

use crate::store::Store;
use lusail_rdf::{Literal, Term};

const MAGIC: &[u8; 8] = b"LUSNAP01";

/// A malformed snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot error: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

/// Serialize a store to its snapshot bytes.
pub fn save(store: &Store) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + store.len() * 12);
    out.extend_from_slice(MAGIC);
    let dict = store.dict();
    out.extend_from_slice(&(dict.len() as u32).to_le_bytes());
    for (_, term) in dict.iter() {
        match term {
            Term::Iri(iri) => {
                out.push(0);
                write_str(&mut out, iri);
            }
            Term::BlankNode(label) => {
                out.push(1);
                write_str(&mut out, label);
            }
            Term::Literal(l) => match (&l.datatype, &l.language) {
                (None, None) => {
                    out.push(2);
                    write_str(&mut out, &l.lexical);
                }
                (Some(dt), _) => {
                    out.push(3);
                    write_str(&mut out, &l.lexical);
                    write_str(&mut out, dt);
                }
                (None, Some(lang)) => {
                    out.push(4);
                    write_str(&mut out, &l.lexical);
                    write_str(&mut out, lang);
                }
            },
        }
    }
    out.extend_from_slice(&(store.len() as u64).to_le_bytes());
    for (s, p, o) in store.iter_ids() {
        out.extend_from_slice(&s.to_le_bytes());
        out.extend_from_slice(&p.to_le_bytes());
        out.extend_from_slice(&o.to_le_bytes());
    }
    out
}

/// Rebuild a store from snapshot bytes.
pub fn load(bytes: &[u8]) -> Result<Store, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(SnapshotError("bad magic (not a Lusail snapshot)".into()));
    }
    let term_count = r.u32()? as usize;
    let mut terms: Vec<Term> = Vec::with_capacity(term_count);
    for _ in 0..term_count {
        let tag = r.u8()?;
        let term = match tag {
            0 => Term::Iri(r.string()?),
            1 => Term::BlankNode(r.string()?),
            2 => Term::Literal(Literal::plain(r.string()?)),
            3 => {
                let lexical = r.string()?;
                let dt = r.string()?;
                Term::Literal(Literal::typed(lexical, dt))
            }
            4 => {
                let lexical = r.string()?;
                let lang = r.string()?;
                Term::Literal(Literal::lang(lexical, lang))
            }
            other => return Err(SnapshotError(format!("unknown term tag {other}"))),
        };
        terms.push(term);
    }
    let triple_count = r.u64()? as usize;
    let mut store = Store::new();
    for _ in 0..triple_count {
        let s = r.u32()? as usize;
        let p = r.u32()? as usize;
        let o = r.u32()? as usize;
        let get = |i: usize| -> Result<&Term, SnapshotError> {
            terms
                .get(i)
                .ok_or_else(|| SnapshotError(format!("term id {i} out of range")))
        };
        store.insert(&lusail_rdf::Triple {
            subject: get(s)?.clone(),
            predicate: get(p)?.clone(),
            object: get(o)?.clone(),
        });
    }
    if !r.at_end() {
        return Err(SnapshotError("trailing bytes after triples".into()));
    }
    Ok(store)
}

/// Save to a file.
pub fn save_to_file(store: &Store, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, save(store))
}

/// Load from a file.
pub fn load_from_file(path: &std::path::Path) -> Result<Store, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    Ok(load(&bytes)?)
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapshotError("unexpected end of snapshot".into()));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError("invalid UTF-8 in snapshot".into()))
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::{Graph, Term};

    fn sample_store() -> Store {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::literal("plain"),
        );
        g.add(
            Term::iri("http://x/a"),
            Term::iri("http://x/p"),
            Term::integer(42),
        );
        g.add(
            Term::iri("http://x/b"),
            Term::iri("http://x/q"),
            Term::Literal(lusail_rdf::Literal::lang("ciao", "it")),
        );
        g.add(
            Term::bnode("n0"),
            Term::iri("http://x/p"),
            Term::iri("http://x/a"),
        );
        Store::from_graph(&g)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let bytes = save(&store);
        let loaded = load(&bytes).unwrap();
        assert_eq!(loaded.len(), store.len());
        // Every original triple matches in the loaded store.
        for (s, p, o) in store.iter_ids() {
            let hits = loaded.match_terms(
                Some(store.decode(s)),
                Some(store.decode(p)),
                Some(store.decode(o)),
            );
            assert_eq!(hits.len(), 1);
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(load(b"not a snapshot").is_err());
        assert!(load(b"LUSNAP01").is_err()); // truncated
        let mut bytes = save(&sample_store());
        bytes.push(0); // trailing byte
        assert!(load(&bytes).is_err());
        // Corrupt a term id far out of range.
        let mut bytes = save(&sample_store());
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(load(&bytes).is_err());
    }

    #[test]
    fn file_helpers() {
        let store = sample_store();
        let path = std::env::temp_dir().join(format!("lusail-snap-{}.snap", std::process::id()));
        save_to_file(&store, &path).unwrap();
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = Store::new();
        let loaded = load(&save(&store)).unwrap();
        assert!(loaded.is_empty());
    }
}
