//! The query evaluator: executes the SPARQL algebra against a [`Store`].

use crate::expr::{eval_ebv, ExprContext};
use crate::store::Store;
use lusail_rdf::fxhash::{FxHashMap, FxHashSet};
use lusail_rdf::{Term, TermId};
use lusail_sparql::ast::*;
use lusail_sparql::solution::Relation;

/// The result of evaluating a [`Query`]: a table for `SELECT`, a boolean
/// for `ASK`.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    Solutions(Relation),
    Boolean(bool),
}

impl QueryResult {
    /// The relation, panicking on an `ASK` result (programming error).
    pub fn into_solutions(self) -> Relation {
        match self {
            QueryResult::Solutions(r) => r,
            QueryResult::Boolean(_) => panic!("expected solutions, got boolean"),
        }
    }

    /// The boolean, panicking on a `SELECT` result.
    pub fn into_boolean(self) -> bool {
        match self {
            QueryResult::Boolean(b) => b,
            QueryResult::Solutions(_) => panic!("expected boolean, got solutions"),
        }
    }
}

/// A binding cell during evaluation. Terms that are not in this store's
/// dictionary (they arrive via `VALUES` blocks in bound subqueries — bound
/// joins ship bindings from *other* endpoints) are parked in a side table
/// as `Foreign`; they can never equal any stored term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Cell {
    Unbound,
    Id(TermId),
    Foreign(u32),
}

#[derive(Debug, Clone)]
struct Bindings {
    vars: Vec<Variable>,
    rows: Vec<Vec<Cell>>,
}

impl Bindings {
    /// The unit table: no variables, one empty row (the identity of join).
    fn unit() -> Self {
        Bindings {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    fn index_of(&self, v: &Variable) -> Option<usize> {
        self.vars.iter().position(|x| x == v)
    }
}

/// Evaluates queries against one store.
pub struct Evaluator<'a> {
    store: &'a Store,
    foreign: Vec<Term>,
}

impl<'a> Evaluator<'a> {
    pub fn new(store: &'a Store) -> Self {
        Evaluator {
            store,
            foreign: Vec::new(),
        }
    }

    /// Evaluate any query form.
    pub fn query(&mut self, q: &Query) -> QueryResult {
        match &q.form {
            QueryForm::Select(s) => QueryResult::Solutions(self.select(s)),
            QueryForm::Ask(p) => QueryResult::Boolean(self.ask(p)),
        }
    }

    /// Evaluate an `ASK` pattern.
    pub fn ask(&mut self, pattern: &GraphPattern) -> bool {
        !self.eval_pattern(pattern, Bindings::unit()).rows.is_empty()
    }

    /// Evaluate a `SELECT` query to a [`Relation`] of terms.
    pub fn select(&mut self, q: &SelectQuery) -> Relation {
        let bindings = self.eval_pattern(&q.pattern, Bindings::unit());
        self.finish_select(q, bindings)
    }

    fn finish_select(&mut self, q: &SelectQuery, bindings: Bindings) -> Relation {
        // Aggregate?
        if let Projection::Count {
            inner,
            distinct,
            as_var,
        } = &q.projection
        {
            let n = match inner {
                None => {
                    if *distinct {
                        let set: FxHashSet<&Vec<Cell>> = bindings.rows.iter().collect();
                        set.len()
                    } else {
                        bindings.rows.len()
                    }
                }
                Some(v) => match bindings.index_of(v) {
                    None => 0,
                    Some(i) => {
                        if *distinct {
                            let set: FxHashSet<Cell> = bindings
                                .rows
                                .iter()
                                .map(|r| r[i])
                                .filter(|c| *c != Cell::Unbound)
                                .collect();
                            set.len()
                        } else {
                            bindings
                                .rows
                                .iter()
                                .filter(|r| r[i] != Cell::Unbound)
                                .count()
                        }
                    }
                },
            };
            let mut rel = Relation::new(vec![as_var.clone()]);
            rel.push(vec![Some(Term::integer(n as i64))]);
            return rel;
        }

        if let Projection::Aggregate { keys, aggs } = &q.projection {
            let group_keys = if q.group_by.is_empty() {
                keys.clone()
            } else {
                q.group_by.clone()
            };
            return self.aggregate(&bindings, &group_keys, keys, aggs, q);
        }

        let out_vars = match &q.projection {
            Projection::All => bindings.vars.clone(),
            Projection::Vars(vs) => vs.clone(),
            Projection::Count { .. } | Projection::Aggregate { .. } => unreachable!(),
        };
        let idx: Vec<Option<usize>> = out_vars.iter().map(|v| bindings.index_of(v)).collect();
        let mut rows: Vec<Vec<Option<Term>>> = bindings
            .rows
            .iter()
            .map(|row| {
                idx.iter()
                    .map(|i| i.and_then(|i| self.decode_cell(row[i])))
                    .collect()
            })
            .collect();

        if !q.order_by.is_empty() {
            let key_idx: Vec<(Option<usize>, bool)> = q
                .order_by
                .iter()
                .map(|(v, asc)| (out_vars.iter().position(|x| x == v), *asc))
                .collect();
            rows.sort_by(|a, b| {
                for (i, asc) in &key_idx {
                    if let Some(i) = i {
                        let ord = compare_terms(&a[*i], &b[*i]);
                        let ord = if *asc { ord } else { ord.reverse() };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        let mut rel = Relation::from_rows(out_vars, rows);
        if q.distinct {
            rel.dedup();
        }
        if let Some(offset) = q.offset {
            let rows = rel.rows_mut();
            if offset >= rows.len() {
                rows.clear();
            } else {
                rows.drain(..offset);
            }
        }
        if let Some(limit) = q.limit {
            rel.rows_mut().truncate(limit);
        }
        rel
    }

    fn decode_cell(&self, cell: Cell) -> Option<Term> {
        match cell {
            Cell::Unbound => None,
            Cell::Id(id) => Some(self.store.decode(id).clone()),
            Cell::Foreign(i) => Some(self.foreign[i as usize].clone()),
        }
    }

    /// Grouped aggregation (SPARQL 1.1 GROUP BY): group the solution rows
    /// by `group_keys` and compute each aggregate per group.
    fn aggregate(
        &mut self,
        bindings: &Bindings,
        group_keys: &[Variable],
        projected_keys: &[Variable],
        aggs: &[lusail_sparql::ast::AggSpec],
        q: &SelectQuery,
    ) -> Relation {
        use lusail_sparql::ast::AggFunc;
        let key_idx: Vec<Option<usize>> = group_keys.iter().map(|v| bindings.index_of(v)).collect();
        // Group rows by their key cells.
        let mut groups: FxHashMap<Vec<Cell>, Vec<&Vec<Cell>>> = FxHashMap::default();
        for row in &bindings.rows {
            let key: Vec<Cell> = key_idx
                .iter()
                .map(|i| i.map(|i| row[i]).unwrap_or(Cell::Unbound))
                .collect();
            groups.entry(key).or_default().push(row);
        }
        if groups.is_empty() && group_keys.is_empty() {
            // Aggregating an empty, ungrouped result yields one row.
            groups.insert(Vec::new(), Vec::new());
        }

        let mut out_vars: Vec<Variable> = projected_keys.to_vec();
        out_vars.extend(aggs.iter().map(|a| a.as_var.clone()));
        let mut rel = Relation::new(out_vars);

        for (key, rows) in groups {
            let mut out_row: Vec<Option<Term>> = Vec::with_capacity(rel.vars().len());
            for v in projected_keys {
                let pos = group_keys.iter().position(|k| k == v);
                out_row.push(match pos {
                    Some(p) => self.decode_cell(key[p]),
                    None => None,
                });
            }
            for agg in aggs {
                let arg_idx = agg.arg.as_ref().and_then(|v| bindings.index_of(v));
                // Collect the aggregated cells (bound only), dedup when
                // DISTINCT.
                let mut cells: Vec<Cell> = match (&agg.arg, arg_idx) {
                    (None, _) => rows.iter().map(|_| Cell::Unbound).collect(), // COUNT(*): one entry per row
                    (Some(_), None) => Vec::new(),
                    (Some(_), Some(i)) => rows
                        .iter()
                        .map(|r| r[i])
                        .filter(|c| *c != Cell::Unbound)
                        .collect(),
                };
                if agg.distinct && agg.arg.is_some() {
                    let mut seen = FxHashSet::default();
                    cells.retain(|c| seen.insert(*c));
                }
                let value: Option<Term> = match agg.func {
                    AggFunc::Count => Some(Term::integer(cells.len() as i64)),
                    AggFunc::Sum | AggFunc::Avg => {
                        let nums: Vec<f64> = cells
                            .iter()
                            .filter_map(|c| self.decode_cell(*c))
                            .filter_map(|t| t.as_literal().and_then(|l| l.as_f64()))
                            .collect();
                        if nums.is_empty() {
                            Some(Term::integer(0))
                        } else {
                            let sum: f64 = nums.iter().sum();
                            let v = if agg.func == AggFunc::Avg {
                                sum / nums.len() as f64
                            } else {
                                sum
                            };
                            Some(if v.fract() == 0.0 {
                                Term::integer(v as i64)
                            } else {
                                Term::Literal(lusail_rdf::Literal::double(v))
                            })
                        }
                    }
                    AggFunc::Min | AggFunc::Max => {
                        let mut terms: Vec<Option<Term>> =
                            cells.iter().map(|c| self.decode_cell(*c)).collect();
                        terms.sort_by(compare_terms);
                        let pick = if agg.func == AggFunc::Min {
                            terms.first()
                        } else {
                            terms.last()
                        };
                        pick.cloned().flatten()
                    }
                };
                out_row.push(value);
            }
            rel.push(out_row);
        }
        // Deterministic output order for grouped results.
        rel.rows_mut().sort_by(|a, b| {
            for i in 0..a.len() {
                let ord = compare_terms(&a[i], &b[i]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        if let Some(limit) = q.limit {
            rel.rows_mut().truncate(limit);
        }
        rel
    }

    fn encode_term(&mut self, t: &Term) -> Cell {
        match self.store.resolve(t) {
            Some(id) => Cell::Id(id),
            None => {
                if let Some(i) = self.foreign.iter().position(|x| x == t) {
                    Cell::Foreign(i as u32)
                } else {
                    self.foreign.push(t.clone());
                    Cell::Foreign((self.foreign.len() - 1) as u32)
                }
            }
        }
    }

    // ---- pattern evaluation ---------------------------------------------

    fn eval_pattern(&mut self, p: &GraphPattern, input: Bindings) -> Bindings {
        match p {
            GraphPattern::Bgp(tps) => self.eval_bgp(tps, input),
            GraphPattern::Join(a, b) => {
                let left = self.eval_pattern(a, input);
                self.eval_pattern(b, left)
            }
            GraphPattern::LeftJoin(a, b) => {
                let left = self.eval_pattern(a, input);
                self.eval_left_join(&left, b)
            }
            GraphPattern::Union(a, b) => {
                let la = self.eval_pattern(a, input.clone());
                let lb = self.eval_pattern(b, input);
                union_bindings(la, lb)
            }
            GraphPattern::Filter(inner, e) => {
                let rows = self.eval_pattern(inner, input);
                self.eval_filter(rows, e)
            }
            GraphPattern::Values(vars, data) => {
                let mut values = Bindings {
                    vars: vars.clone(),
                    rows: Vec::new(),
                };
                for row in data {
                    values.rows.push(
                        row.iter()
                            .map(|cell| match cell {
                                None => Cell::Unbound,
                                Some(t) => self.encode_term(t),
                            })
                            .collect(),
                    );
                }
                join_bindings(&input, &values)
            }
            GraphPattern::Bind(inner, expr, var) => {
                let rows = self.eval_pattern(inner, input);
                self.eval_bind(rows, expr, var)
            }
            GraphPattern::Minus(a, b) => {
                let left = self.eval_pattern(a, input);
                // SPARQL MINUS evaluates its right side independently.
                let right = self.eval_pattern(b, Bindings::unit());
                minus_bindings(left, &right)
            }
            GraphPattern::SubSelect(q) => {
                // Correlated evaluation (the shape Lusail's check queries
                // use inside NOT EXISTS): the subquery sees the incoming
                // bindings, then projects.
                let inner = self.eval_pattern(&q.pattern, input);
                let rel = self.finish_select(q, inner);
                self.relation_to_bindings(&rel)
            }
        }
    }

    /// Convert a term-level relation back into cells (used by subselects
    /// and by endpoint-side `VALUES` injection).
    fn relation_to_bindings(&mut self, rel: &Relation) -> Bindings {
        let vars = rel.vars().to_vec();
        let rows = rel
            .rows()
            .iter()
            .map(|row| {
                row.iter()
                    .map(|c| match c {
                        None => Cell::Unbound,
                        Some(t) => self.encode_term(t),
                    })
                    .collect()
            })
            .collect();
        Bindings { vars, rows }
    }

    fn eval_bgp(&mut self, tps: &[TriplePattern], input: Bindings) -> Bindings {
        if tps.is_empty() {
            return input;
        }
        let mut remaining: Vec<&TriplePattern> = tps.iter().collect();
        let mut acc = input;
        while !remaining.is_empty() {
            let next_idx = self.pick_next_pattern(&remaining, &acc.vars);
            let tp = remaining.swap_remove(next_idx);
            acc = self.extend_by_pattern(acc, tp);
            if acc.rows.is_empty() {
                // Short-circuit: the conjunction is already empty.
                // Register remaining variables so the header stays complete.
                for tp in &remaining {
                    for v in tp.variables() {
                        if !acc.vars.contains(v) {
                            acc.vars.push(v.clone());
                        }
                    }
                }
                for row in &mut acc.rows {
                    row.resize(acc.vars.len(), Cell::Unbound);
                }
                return acc;
            }
        }
        acc
    }

    /// Greedy join ordering: among patterns sharing a variable with the
    /// bound set (or all patterns if none does), pick the one with the
    /// smallest constant-only match count.
    fn pick_next_pattern(&self, remaining: &[&TriplePattern], bound: &[Variable]) -> usize {
        let shares = |tp: &TriplePattern| tp.variables().iter().any(|v| bound.contains(v));
        let candidates: Vec<usize> = {
            let sharing: Vec<usize> = (0..remaining.len())
                .filter(|&i| shares(remaining[i]))
                .collect();
            if sharing.is_empty() || bound.is_empty() {
                (0..remaining.len()).collect()
            } else {
                sharing
            }
        };
        let mut best = candidates[0];
        let mut best_cost = usize::MAX;
        for &i in &candidates {
            let tp = remaining[i];
            let resolve = |slot: &TermPattern| -> Result<Option<TermId>, ()> {
                match slot {
                    TermPattern::Var(_) => Ok(None),
                    TermPattern::Term(t) => self.store.resolve(t).map(Some).ok_or(()),
                }
            };
            let cost = match (
                resolve(&tp.subject),
                resolve(&tp.predicate),
                resolve(&tp.object),
            ) {
                (Ok(s), Ok(p), Ok(o)) => self.store.count_ids(s, p, o),
                _ => 0, // unknown constant: zero matches, cheapest
            };
            if cost < best_cost {
                best_cost = cost;
                best = i;
            }
        }
        best
    }

    /// Extend each row of `acc` with all matches of `tp`.
    fn extend_by_pattern(&mut self, acc: Bindings, tp: &TriplePattern) -> Bindings {
        // Compute the new header.
        let mut vars = acc.vars.clone();
        for v in tp.variables() {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
        let slot_plan: Vec<SlotPlan> = [&tp.subject, &tp.predicate, &tp.object]
            .into_iter()
            .map(|slot| match slot {
                TermPattern::Term(t) => match self.store.resolve(t) {
                    Some(id) => SlotPlan::Const(id),
                    None => SlotPlan::Impossible,
                },
                TermPattern::Var(v) => {
                    let in_acc = acc.index_of(v);
                    let out_idx = vars.iter().position(|x| x == v).unwrap();
                    SlotPlan::Var { in_acc, out_idx }
                }
            })
            .collect();

        let mut out = Bindings {
            vars,
            rows: Vec::new(),
        };
        if slot_plan.iter().any(|s| matches!(s, SlotPlan::Impossible)) {
            return out;
        }

        for row in &acc.rows {
            // Resolve each slot under this row.
            let mut probe = [None::<TermId>; 3];
            let mut dead = false;
            for (i, plan) in slot_plan.iter().enumerate() {
                match plan {
                    SlotPlan::Const(id) => probe[i] = Some(*id),
                    SlotPlan::Var {
                        in_acc: Some(j), ..
                    } => match row[*j] {
                        Cell::Id(id) => probe[i] = Some(id),
                        Cell::Foreign(_) => {
                            dead = true;
                            break;
                        }
                        Cell::Unbound => {}
                    },
                    SlotPlan::Var { in_acc: None, .. } => {}
                    SlotPlan::Impossible => unreachable!(),
                }
            }
            if dead {
                continue;
            }
            let matches = self.store.match_ids(probe[0], probe[1], probe[2]);
            'matches: for (s, p, o) in matches {
                let mut new_row: Vec<Cell> = row.clone();
                new_row.resize(out.vars.len(), Cell::Unbound);
                let found = [s, p, o];
                for (i, plan) in slot_plan.iter().enumerate() {
                    if let SlotPlan::Var { out_idx, .. } = plan {
                        match new_row[*out_idx] {
                            Cell::Unbound => new_row[*out_idx] = Cell::Id(found[i]),
                            Cell::Id(existing) => {
                                // Same variable twice in one pattern (e.g.
                                // ?x p ?x) — enforce equality.
                                if existing != found[i] {
                                    continue 'matches;
                                }
                            }
                            Cell::Foreign(_) => continue 'matches,
                        }
                    }
                }
                out.rows.push(new_row);
            }
        }
        out
    }

    fn eval_left_join(&mut self, left: &Bindings, right: &GraphPattern) -> Bindings {
        // Correlated per-row OPTIONAL evaluation (equivalent to SPARQL
        // LeftJoin for well-designed patterns, and far cheaper than
        // evaluating the optional side over the whole store).
        let mut out_vars = left.vars.clone();
        for v in right.in_scope_variables() {
            if !out_vars.contains(&v) {
                out_vars.push(v);
            }
        }
        let mut out = Bindings {
            vars: out_vars,
            rows: Vec::new(),
        };
        for row in &left.rows {
            let seed = Bindings {
                vars: left.vars.clone(),
                rows: vec![row.clone()],
            };
            let sub = self.eval_pattern(right, seed);
            if sub.rows.is_empty() {
                let mut r = row.clone();
                r.resize(out.vars.len(), Cell::Unbound);
                out.rows.push(r);
            } else {
                for srow in sub.rows {
                    let mut r = Vec::with_capacity(out.vars.len());
                    for v in &out.vars {
                        let cell = sub
                            .vars
                            .iter()
                            .position(|x| x == v)
                            .map(|i| srow[i])
                            .or_else(|| left.index_of(v).map(|i| row[i]))
                            .unwrap_or(Cell::Unbound);
                        r.push(cell);
                    }
                    out.rows.push(r);
                }
            }
        }
        out
    }

    /// `BIND(expr AS ?v)`: compute the expression per row; errors leave
    /// the variable unbound (per the SPARQL spec).
    fn eval_bind(&mut self, bindings: Bindings, expr: &Expression, var: &Variable) -> Bindings {
        let mut vars = bindings.vars.clone();
        let fresh = !vars.contains(var);
        if fresh {
            vars.push(var.clone());
        }
        let out_idx = vars.iter().position(|x| x == var).unwrap();
        let mut out = Bindings {
            vars,
            rows: Vec::with_capacity(bindings.rows.len()),
        };
        for row in bindings.rows {
            let value = {
                let mut ctx = RowCtx {
                    eval: self,
                    vars: &bindings.vars,
                    row: &row,
                };
                crate::expr::eval(expr, &mut ctx).and_then(crate::expr::value_to_term)
            };
            let mut new_row = row.clone();
            if fresh {
                new_row.push(Cell::Unbound);
            }
            match value {
                Some(t) => {
                    let cell = self.encode_term(&t);
                    // Re-binding an already-bound variable must agree
                    // (SPARQL forbids it syntactically; we enforce equality).
                    if new_row[out_idx] == Cell::Unbound || new_row[out_idx] == cell {
                        new_row[out_idx] = cell;
                        out.rows.push(new_row);
                    }
                }
                None => out.rows.push(new_row),
            }
        }
        out
    }

    fn eval_filter(&mut self, bindings: Bindings, e: &Expression) -> Bindings {
        let mut out = Bindings {
            vars: bindings.vars.clone(),
            rows: Vec::new(),
        };
        for row in bindings.rows {
            let keep = {
                let mut ctx = RowCtx {
                    eval: self,
                    vars: &bindings.vars,
                    row: &row,
                };
                eval_ebv(e, &mut ctx)
            };
            if keep {
                out.rows.push(row);
            }
        }
        out
    }
}

enum SlotPlan {
    Const(TermId),
    Impossible,
    Var {
        in_acc: Option<usize>,
        out_idx: usize,
    },
}

/// Expression context for one row: variable lookup plus correlated EXISTS.
struct RowCtx<'a, 'b> {
    eval: &'a mut Evaluator<'b>,
    vars: &'a [Variable],
    row: &'a [Cell],
}

impl ExprContext for RowCtx<'_, '_> {
    fn value_of(&self, v: &Variable) -> Option<Term> {
        let i = self.vars.iter().position(|x| x == v)?;
        self.eval.decode_cell(self.row[i])
    }

    fn exists(&mut self, pattern: &GraphPattern) -> bool {
        // Seed the inner pattern with the current row (SPARQL's
        // substitution semantics for EXISTS).
        let seed = Bindings {
            vars: self.vars.to_vec(),
            rows: vec![self.row.to_vec()],
        };
        !self.eval.eval_pattern(pattern, seed).rows.is_empty()
    }
}

/// SPARQL MINUS: drop a left row when some right row shares at least one
/// bound variable with it and agrees on every shared bound variable.
fn minus_bindings(left: Bindings, right: &Bindings) -> Bindings {
    let shared: Vec<(usize, usize)> = left
        .vars
        .iter()
        .enumerate()
        .filter_map(|(i, v)| right.index_of(v).map(|j| (i, j)))
        .collect();
    if shared.is_empty() {
        return left;
    }
    let rows = left
        .rows
        .into_iter()
        .filter(|lrow| {
            !right.rows.iter().any(|rrow| {
                let mut overlap = false;
                for &(i, j) in &shared {
                    match (lrow[i], rrow[j]) {
                        (Cell::Unbound, _) | (_, Cell::Unbound) => {}
                        (a, b) if a == b => overlap = true,
                        _ => return false, // disagree on a shared bound var
                    }
                }
                overlap
            })
        })
        .collect();
    Bindings {
        vars: left.vars,
        rows,
    }
}

fn union_bindings(a: Bindings, b: Bindings) -> Bindings {
    let mut vars = a.vars.clone();
    for v in &b.vars {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    let mut rows = Vec::with_capacity(a.rows.len() + b.rows.len());
    let pad = |src_vars: &[Variable], row: &[Cell], vars: &[Variable]| -> Vec<Cell> {
        vars.iter()
            .map(|v| {
                src_vars
                    .iter()
                    .position(|x| x == v)
                    .map(|i| row[i])
                    .unwrap_or(Cell::Unbound)
            })
            .collect()
    };
    for row in &a.rows {
        rows.push(pad(&a.vars, row, &vars));
    }
    for row in &b.rows {
        rows.push(pad(&b.vars, row, &vars));
    }
    Bindings { vars, rows }
}

fn join_bindings(a: &Bindings, b: &Bindings) -> Bindings {
    let shared: Vec<(usize, usize)> = a
        .vars
        .iter()
        .enumerate()
        .filter_map(|(i, v)| b.index_of(v).map(|j| (i, j)))
        .collect();
    let mut vars = a.vars.clone();
    let b_extra: Vec<usize> = (0..b.vars.len())
        .filter(|&j| !a.vars.contains(&b.vars[j]))
        .collect();
    for &j in &b_extra {
        vars.push(b.vars[j].clone());
    }
    let mut out = Bindings {
        vars,
        rows: Vec::new(),
    };

    // Hash the smaller side on fully-bound shared keys; rows with unbound
    // shared cells go to a compatibility scan list.
    let mut table: FxHashMap<Vec<Cell>, Vec<usize>> = FxHashMap::default();
    let mut loose: Vec<usize> = Vec::new();
    for (bi, row) in b.rows.iter().enumerate() {
        let key: Vec<Cell> = shared.iter().map(|&(_, j)| row[j]).collect();
        if key.contains(&Cell::Unbound) {
            loose.push(bi);
        } else {
            table.entry(key).or_default().push(bi);
        }
    }
    for arow in &a.rows {
        let key: Vec<Cell> = shared.iter().map(|&(i, _)| arow[i]).collect();
        let emit = |brow: &Vec<Cell>, out: &mut Bindings| {
            let mut r = Vec::with_capacity(out.vars.len());
            for (i, _) in a.vars.iter().enumerate() {
                let mut cell = arow[i];
                if cell == Cell::Unbound {
                    if let Some(j) = b.index_of(&a.vars[i]) {
                        cell = brow[j];
                    }
                }
                r.push(cell);
            }
            for &j in &b_extra {
                r.push(brow[j]);
            }
            out.rows.push(r);
        };
        let compatible = |brow: &Vec<Cell>| {
            shared.iter().all(|&(i, j)| {
                arow[i] == Cell::Unbound || brow[j] == Cell::Unbound || arow[i] == brow[j]
            })
        };
        if key.contains(&Cell::Unbound) {
            // Scan everything.
            for brow in &b.rows {
                if compatible(brow) {
                    emit(brow, &mut out);
                }
            }
        } else {
            if let Some(matches) = table.get(&key) {
                for &bi in matches {
                    emit(&b.rows[bi], &mut out);
                }
            }
            for &bi in &loose {
                if compatible(&b.rows[bi]) {
                    emit(&b.rows[bi], &mut out);
                }
            }
        }
    }
    out
}

/// SPARQL ORDER BY term ordering: unbound < blank < IRI < literal, then
/// numeric or lexical within literals.
fn compare_terms(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(t: &Option<Term>) -> u8 {
        match t {
            None => 0,
            Some(Term::BlankNode(_)) => 1,
            Some(Term::Iri(_)) => 2,
            Some(Term::Literal(_)) => 3,
        }
    }
    let (ra, rb) = (rank(a), rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Some(Term::Literal(la)), Some(Term::Literal(lb))) => {
            if let (Some(na), Some(nb)) = (la.as_f64(), lb.as_f64()) {
                na.partial_cmp(&nb).unwrap_or(Ordering::Equal)
            } else {
                la.lexical.cmp(&lb.lexical)
            }
        }
        (Some(x), Some(y)) => x.cmp(y),
        _ => Ordering::Equal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::Graph;
    use lusail_sparql::parse_query;

    /// The two-university decentralized graph of Figure 1 (EP2's data).
    fn ep2_store() -> Store {
        let mut g = Graph::new();
        let ub = |l: &str| format!("http://swat.cse.lehigh.edu/onto/univ-bench.owl#{l}");
        let e = |l: &str| Term::iri(format!("http://univ2.example.org/{l}"));
        let mit = Term::iri("http://univ1.example.org/MIT");
        // Students & advisors at CMU (EP2)
        g.add_type(e("Kim"), ub("GraduateStudent"));
        g.add_type(e("Lee"), ub("GraduateStudent"));
        g.add_type(e("Joy"), ub("AssociateProfessor"));
        g.add_type(e("Tim"), ub("AssociateProfessor"));
        g.add_type(e("Ben"), ub("AssociateProfessor"));
        g.add_type(e("CMU"), ub("University"));
        g.add_type(e("db"), ub("GraduateCourse"));
        g.add_type(e("os"), ub("GraduateCourse"));
        g.add(e("Kim"), Term::iri(ub("advisor")), e("Joy"));
        g.add(e("Kim"), Term::iri(ub("advisor")), e("Tim"));
        g.add(e("Lee"), Term::iri(ub("advisor")), e("Ben"));
        g.add(e("Joy"), Term::iri(ub("teacherOf")), e("db"));
        g.add(e("Tim"), Term::iri(ub("teacherOf")), e("os"));
        g.add(e("Ben"), Term::iri(ub("teacherOf")), e("os"));
        g.add(e("Kim"), Term::iri(ub("takesCourse")), e("db"));
        g.add(e("Kim"), Term::iri(ub("takesCourse")), e("os"));
        g.add(e("Lee"), Term::iri(ub("takesCourse")), e("os"));
        g.add(e("Joy"), Term::iri(ub("PhDDegreeFrom")), e("CMU"));
        // Tim's PhD is from MIT — an interlink into EP1.
        g.add(e("Tim"), Term::iri(ub("PhDDegreeFrom")), mit.clone());
        g.add(e("Ben"), Term::iri(ub("PhDDegreeFrom")), e("CMU"));
        g.add(e("CMU"), Term::iri(ub("address")), Term::literal("CCCC"));
        Store::from_graph(&g)
    }

    fn run(store: &Store, q: &str) -> Relation {
        let query = parse_query(q).unwrap();
        Evaluator::new(store).query(&query).into_solutions()
    }

    const PRE: &str = "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n\
                       PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n\
                       PREFIX u2: <http://univ2.example.org/>\n";

    #[test]
    fn bgp_single_pattern() {
        let st = ep2_store();
        let r = run(
            &st,
            &format!("{PRE} SELECT ?s WHERE {{ ?s rdf:type ub:GraduateStudent }}"),
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn bgp_join_students_with_advisor_courses() {
        let st = ep2_store();
        // Students taking a course taught by their advisor: Kim-Joy(db),
        // Kim-Tim(os), Lee-Ben(os).
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?s ?p WHERE {{ ?s ub:advisor ?p . ?p ub:teacherOf ?c . ?s ub:takesCourse ?c }}"
            ),
        );
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ask_true_and_false() {
        let st = ep2_store();
        let t = parse_query(&format!("{PRE} ASK {{ u2:Kim ub:advisor u2:Tim }}")).unwrap();
        assert!(Evaluator::new(&st).query(&t).into_boolean());
        let f = parse_query(&format!("{PRE} ASK {{ u2:Tim ub:advisor u2:Kim }}")).unwrap();
        assert!(!Evaluator::new(&st).query(&f).into_boolean());
    }

    #[test]
    fn optional_pads_missing() {
        let st = ep2_store();
        // Tim's PhD university (MIT) has no local address; CMU does.
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?p ?u ?a WHERE {{ ?p ub:PhDDegreeFrom ?u OPTIONAL {{ ?u ub:address ?a }} }}"
            ),
        );
        assert_eq!(r.len(), 3);
        let tim_row = r
            .rows()
            .iter()
            .find(|row| row[1] == Some(Term::iri("http://univ1.example.org/MIT")))
            .unwrap();
        assert_eq!(tim_row[2], None);
        let cmu_rows: Vec<_> = r
            .rows()
            .iter()
            .filter(|row| row[1] == Some(Term::iri("http://univ2.example.org/CMU")))
            .collect();
        assert!(cmu_rows
            .iter()
            .all(|row| row[2] == Some(Term::literal("CCCC"))));
    }

    #[test]
    fn union_combines() {
        let st = ep2_store();
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?x WHERE {{ {{ ?x rdf:type ub:GraduateStudent }} UNION {{ ?x rdf:type ub:AssociateProfessor }} }}"
            ),
        );
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn filter_not_exists_check_query() {
        let st = ep2_store();
        // The paper's Figure 5 check: professors who are objects of advisor
        // but never subjects of teacherOf. In EP2 all advisors teach, so
        // the check returns empty (→ ?P locally joinable here).
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?p WHERE {{ ?s ub:advisor ?p . FILTER NOT EXISTS {{ SELECT ?p WHERE {{ ?p ub:teacherOf ?c }} }} }} LIMIT 1"
            ),
        );
        assert!(r.is_empty());
        // PhDDegreeFrom objects that never appear as subjects of address:
        // MIT (remote) → non-empty (→ ?U is a global join variable).
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?u WHERE {{ ?p ub:PhDDegreeFrom ?u . FILTER NOT EXISTS {{ SELECT ?u WHERE {{ ?u ub:address ?a }} }} }} LIMIT 1"
            ),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.rows()[0][0],
            Some(Term::iri("http://univ1.example.org/MIT"))
        );
    }

    #[test]
    fn values_joins_inline_data() {
        let st = ep2_store();
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?s ?c WHERE {{ ?s ub:takesCourse ?c . VALUES ?s {{ u2:Kim }} }}"
            ),
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn values_with_foreign_terms_yields_nothing() {
        let st = ep2_store();
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?s ?c WHERE {{ ?s ub:takesCourse ?c . VALUES ?s {{ <http://elsewhere/Zoe> }} }}"
            ),
        );
        assert!(r.is_empty());
    }

    #[test]
    fn count_aggregate() {
        let st = ep2_store();
        let r = run(
            &st,
            &format!("{PRE} SELECT (COUNT(*) AS ?c) WHERE {{ ?s ub:advisor ?p }}"),
        );
        assert_eq!(r.rows()[0][0], Some(Term::integer(3)));
        let r = run(
            &st,
            &format!("{PRE} SELECT (COUNT(DISTINCT ?p) AS ?c) WHERE {{ ?s ub:advisor ?p }}"),
        );
        assert_eq!(r.rows()[0][0], Some(Term::integer(3)));
        let r = run(
            &st,
            &format!("{PRE} SELECT (COUNT(DISTINCT ?s) AS ?c) WHERE {{ ?s ub:advisor ?p }}"),
        );
        assert_eq!(r.rows()[0][0], Some(Term::integer(2)));
    }

    #[test]
    fn distinct_limit_offset_order() {
        let st = ep2_store();
        let all = run(
            &st,
            &format!("{PRE} SELECT ?s WHERE {{ ?s ub:takesCourse ?c }} ORDER BY ?s"),
        );
        assert_eq!(all.len(), 3);
        let first = all.rows()[0][0].clone();
        let lim = run(
            &st,
            &format!("{PRE} SELECT ?s WHERE {{ ?s ub:takesCourse ?c }} ORDER BY ?s LIMIT 1"),
        );
        assert_eq!(lim.rows()[0][0], first);
        let off = run(
            &st,
            &format!(
                "{PRE} SELECT DISTINCT ?s WHERE {{ ?s ub:takesCourse ?c }} ORDER BY ?s OFFSET 1"
            ),
        );
        assert_eq!(off.len(), 1);
    }

    #[test]
    fn filter_comparison_on_literal() {
        let st = ep2_store();
        let r = run(
            &st,
            &format!("{PRE} SELECT ?u WHERE {{ ?u ub:address ?a . FILTER(?a = \"CCCC\") }}"),
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn same_var_twice_in_pattern() {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/a"),
            Term::iri("http://x/loves"),
            Term::iri("http://x/a"),
        );
        g.add(
            Term::iri("http://x/a"),
            Term::iri("http://x/loves"),
            Term::iri("http://x/b"),
        );
        let st = Store::from_graph(&g);
        let r = run(&st, "SELECT ?x WHERE { ?x <http://x/loves> ?x }");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Some(Term::iri("http://x/a")));
    }

    #[test]
    fn variable_predicate() {
        let st = ep2_store();
        let r = run(
            &st,
            &format!("{PRE} SELECT ?p2 WHERE {{ u2:Kim ?p2 u2:Joy }}"),
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn group_by_aggregates() {
        let st = ep2_store();
        // Courses taken per student.
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?s (COUNT(?c) AS ?n) WHERE {{ ?s ub:takesCourse ?c }} GROUP BY ?s"
            ),
        );
        assert_eq!(r.len(), 2);
        let kim = r
            .rows()
            .iter()
            .find(|row| row[0] == Some(Term::iri("http://univ2.example.org/Kim")))
            .unwrap();
        assert_eq!(kim[1], Some(Term::integer(2)));
        // MIN/MAX over literals.
        let r = run(
            &st,
            &format!("{PRE} SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) WHERE {{ ?u ub:address ?a }}"),
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0][0], Some(Term::literal("CCCC")));
        assert_eq!(r.rows()[0][1], Some(Term::literal("CCCC")));
    }

    #[test]
    fn bind_extends_rows() {
        let st = ep2_store();
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?s ?label WHERE {{ ?s ub:advisor ?p . BIND(STR(?s) AS ?label) }}"
            ),
        );
        assert_eq!(r.len(), 3);
        for row in r.rows() {
            let s = row[0].as_ref().unwrap().as_iri().unwrap().to_string();
            assert_eq!(row[1], Some(Term::literal(s)));
        }
        // Erroring BIND leaves the variable unbound but keeps the row.
        let r = run(
            &st,
            &format!("{PRE} SELECT ?s ?x WHERE {{ ?s ub:advisor ?p . BIND(?p + 1 AS ?x) }}"),
        );
        assert_eq!(r.len(), 3);
        assert!(r.rows().iter().all(|row| row[1].is_none()));
    }

    #[test]
    fn minus_removes_matching() {
        let st = ep2_store();
        // Students minus those taking the os course: Kim takes db+os,
        // Lee takes os → both removed when matching on ?s.
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?s WHERE {{ ?s rdf:type ub:GraduateStudent MINUS {{ ?s ub:takesCourse u2:os }} }}"
            ),
        );
        assert!(r.is_empty());
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?s WHERE {{ ?s rdf:type ub:GraduateStudent MINUS {{ ?s ub:takesCourse u2:db }} }}"
            ),
        );
        // Only Kim takes db → Lee survives.
        assert_eq!(r.len(), 1);
        assert_eq!(
            r.rows()[0][0],
            Some(Term::iri("http://univ2.example.org/Lee"))
        );
        // MINUS with no shared variables removes nothing (SPARQL spec).
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?s WHERE {{ ?s rdf:type ub:GraduateStudent MINUS {{ ?q ub:takesCourse u2:db }} }}"
            ),
        );
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_result_keeps_full_header() {
        let st = ep2_store();
        let r = run(
            &st,
            &format!(
                "{PRE} SELECT ?s ?x WHERE {{ ?s rdf:type ub:UndergraduateStudent . ?s ub:takesCourse ?x }}"
            ),
        );
        assert!(r.is_empty());
        assert_eq!(r.vars().len(), 2);
    }
}
