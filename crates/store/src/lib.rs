//! # lusail-store
//!
//! An in-memory, dictionary-encoded RDF triple store with a full evaluator
//! for the SPARQL fragment in [`lusail_sparql`]. One `Store` plays the role
//! that Jena Fuseki or Virtuoso plays in the paper: the *standard, unmodified
//! engine at each endpoint* that the federated systems talk to.
//!
//! Layout follows the classic triple-store design: terms are interned to
//! dense `u32` ids ([`lusail_rdf::Dictionary`]) and three sorted permutation
//! indexes (SPO, POS, OSP) answer any triple-pattern access path with a
//! range scan.
//!
//! The evaluator implements bag semantics, `FILTER` expressions (including
//! correlated `EXISTS` / `NOT EXISTS`, which Lusail's locality check queries
//! rely on), `OPTIONAL`, `UNION`, `VALUES`, sub-`SELECT`s, `DISTINCT`,
//! `ORDER BY`, `LIMIT`/`OFFSET`, and the `COUNT` aggregate.

pub mod eval;
pub mod expr;
pub mod regex_lite;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use eval::Evaluator;
pub use stats::StoreStats;
pub use store::Store;
