//! The dictionary-encoded triple store.

use lusail_rdf::{Dictionary, Graph, Term, TermId, Triple};
use std::collections::BTreeSet;

/// One endpoint's triple store: a dictionary plus three permutation indexes.
///
/// Inserts deduplicate (RDF graphs are sets of triples). All query
/// processing inside the store works on `TermId`s; terms cross the store
/// boundary only in results.
#[derive(Debug, Default, Clone)]
pub struct Store {
    dict: Dictionary,
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a store from a graph.
    pub fn from_graph(graph: &Graph) -> Self {
        let mut store = Store::new();
        store.load(graph);
        store
    }

    /// Load all triples of a graph.
    pub fn load(&mut self, graph: &Graph) {
        for t in graph {
            self.insert(t);
        }
    }

    /// Insert one triple. Returns `true` if it was new.
    pub fn insert(&mut self, triple: &Triple) -> bool {
        let s = self.dict.encode(&triple.subject);
        let p = self.dict.encode(&triple.predicate);
        let o = self.dict.encode(&triple.object);
        if self.spo.insert((s, p, o)) {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
            true
        } else {
            false
        }
    }

    /// Number of (distinct) triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// The term dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Intern-or-lookup a term id *without* inserting any triple. Returns
    /// `None` when the term does not occur in this store, which lets
    /// pattern matching short-circuit to an empty result.
    pub fn resolve(&self, term: &Term) -> Option<TermId> {
        self.dict.get(term)
    }

    /// Decode an id to its term.
    pub fn decode(&self, id: TermId) -> &Term {
        self.dict.decode(id)
    }

    /// Match a triple pattern of optional ids, yielding `(s, p, o)` id
    /// triples. Chooses the best permutation index for the bound slots.
    pub fn match_ids(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
    ) -> Vec<(TermId, TermId, TermId)> {
        const MIN: TermId = 0;
        const MAX: TermId = TermId::MAX;
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![(s, p, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self
                .spo
                .range((s, p, MIN)..=(s, p, MAX))
                .map(|&(a, b, c)| (a, b, c))
                .collect(),
            (Some(s), None, None) => self
                .spo
                .range((s, MIN, MIN)..=(s, MAX, MAX))
                .map(|&(a, b, c)| (a, b, c))
                .collect(),
            (None, Some(p), Some(o)) => self
                .pos
                .range((p, o, MIN)..=(p, o, MAX))
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (None, Some(p), None) => self
                .pos
                .range((p, MIN, MIN)..=(p, MAX, MAX))
                .map(|&(p, o, s)| (s, p, o))
                .collect(),
            (Some(s), None, Some(o)) => self
                .osp
                .range((o, s, MIN)..=(o, s, MAX))
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (None, None, Some(o)) => self
                .osp
                .range((o, MIN, MIN)..=(o, MAX, MAX))
                .map(|&(o, s, p)| (s, p, o))
                .collect(),
            (None, None, None) => self.spo.iter().map(|&(a, b, c)| (a, b, c)).collect(),
        }
    }

    /// Count the matches of a pattern without materializing terms.
    pub fn count_ids(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        // BTreeSet ranges don't know their length; counting the iterator is
        // O(matches) which is fine at our scale.
        const MIN: TermId = 0;
        const MAX: TermId = TermId::MAX;
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.contains(&(s, p, o))),
            (Some(s), Some(p), None) => self.spo.range((s, p, MIN)..=(s, p, MAX)).count(),
            (Some(s), None, None) => self.spo.range((s, MIN, MIN)..=(s, MAX, MAX)).count(),
            (None, Some(p), Some(o)) => self.pos.range((p, o, MIN)..=(p, o, MAX)).count(),
            (None, Some(p), None) => self.pos.range((p, MIN, MIN)..=(p, MAX, MAX)).count(),
            (Some(s), None, Some(o)) => self.osp.range((o, s, MIN)..=(o, s, MAX)).count(),
            (None, None, Some(o)) => self.osp.range((o, MIN, MIN)..=(o, MAX, MAX)).count(),
            (None, None, None) => self.spo.len(),
        }
    }

    /// Match a pattern of optional *terms*; terms unknown to the dictionary
    /// yield an empty result.
    pub fn match_terms(
        &self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Vec<(TermId, TermId, TermId)> {
        let resolve = |t: Option<&Term>| -> Result<Option<TermId>, ()> {
            match t {
                None => Ok(None),
                Some(t) => match self.resolve(t) {
                    Some(id) => Ok(Some(id)),
                    None => Err(()),
                },
            }
        };
        match (resolve(s), resolve(p), resolve(o)) {
            (Ok(s), Ok(p), Ok(o)) => self.match_ids(s, p, o),
            _ => Vec::new(),
        }
    }

    /// Iterate all triples as id-triples in SPO order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        self.spo.iter().copied()
    }

    /// All distinct predicate ids.
    pub fn predicates(&self) -> Vec<TermId> {
        let mut out = Vec::new();
        let mut last = None;
        for &(p, _, _) in &self.pos {
            if last != Some(p) {
                out.push(p);
                last = Some(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::Term;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::iris(
            format!("http://x/{s}"),
            format!("http://x/{p}"),
            format!("http://x/{o}"),
        )
    }

    fn store() -> Store {
        let mut st = Store::new();
        st.insert(&t("a", "p", "b"));
        st.insert(&t("a", "p", "c"));
        st.insert(&t("b", "q", "c"));
        st.insert(&t("c", "p", "b"));
        st
    }

    #[test]
    fn insert_deduplicates() {
        let mut st = store();
        assert_eq!(st.len(), 4);
        assert!(!st.insert(&t("a", "p", "b")));
        assert_eq!(st.len(), 4);
    }

    #[test]
    fn all_access_paths_agree() {
        let st = store();
        let s = st.resolve(&Term::iri("http://x/a"));
        let p = st.resolve(&Term::iri("http://x/p"));
        let o = st.resolve(&Term::iri("http://x/b"));
        assert_eq!(st.match_ids(s, p, o).len(), 1);
        assert_eq!(st.match_ids(s, p, None).len(), 2);
        assert_eq!(st.match_ids(s, None, None).len(), 2);
        assert_eq!(st.match_ids(None, p, o).len(), 2); // a-p-b, c-p-b
        assert_eq!(st.match_ids(None, p, None).len(), 3);
        assert_eq!(st.match_ids(s, None, o).len(), 1);
        assert_eq!(st.match_ids(None, None, o).len(), 2);
        assert_eq!(st.match_ids(None, None, None).len(), 4);
    }

    #[test]
    fn counts_match_matches() {
        let st = store();
        let p = st.resolve(&Term::iri("http://x/p"));
        for (s, pp, o) in [
            (None, p, None),
            (None, None, None),
            (st.resolve(&Term::iri("http://x/a")), None, None),
        ] {
            assert_eq!(st.count_ids(s, pp, o), st.match_ids(s, pp, o).len());
        }
    }

    #[test]
    fn unknown_term_matches_nothing() {
        let st = store();
        assert!(st
            .match_terms(Some(&Term::iri("http://nowhere/z")), None, None)
            .is_empty());
        assert_eq!(st.resolve(&Term::iri("http://nowhere/z")), None);
    }

    #[test]
    fn predicates_listing() {
        let st = store();
        let preds: Vec<_> = st
            .predicates()
            .into_iter()
            .map(|id| st.decode(id).clone())
            .collect();
        assert_eq!(preds.len(), 2);
        assert!(preds.contains(&Term::iri("http://x/p")));
        assert!(preds.contains(&Term::iri("http://x/q")));
    }

    #[test]
    fn match_returns_spo_orientation_from_every_index() {
        let st = store();
        // Whatever index serves the lookup, results are (s,p,o).
        let o = st.resolve(&Term::iri("http://x/c"));
        for (s, p, oo) in st.match_ids(None, None, o) {
            assert_eq!(oo, o.unwrap());
            assert!(st.match_ids(Some(s), Some(p), Some(oo)).len() == 1);
        }
    }
}
