//! Per-store statistics.
//!
//! Two consumers:
//!
//! * The SPLENDID-style baseline's *preprocessing* pass builds a VoID-like
//!   summary per endpoint from these statistics (predicate → triple count,
//!   distinct subjects/objects).
//! * The HiBISCuS-style baseline collects, per predicate, the set of
//!   *authorities* (URI prefixes) of subjects and objects.
//!
//! Lusail itself deliberately does **not** use precollected statistics — it
//! probes endpoints with `COUNT` queries at run time (Section 4.1 of the
//! paper). Those probes are served by the evaluator, not by this module.

use crate::store::Store;
use lusail_rdf::fxhash::{FxHashMap, FxHashSet};
use lusail_rdf::Term;

/// VoID-style statistics for one store.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Total triples.
    pub triples: usize,
    /// Per-predicate statistics keyed by predicate IRI.
    pub predicates: FxHashMap<String, PredicateStats>,
}

/// Statistics for one predicate within a store.
#[derive(Debug, Clone, Default)]
pub struct PredicateStats {
    /// Number of triples with this predicate.
    pub count: usize,
    /// Number of distinct subjects.
    pub distinct_subjects: usize,
    /// Number of distinct objects.
    pub distinct_objects: usize,
    /// Authorities (scheme + host) of subject IRIs.
    pub subject_authorities: FxHashSet<String>,
    /// Authorities of object IRIs (empty entry set when objects are
    /// literals only).
    pub object_authorities: FxHashSet<String>,
}

impl StoreStats {
    /// Scan a store and collect its statistics. This models the paper's
    /// "preprocessing phase … dominated by the dataset size": it is a full
    /// pass over the data, and the benchmarks report its cost separately.
    pub fn collect(store: &Store) -> Self {
        let mut stats = StoreStats {
            triples: store.len(),
            predicates: FxHashMap::default(),
        };
        let mut subjects: FxHashMap<String, FxHashSet<u32>> = FxHashMap::default();
        let mut objects: FxHashMap<String, FxHashSet<u32>> = FxHashMap::default();
        for (s, p, o) in store.iter_ids() {
            let pred = match store.decode(p) {
                Term::Iri(iri) => iri.clone(),
                other => other.to_string(),
            };
            let entry = stats.predicates.entry(pred.clone()).or_default();
            entry.count += 1;
            subjects.entry(pred.clone()).or_default().insert(s);
            objects.entry(pred.clone()).or_default().insert(o);
            if let Some(auth) = store.decode(s).authority() {
                entry.subject_authorities.insert(auth.to_string());
            }
            if let Some(auth) = store.decode(o).authority() {
                entry.object_authorities.insert(auth.to_string());
            }
        }
        for (pred, set) in subjects {
            stats.predicates.get_mut(&pred).unwrap().distinct_subjects = set.len();
        }
        for (pred, set) in objects {
            stats.predicates.get_mut(&pred).unwrap().distinct_objects = set.len();
        }
        stats
    }

    /// Does this store contain any triple with the given predicate IRI?
    pub fn has_predicate(&self, iri: &str) -> bool {
        self.predicates.contains_key(iri)
    }

    /// The triple count for a predicate (0 when absent).
    pub fn predicate_count(&self, iri: &str) -> usize {
        self.predicates.get(iri).map_or(0, |p| p.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::{Graph, Term};

    fn sample() -> Store {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://a.org/s1"),
            Term::iri("http://x/p"),
            Term::iri("http://b.org/o1"),
        );
        g.add(
            Term::iri("http://a.org/s1"),
            Term::iri("http://x/p"),
            Term::iri("http://b.org/o2"),
        );
        g.add(
            Term::iri("http://a.org/s2"),
            Term::iri("http://x/q"),
            Term::literal("leaf"),
        );
        Store::from_graph(&g)
    }

    #[test]
    fn counts_and_distincts() {
        let stats = StoreStats::collect(&sample());
        assert_eq!(stats.triples, 3);
        assert_eq!(stats.predicate_count("http://x/p"), 2);
        let p = &stats.predicates["http://x/p"];
        assert_eq!(p.distinct_subjects, 1);
        assert_eq!(p.distinct_objects, 2);
        assert!(stats.has_predicate("http://x/q"));
        assert!(!stats.has_predicate("http://x/r"));
    }

    #[test]
    fn authorities() {
        let stats = StoreStats::collect(&sample());
        let p = &stats.predicates["http://x/p"];
        assert!(p.subject_authorities.contains("http://a.org"));
        assert!(p.object_authorities.contains("http://b.org"));
        let q = &stats.predicates["http://x/q"];
        assert!(q.object_authorities.is_empty()); // literal objects
    }
}
