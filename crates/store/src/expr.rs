//! SPARQL `FILTER` expression evaluation.
//!
//! Expressions evaluate over [`Term`] values with SPARQL's three-valued
//! logic approximated as `Option`: `None` is the SPARQL *error* value, and a
//! `FILTER` whose expression errors drops the row (per the spec).

use lusail_rdf::{vocab, Literal, Term};
use lusail_sparql::ast::{Expression, GraphPattern, Variable};

/// The value lattice of expression evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Bool(bool),
    Num(f64),
    Term(Term),
}

/// The binding environment an expression is evaluated in, plus a hook for
/// correlated `EXISTS` / `NOT EXISTS` evaluation (implemented by the
/// evaluator, which owns the store).
pub trait ExprContext {
    /// The current row's binding of `v`, if any.
    fn value_of(&self, v: &Variable) -> Option<Term>;
    /// Evaluate `EXISTS { pattern }` under the current row.
    fn exists(&mut self, pattern: &GraphPattern) -> bool;
}

/// Evaluate an expression to a [`Value`], or `None` on a SPARQL error.
pub fn eval(expr: &Expression, ctx: &mut dyn ExprContext) -> Option<Value> {
    use Expression::*;
    match expr {
        Var(v) => ctx.value_of(v).map(Value::Term),
        Term(t) => Some(Value::Term(t.clone())),
        And(a, b) => {
            // SPARQL logical-and with error propagation: if either side is
            // false the result is false even if the other errors.
            let ea = eval(a, ctx).and_then(ebv);
            let eb = eval(b, ctx).and_then(ebv);
            match (ea, eb) {
                (Some(false), _) | (_, Some(false)) => Some(Value::Bool(false)),
                (Some(true), Some(true)) => Some(Value::Bool(true)),
                _ => None,
            }
        }
        Or(a, b) => {
            let ea = eval(a, ctx).and_then(ebv);
            let eb = eval(b, ctx).and_then(ebv);
            match (ea, eb) {
                (Some(true), _) | (_, Some(true)) => Some(Value::Bool(true)),
                (Some(false), Some(false)) => Some(Value::Bool(false)),
                _ => None,
            }
        }
        Not(a) => {
            let v = eval(a, ctx).and_then(ebv)?;
            Some(Value::Bool(!v))
        }
        Eq(a, b) => compare(a, b, ctx, |o| o == std::cmp::Ordering::Equal, true),
        Ne(a, b) => compare(a, b, ctx, |o| o != std::cmp::Ordering::Equal, true),
        Lt(a, b) => compare(a, b, ctx, |o| o == std::cmp::Ordering::Less, false),
        Le(a, b) => compare(a, b, ctx, |o| o != std::cmp::Ordering::Greater, false),
        Gt(a, b) => compare(a, b, ctx, |o| o == std::cmp::Ordering::Greater, false),
        Ge(a, b) => compare(a, b, ctx, |o| o != std::cmp::Ordering::Less, false),
        Add(a, b) => arith(a, b, ctx, |x, y| x + y),
        Sub(a, b) => arith(a, b, ctx, |x, y| x - y),
        Mul(a, b) => arith(a, b, ctx, |x, y| x * y),
        Div(a, b) => {
            let x = numeric(eval(a, ctx)?)?;
            let y = numeric(eval(b, ctx)?)?;
            if y == 0.0 {
                None
            } else {
                Some(Value::Num(x / y))
            }
        }
        Bound(v) => Some(Value::Bool(ctx.value_of(v).is_some())),
        IsIri(a) => type_check(a, ctx, |t| t.is_iri()),
        IsLiteral(a) => type_check(a, ctx, |t| t.is_literal()),
        IsBlank(a) => type_check(a, ctx, |t| t.is_blank()),
        Str(a) => {
            let t = term_value(eval(a, ctx)?)?;
            let s = match t {
                lusail_rdf::Term::Iri(iri) => iri,
                lusail_rdf::Term::Literal(l) => l.lexical,
                lusail_rdf::Term::BlankNode(_) => return None,
            };
            Some(Value::Term(lusail_rdf::Term::literal(s)))
        }
        Lang(a) => {
            let t = term_value(eval(a, ctx)?)?;
            match t {
                lusail_rdf::Term::Literal(l) => Some(Value::Term(lusail_rdf::Term::literal(
                    l.language.unwrap_or_default(),
                ))),
                _ => None,
            }
        }
        Datatype(a) => {
            let t = term_value(eval(a, ctx)?)?;
            match t {
                lusail_rdf::Term::Literal(l) => {
                    let dt = l.datatype.unwrap_or_else(|| vocab::xsd::STRING.to_string());
                    Some(Value::Term(lusail_rdf::Term::iri(dt)))
                }
                _ => None,
            }
        }
        Regex(a, pattern, flags) => {
            let text = string_value(eval(a, ctx)?)?;
            let re = crate::regex_lite::Regex::new(pattern, flags).ok()?;
            Some(Value::Bool(re.is_match(&text)))
        }
        Contains(a, b) => {
            let hay = string_value(eval(a, ctx)?)?;
            let needle = string_value(eval(b, ctx)?)?;
            Some(Value::Bool(hay.contains(&needle)))
        }
        StrStarts(a, b) => {
            let hay = string_value(eval(a, ctx)?)?;
            let prefix = string_value(eval(b, ctx)?)?;
            Some(Value::Bool(hay.starts_with(&prefix)))
        }
        SameTerm(a, b) => {
            let x = term_value(eval(a, ctx)?)?;
            let y = term_value(eval(b, ctx)?)?;
            Some(Value::Bool(x == y))
        }
        Exists(p) => {
            let hit = ctx.exists(p);
            Some(Value::Bool(hit))
        }
        NotExists(p) => {
            let hit = ctx.exists(p);
            Some(Value::Bool(!hit))
        }
    }
}

/// Evaluate an expression and reduce it to its effective boolean value,
/// treating error as `false` (which is what `FILTER` does with rows).
pub fn eval_ebv(expr: &Expression, ctx: &mut dyn ExprContext) -> bool {
    eval(expr, ctx).and_then(ebv).unwrap_or(false)
}

/// SPARQL effective boolean value.
pub fn ebv(v: Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(b),
        Value::Num(n) => Some(n != 0.0 && !n.is_nan()),
        Value::Term(Term::Literal(l)) => {
            if l.datatype.as_deref() == Some(vocab::xsd::BOOLEAN) {
                Some(l.lexical == "true" || l.lexical == "1")
            } else if l.is_numeric() {
                l.as_f64().map(|n| n != 0.0 && !n.is_nan())
            } else {
                Some(!l.lexical.is_empty())
            }
        }
        Value::Term(_) => None,
    }
}

fn numeric(v: Value) -> Option<f64> {
    match v {
        Value::Num(n) => Some(n),
        Value::Bool(_) => None,
        Value::Term(Term::Literal(l)) => l.as_f64(),
        Value::Term(_) => None,
    }
}

/// Convert an evaluated [`Value`] to an RDF term (public counterpart of
/// the internal coercion, used by `BIND`).
pub fn value_to_term(v: Value) -> Option<Term> {
    term_value(v)
}

fn term_value(v: Value) -> Option<Term> {
    match v {
        Value::Term(t) => Some(t),
        Value::Bool(b) => Some(Term::Literal(Literal::typed(
            b.to_string(),
            vocab::xsd::BOOLEAN,
        ))),
        Value::Num(n) => Some(Term::Literal(Literal::double(n))),
    }
}

fn string_value(v: Value) -> Option<String> {
    match term_value(v)? {
        Term::Literal(l) => Some(l.lexical),
        Term::Iri(iri) => Some(iri),
        Term::BlankNode(_) => None,
    }
}

fn type_check(
    a: &Expression,
    ctx: &mut dyn ExprContext,
    pred: impl Fn(&Term) -> bool,
) -> Option<Value> {
    let t = term_value(eval(a, ctx)?)?;
    Some(Value::Bool(pred(&t)))
}

fn arith(
    a: &Expression,
    b: &Expression,
    ctx: &mut dyn ExprContext,
    op: impl Fn(f64, f64) -> f64,
) -> Option<Value> {
    let x = numeric(eval(a, ctx)?)?;
    let y = numeric(eval(b, ctx)?)?;
    Some(Value::Num(op(x, y)))
}

/// SPARQL value comparison. Numeric if both sides are numeric; otherwise
/// both literals compare by lexical form; IRIs compare by string (an
/// extension the benchmarks rely on for `=`/`!=` only — for order
/// comparisons on non-literals we return an error unless `allow_any_eq`).
fn compare(
    a: &Expression,
    b: &Expression,
    ctx: &mut dyn ExprContext,
    test: impl Fn(std::cmp::Ordering) -> bool,
    allow_any_eq: bool,
) -> Option<Value> {
    let x = eval(a, ctx)?;
    let y = eval(b, ctx)?;
    if let (Some(nx), Some(ny)) = (numeric(x.clone()), numeric(y.clone())) {
        return nx.partial_cmp(&ny).map(|o| Value::Bool(test(o)));
    }
    let tx = term_value(x)?;
    let ty = term_value(y)?;
    match (&tx, &ty) {
        (Term::Literal(lx), Term::Literal(ly)) => {
            Some(Value::Bool(test(lx.lexical.cmp(&ly.lexical))))
        }
        _ if allow_any_eq => Some(Value::Bool(test(tx.cmp(&ty)))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_sparql::parse_query;
    use std::collections::HashMap;

    struct MapCtx(HashMap<String, Term>);

    impl ExprContext for MapCtx {
        fn value_of(&self, v: &Variable) -> Option<Term> {
            self.0.get(v.name()).cloned()
        }
        fn exists(&mut self, _pattern: &GraphPattern) -> bool {
            false
        }
    }

    /// Parse `FILTER(<e>)` out of a wrapper query to get an Expression.
    fn expr(e: &str) -> Expression {
        let q = parse_query(&format!("SELECT ?x WHERE {{ ?x ?p ?o . FILTER({e}) }}")).unwrap();
        match q.pattern() {
            GraphPattern::Filter(_, ex) => ex.clone(),
            other => panic!("unexpected {other:?}"),
        }
    }

    fn ctx(pairs: &[(&str, Term)]) -> MapCtx {
        MapCtx(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn numeric_comparisons() {
        let mut c = ctx(&[("v", Term::integer(5))]);
        assert!(eval_ebv(&expr("?v > 3"), &mut c));
        assert!(eval_ebv(&expr("?v <= 5"), &mut c));
        assert!(!eval_ebv(&expr("?v = 4"), &mut c));
        assert!(eval_ebv(&expr("?v != 4"), &mut c));
        assert!(eval_ebv(&expr("(?v + 1) * 2 = 12"), &mut c));
        assert!(eval_ebv(&expr("?v / 2 = 2.5"), &mut c));
    }

    #[test]
    fn division_by_zero_errors_to_false() {
        let mut c = ctx(&[("v", Term::integer(5))]);
        assert!(!eval_ebv(&expr("?v / 0 = 1"), &mut c));
    }

    #[test]
    fn string_and_term_comparisons() {
        let mut c = ctx(&[("n", Term::literal("abc")), ("u", Term::iri("http://x/a"))]);
        assert!(eval_ebv(&expr("?n = \"abc\""), &mut c));
        assert!(eval_ebv(&expr("?n < \"abd\""), &mut c));
        assert!(eval_ebv(&expr("?u = <http://x/a>"), &mut c));
        assert!(eval_ebv(&expr("?u != <http://x/b>"), &mut c));
    }

    #[test]
    fn logic_with_unbound_vars() {
        let mut c = ctx(&[("v", Term::integer(1))]);
        // ?missing errors; AND with a false side is still false…
        assert!(!eval_ebv(&expr("?v = 0 && ?missing = 1"), &mut c));
        // …and OR with a true side is still true.
        assert!(eval_ebv(&expr("?v = 1 || ?missing = 1"), &mut c));
        // Pure error yields false under FILTER semantics.
        assert!(!eval_ebv(&expr("?missing = 1"), &mut c));
        assert!(eval_ebv(&expr("!BOUND(?missing)"), &mut c));
        assert!(eval_ebv(&expr("BOUND(?v)"), &mut c));
    }

    #[test]
    fn type_predicates_and_accessors() {
        let mut c = ctx(&[
            ("u", Term::iri("http://x/a")),
            ("l", Term::Literal(Literal::lang("ciao", "it"))),
            ("b", Term::bnode("n")),
        ]);
        assert!(eval_ebv(&expr("ISIRI(?u)"), &mut c));
        assert!(eval_ebv(&expr("ISLITERAL(?l)"), &mut c));
        assert!(eval_ebv(&expr("ISBLANK(?b)"), &mut c));
        assert!(eval_ebv(&expr("STR(?u) = \"http://x/a\""), &mut c));
        assert!(eval_ebv(&expr("LANG(?l) = \"it\""), &mut c));
        assert!(eval_ebv(&expr("SAMETERM(?u, ?u)"), &mut c));
        assert!(!eval_ebv(&expr("SAMETERM(?u, ?l)"), &mut c));
    }

    #[test]
    fn datatype_accessor() {
        let mut c = ctx(&[("i", Term::integer(3)), ("s", Term::literal("x"))]);
        assert!(eval_ebv(
            &expr("DATATYPE(?i) = <http://www.w3.org/2001/XMLSchema#integer>"),
            &mut c
        ));
        assert!(eval_ebv(
            &expr("DATATYPE(?s) = <http://www.w3.org/2001/XMLSchema#string>"),
            &mut c
        ));
    }

    #[test]
    fn regex_contains_strstarts() {
        let mut c = ctx(&[("n", Term::literal("Albert Einstein"))]);
        assert!(eval_ebv(&expr("REGEX(?n, \"^Alb\")"), &mut c));
        assert!(eval_ebv(&expr("REGEX(?n, \"^alb\", \"i\")"), &mut c));
        assert!(!eval_ebv(&expr("REGEX(?n, \"^bert\")"), &mut c));
        assert!(eval_ebv(&expr("CONTAINS(?n, \"Ein\")"), &mut c));
        assert!(eval_ebv(&expr("STRSTARTS(?n, \"Albert\")"), &mut c));
        assert!(!eval_ebv(&expr("STRSTARTS(?n, \"Einstein\")"), &mut c));
    }

    #[test]
    fn ebv_of_literals() {
        assert_eq!(ebv(Value::Term(Term::literal(""))), Some(false));
        assert_eq!(ebv(Value::Term(Term::literal("x"))), Some(true));
        assert_eq!(ebv(Value::Term(Term::integer(0))), Some(false));
        assert_eq!(ebv(Value::Term(Term::integer(7))), Some(true));
        assert_eq!(ebv(Value::Term(Term::iri("http://x"))), None);
        assert_eq!(
            ebv(Value::Term(Term::Literal(Literal::typed(
                "true",
                vocab::xsd::BOOLEAN
            )))),
            Some(true)
        );
    }
}
