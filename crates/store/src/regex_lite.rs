//! A tiny regex engine for SPARQL `REGEX`.
//!
//! Supports the subset that federated-benchmark queries actually use:
//! anchors (`^`, `$`), `.`, `*`, `+`, `?`, character classes (`[abc]`,
//! `[a-z]`, `[^…]`), escaped metacharacters, and the `i` (case-insensitive)
//! flag. Unanchored patterns match anywhere in the text, per SPARQL/XPath
//! semantics. Implemented as a straightforward backtracking matcher —
//! patterns in the workloads are tiny, so pathological backtracking is not
//! a concern here.

/// A compiled pattern.
#[derive(Debug, Clone)]
pub struct Regex {
    nodes: Vec<Node>,
    anchored_start: bool,
    anchored_end: bool,
    case_insensitive: bool,
}

#[derive(Debug, Clone)]
enum Node {
    Char(char),
    Any,
    Class {
        negated: bool,
        items: Vec<ClassItem>,
    },
    Star(Box<Node>),
    Plus(Box<Node>),
    Opt(Box<Node>),
}

#[derive(Debug, Clone)]
enum ClassItem {
    Char(char),
    Range(char, char),
}

/// A pattern compilation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex error: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

impl Regex {
    /// Compile `pattern` with SPARQL-style `flags` (only `i` is supported;
    /// other flags are ignored).
    pub fn new(pattern: &str, flags: &str) -> Result<Self, RegexError> {
        let case_insensitive = flags.contains('i');
        let mut chars: Vec<char> = pattern.chars().collect();
        let anchored_start = chars.first() == Some(&'^');
        if anchored_start {
            chars.remove(0);
        }
        let anchored_end = chars.last() == Some(&'$') && !ends_with_escaped_dollar(&chars);
        if anchored_end {
            chars.pop();
        }
        let mut nodes = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let base = match chars[i] {
                '.' => {
                    i += 1;
                    Node::Any
                }
                '\\' => {
                    i += 1;
                    if i >= chars.len() {
                        return Err(RegexError("dangling escape".into()));
                    }
                    let c = chars[i];
                    i += 1;
                    Node::Char(c)
                }
                '[' => {
                    i += 1;
                    let mut items = Vec::new();
                    let negated = chars.get(i) == Some(&'^');
                    if negated {
                        i += 1;
                    }
                    let mut closed = false;
                    while i < chars.len() {
                        if chars[i] == ']' {
                            i += 1;
                            closed = true;
                            break;
                        }
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            *chars
                                .get(i)
                                .ok_or_else(|| RegexError("dangling escape".into()))?
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']')
                        {
                            let hi = chars[i + 1];
                            items.push(ClassItem::Range(lo, hi));
                            i += 2;
                        } else {
                            items.push(ClassItem::Char(lo));
                        }
                    }
                    if !closed {
                        return Err(RegexError("unterminated character class".into()));
                    }
                    Node::Class { negated, items }
                }
                '*' | '+' | '?' => {
                    return Err(RegexError("quantifier with nothing to repeat".into()))
                }
                c => {
                    i += 1;
                    Node::Char(c)
                }
            };
            let node = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    Node::Star(Box::new(base))
                }
                Some('+') => {
                    i += 1;
                    Node::Plus(Box::new(base))
                }
                Some('?') => {
                    i += 1;
                    Node::Opt(Box::new(base))
                }
                _ => base,
            };
            nodes.push(node);
        }
        Ok(Regex {
            nodes,
            anchored_start,
            anchored_end,
            case_insensitive,
        })
    }

    /// Does the pattern match anywhere in `text` (or at the anchored
    /// positions)?
    pub fn is_match(&self, text: &str) -> bool {
        let chars: Vec<char> = if self.case_insensitive {
            text.chars().flat_map(|c| c.to_lowercase()).collect()
        } else {
            text.chars().collect()
        };
        let starts: Vec<usize> = if self.anchored_start {
            vec![0]
        } else {
            (0..=chars.len()).collect()
        };
        for start in starts {
            if self.match_here(&chars, start, 0) {
                return true;
            }
        }
        false
    }

    fn match_here(&self, text: &[char], pos: usize, node_idx: usize) -> bool {
        if node_idx == self.nodes.len() {
            return !self.anchored_end || pos == text.len();
        }
        match &self.nodes[node_idx] {
            Node::Star(inner) => {
                // Greedy with backtracking.
                let mut reach = pos;
                while reach < text.len() && self.single(inner, text[reach]) {
                    reach += 1;
                }
                loop {
                    if self.match_here(text, reach, node_idx + 1) {
                        return true;
                    }
                    if reach == pos {
                        return false;
                    }
                    reach -= 1;
                }
            }
            Node::Plus(inner) => {
                if pos >= text.len() || !self.single(inner, text[pos]) {
                    return false;
                }
                let mut reach = pos + 1;
                while reach < text.len() && self.single(inner, text[reach]) {
                    reach += 1;
                }
                loop {
                    if self.match_here(text, reach, node_idx + 1) {
                        return true;
                    }
                    if reach == pos + 1 {
                        return false;
                    }
                    reach -= 1;
                }
            }
            Node::Opt(inner) => {
                if pos < text.len()
                    && self.single(inner, text[pos])
                    && self.match_here(text, pos + 1, node_idx + 1)
                {
                    return true;
                }
                self.match_here(text, pos, node_idx + 1)
            }
            simple => {
                pos < text.len()
                    && self.single(simple, text[pos])
                    && self.match_here(text, pos + 1, node_idx + 1)
            }
        }
    }

    fn single(&self, node: &Node, c: char) -> bool {
        let norm = |x: char| {
            if self.case_insensitive {
                x.to_lowercase().next().unwrap_or(x)
            } else {
                x
            }
        };
        match node {
            Node::Char(p) => norm(*p) == c,
            Node::Any => true,
            Node::Class { negated, items } => {
                let hit = items.iter().any(|item| match item {
                    ClassItem::Char(p) => norm(*p) == c,
                    ClassItem::Range(lo, hi) => (norm(*lo)..=norm(*hi)).contains(&c),
                });
                hit != *negated
            }
            Node::Star(_) | Node::Plus(_) | Node::Opt(_) => unreachable!("nested quantifier"),
        }
    }
}

fn ends_with_escaped_dollar(chars: &[char]) -> bool {
    chars.len() >= 2 && chars[chars.len() - 2] == '\\' && chars[chars.len() - 1] == '$'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, flags: &str, text: &str) -> bool {
        Regex::new(pat, flags).unwrap().is_match(text)
    }

    #[test]
    fn literal_substring() {
        assert!(m("bc", "", "abcd"));
        assert!(!m("bd", "", "abcd"));
    }

    #[test]
    fn anchors() {
        assert!(m("^ab", "", "abcd"));
        assert!(!m("^bc", "", "abcd"));
        assert!(m("cd$", "", "abcd"));
        assert!(!m("bc$", "", "abcd"));
        assert!(m("^abcd$", "", "abcd"));
        assert!(!m("^abcd$", "", "abcde"));
    }

    #[test]
    fn case_insensitive_flag() {
        assert!(m("^AbC", "i", "abcx"));
        assert!(!m("^AbC", "", "abcx"));
    }

    #[test]
    fn dot_and_quantifiers() {
        assert!(m("a.c", "", "xabcx"));
        assert!(m("ab*c", "", "ac"));
        assert!(m("ab*c", "", "abbbc"));
        assert!(m("ab+c", "", "abbc"));
        assert!(!m("ab+c", "", "ac"));
        assert!(m("ab?c", "", "ac"));
        assert!(m("ab?c", "", "abc"));
        assert!(m("a.*d", "", "a-x-y-d"));
    }

    #[test]
    fn classes() {
        assert!(m("[abc]x", "", "zbx"));
        assert!(!m("[abc]x", "", "zdx"));
        assert!(m("[a-f]9", "", "e9"));
        assert!(m("[^0-9]z", "", "az"));
        assert!(!m("[^0-9]z", "", "5z"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"a\.b", "", "xa.bx"));
        assert!(!m(r"a\.b", "", "xaxbx"));
        assert!(m(r"\[x\]", "", "[x]"));
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::new("*a", "").is_err());
        assert!(Regex::new("[abc", "").is_err());
        assert!(Regex::new("a\\", "").is_err());
    }

    #[test]
    fn empty_pattern_matches_everything() {
        assert!(m("", "", ""));
        assert!(m("", "", "anything"));
        assert!(m("^$", "", ""));
        assert!(!m("^$", "", "x"));
    }
}
