//! # lusail-baselines
//!
//! The three state-of-the-art federated SPARQL engines Lusail is compared
//! against in the paper's evaluation (Section 5):
//!
//! * [`FedX`] — index-free. Source selection by `ASK` probes
//!   (cached), *exclusive groups* for triple patterns answerable by exactly
//!   one endpoint, and nested-loop **bound joins** that evaluate the query
//!   one triple pattern (or group) at a time, shipping blocks of bindings
//!   to every relevant endpoint. This is the schema-only decomposition the
//!   paper contrasts with LADE: when endpoints share a schema, no exclusive
//!   groups form and the number of remote requests explodes.
//! * [`Splendid`] — index-based. A preprocessing pass
//!   collects VoID-style statistics from every endpoint (its cost is what
//!   Table "Data Preprocessing Cost" in §5.1 reports); source selection and
//!   join planning use the index.
//! * [`HiBiscus`] — an add-on over FedX that prunes
//!   sources using per-predicate URI *authority* summaries, as in the
//!   ESWC'14 paper.
//!
//! All three implement [`FederatedEngine`], as does
//! [`lusail_core::LusailEngine`], so the benchmark harness treats every
//! system uniformly.

pub mod common;
pub mod fedx;
pub mod hibiscus;
pub mod splendid;

pub use common::FederatedEngine;
pub use fedx::{FedX, FedXConfig};
pub use hibiscus::HiBiscus;
pub use splendid::{Splendid, VoidIndex};
