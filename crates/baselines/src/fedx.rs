//! A faithful re-implementation of FedX's execution strategy
//! (Schwarte et al., ISWC 2011), the index-free baseline of the paper.
//!
//! FedX performs source selection with cached `ASK` probes, forms
//! *exclusive groups* from triple patterns whose only relevant endpoint is
//! the same single source, orders the resulting evaluation units with a
//! variable-counting heuristic, and executes them as a nested-loop bound
//! join: the current bindings are shipped to every relevant endpoint in
//! blocks (FedX's default block size is 15 bindings).
//!
//! When endpoints share a schema — LUBM's universities, or any benchmark
//! with replicated predicates — *no* exclusive groups form, every pattern
//! is relevant everywhere, and the number of remote requests scales with
//! `bindings / 15 × endpoints` per join step. That request explosion is
//! the behaviour Lusail's locality-aware decomposition removes.

use crate::common::{
    apply_filter, connected_pattern_components, execute_groups, finalize_select, union_relations,
    ExecOptions, FederatedEngine, GroupPlan,
};
use lusail_core::cache::QueryCache;
use lusail_core::normalize::{normalize, ConjBranch};
use lusail_core::source::select_sources;
use lusail_core::{EngineError, RunContext};
use lusail_federation::{Deadline, EndpointId, Federation, RequestHandler};
use lusail_sparql::ast::{
    Expression, Projection, Query, QueryForm, SelectQuery, TriplePattern, Variable,
};
use lusail_sparql::solution::Relation;
use std::time::{Duration, Instant};

/// FedX configuration.
#[derive(Debug, Clone)]
pub struct FedXConfig {
    /// Bindings shipped per bound-join block (FedX ships 15).
    pub bind_block_size: usize,
    /// Per-query time limit.
    pub timeout: Option<Duration>,
    /// Worker threads (defaults to core count, min 4).
    pub threads: Option<usize>,
}

impl Default for FedXConfig {
    fn default() -> Self {
        FedXConfig {
            bind_block_size: 15,
            timeout: None,
            threads: None,
        }
    }
}

/// A source pruning hook: HiBISCuS narrows the `ASK`-selected sources of
/// each triple pattern using its authority summaries.
pub type SourcePruner =
    Box<dyn Fn(&TriplePattern, Vec<EndpointId>) -> Vec<EndpointId> + Send + Sync>;

/// The FedX engine.
pub struct FedX {
    federation: Federation,
    config: FedXConfig,
    cache: QueryCache,
    handler: RequestHandler,
    pruner: Option<SourcePruner>,
    name: &'static str,
}

impl FedX {
    /// A FedX engine over a federation.
    pub fn new(federation: Federation, config: FedXConfig) -> Self {
        let handler = match config.threads {
            Some(n) => RequestHandler::new(n),
            None => RequestHandler::per_core(),
        };
        FedX {
            federation,
            config,
            cache: QueryCache::new(),
            handler,
            pruner: None,
            name: "FedX",
        }
    }

    /// FedX with a source-pruning add-on (used by HiBISCuS).
    pub(crate) fn with_pruner(
        federation: Federation,
        config: FedXConfig,
        pruner: SourcePruner,
        name: &'static str,
    ) -> Self {
        let mut engine = FedX::new(federation, config);
        engine.pruner = Some(pruner);
        engine.name = name;
        engine
    }

    /// The underlying federation.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    fn run(&self, query: &Query) -> Result<Relation, EngineError> {
        let start = Instant::now();
        let deadline = self.config.timeout.map(|t| start + t);
        let select_view: SelectQuery = match &query.form {
            QueryForm::Select(s) => s.clone(),
            QueryForm::Ask(p) => {
                let mut s = SelectQuery::new(Projection::All, p.clone());
                s.limit = Some(1);
                s
            }
        };
        let branches = normalize(&select_view.pattern)?;
        let mut combined: Option<Relation> = None;
        for branch in &branches {
            let rel = self.run_branch(branch, deadline)?;
            combined = Some(match combined {
                None => rel,
                Some(acc) => union_relations(acc, rel),
            });
        }
        Ok(finalize_select(&select_view, combined.unwrap_or_default()))
    }

    fn run_branch(
        &self,
        branch: &ConjBranch,
        deadline: Option<Instant>,
    ) -> Result<Relation, EngineError> {
        // FedX cannot bridge disconnected required subgraphs through a
        // filter variable (the paper's C5 / B5 / B6).
        if connected_pattern_components(&branch.patterns) > 1 {
            return Err(EngineError::Unsupported(
                "disjoint subgraphs joined by a filter variable".into(),
            ));
        }

        // The baselines have no partial mode: probes run fail-fast under
        // the same absolute deadline as the rest of the query.
        let ctx = RunContext::fail_fast(
            deadline.map(Deadline::at).unwrap_or_else(Deadline::none),
            self.config.timeout,
        );
        let mut sources = select_sources(
            &self.federation,
            &self.handler,
            Some(&self.cache),
            &branch.patterns,
            &ctx,
        )?;
        if let Some(pruner) = &self.pruner {
            for (i, tp) in branch.patterns.iter().enumerate() {
                sources[i] = pruner(tp, std::mem::take(&mut sources[i]));
            }
        }

        let mut groups = build_groups(&branch.patterns, &sources, &branch.filters);
        order_groups(&mut groups);

        let opts = ExecOptions {
            block_size: self.config.bind_block_size,
            hash_join_threshold: None,
            timeout: self.config.timeout,
        };
        let mut rel = execute_groups(&self.federation, &self.handler, &groups, deadline, &opts)?;

        // OPTIONAL groups: bound-evaluate at their sources, left-join.
        for block in &branch.optionals {
            let mut opt_sources = select_sources(
                &self.federation,
                &self.handler,
                Some(&self.cache),
                &block.patterns,
                &ctx,
            )?;
            if let Some(pruner) = &self.pruner {
                for (i, tp) in block.patterns.iter().enumerate() {
                    opt_sources[i] = pruner(tp, std::mem::take(&mut opt_sources[i]));
                }
            }
            let merged: Vec<EndpointId> = {
                let mut s: Vec<EndpointId> = opt_sources.iter().flatten().copied().collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            let group = GroupPlan {
                patterns: block.patterns.clone(),
                filters: block.filters.clone(),
                sources: merged,
            };
            let opt_rel = execute_groups(
                &self.federation,
                &self.handler,
                std::slice::from_ref(&group),
                deadline,
                &opts,
            )?;
            rel = rel.left_join(&opt_rel);
        }

        for (vars, rows) in &branch.values {
            rel = rel.join(&Relation::from_rows(vars.clone(), rows.clone()));
        }
        // MINUS groups: evaluate at their sources, anti-join.
        for block in &branch.minuses {
            let minus_sources = select_sources(
                &self.federation,
                &self.handler,
                Some(&self.cache),
                &block.patterns,
                &ctx,
            )?;
            let merged: Vec<EndpointId> = {
                let mut s: Vec<EndpointId> = minus_sources.iter().flatten().copied().collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            let group = GroupPlan {
                patterns: block.patterns.clone(),
                filters: block.filters.clone(),
                sources: merged,
            };
            let minus_rel = execute_groups(
                &self.federation,
                &self.handler,
                std::slice::from_ref(&group),
                deadline,
                &opts,
            )?;
            rel = rel.minus(&minus_rel);
        }
        for (expr, var) in &branch.binds {
            rel = crate::common::apply_bind(rel, expr, var);
        }
        // Residual filters (those whose variables span groups).
        for f in residual_filters(&branch.filters, &groups) {
            rel = apply_filter(rel, f);
        }
        Ok(rel)
    }
}

impl FederatedEngine for FedX {
    fn name(&self) -> &str {
        self.name
    }

    fn execute(&self, query: &Query) -> Result<Relation, EngineError> {
        self.run(query)
    }
}

/// FedX grouping: triple patterns whose relevant source set is the *same
/// single endpoint* form one exclusive group; everything else is a
/// singleton unit sent to all its sources.
fn build_groups(
    patterns: &[TriplePattern],
    sources: &[Vec<EndpointId>],
    filters: &[Expression],
) -> Vec<GroupPlan> {
    let mut groups: Vec<GroupPlan> = Vec::new();
    for (i, tp) in patterns.iter().enumerate() {
        let exclusive = sources[i].len() == 1;
        let existing = exclusive
            .then(|| {
                groups
                    .iter()
                    .position(|g| g.sources == sources[i] && g.sources.len() == 1)
            })
            .flatten();
        match existing {
            Some(g) => groups[g].patterns.push(tp.clone()),
            None => groups.push(GroupPlan {
                patterns: vec![tp.clone()],
                filters: Vec::new(),
                sources: sources[i].clone(),
            }),
        }
    }
    // Push filters fully covered by one group.
    for f in filters {
        if matches!(f, Expression::Exists(_) | Expression::NotExists(_)) {
            continue;
        }
        let fvars = f.variables();
        if fvars.is_empty() {
            continue;
        }
        for g in &mut groups {
            let gvars = g.variables();
            if fvars.iter().all(|v| gvars.contains(v)) {
                g.filters.push(f.clone());
            }
        }
    }
    groups
}

/// Filters not pushed into any group.
fn residual_filters<'a>(filters: &'a [Expression], groups: &[GroupPlan]) -> Vec<&'a Expression> {
    filters
        .iter()
        .filter(|f| !groups.iter().any(|g| g.filters.contains(f)))
        .collect()
}

/// FedX's variable-counting join ordering: repeatedly pick the unit with
/// the fewest *free* (unbound) variables, breaking ties toward exclusive
/// groups and more constants.
fn order_groups(groups: &mut Vec<GroupPlan>) {
    let mut ordered: Vec<GroupPlan> = Vec::with_capacity(groups.len());
    let mut bound: Vec<Variable> = Vec::new();
    while !groups.is_empty() {
        let (idx, _) = groups
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let free = g.variables().iter().filter(|v| !bound.contains(v)).count();
                let constants: usize = g.patterns.iter().map(|tp| 3 - tp.free_slots()).sum();
                let exclusive = usize::from(g.sources.len() != 1);
                // Lexicographic score: fewer free vars, then exclusive,
                // then more constants, then fewer sources.
                (
                    i,
                    (free, exclusive, usize::MAX - constants, g.sources.len()),
                )
            })
            .min_by_key(|(_, score)| *score)
            .unwrap();
        let g = groups.remove(idx);
        bound.extend(g.variables());
        ordered.push(g);
    }
    *groups = ordered;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::{NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
    use lusail_rdf::{vocab, Graph, Term};
    use lusail_sparql::parse_query;
    use lusail_store::Store;
    use std::sync::Arc;

    /// Two-endpoint LUBM-style federation with a shared schema and an
    /// interlink (same data as the core engine tests).
    fn federation() -> Federation {
        let ub = |l: &str| Term::iri(format!("{}{l}", vocab::ub::NS));
        let u1 = |l: &str| Term::iri(format!("http://univ1.example.org/{l}"));
        let u2 = |l: &str| Term::iri(format!("http://univ2.example.org/{l}"));
        let mut g1 = Graph::new();
        g1.add_type(u1("MIT"), vocab::ub::UNIVERSITY);
        g1.add(u1("MIT"), ub("address"), Term::literal("XXX"));
        g1.add_type(u1("Bob"), vocab::ub::GRADUATE_STUDENT);
        g1.add(u1("Bob"), ub("advisor"), u1("Ann"));
        g1.add(u1("Ann"), ub("PhDDegreeFrom"), u1("MIT"));
        let mut g2 = Graph::new();
        g2.add_type(u2("CMU"), vocab::ub::UNIVERSITY);
        g2.add(u2("CMU"), ub("address"), Term::literal("CCCC"));
        g2.add_type(u2("Kim"), vocab::ub::GRADUATE_STUDENT);
        g2.add(u2("Kim"), ub("advisor"), u2("Tim"));
        g2.add(u2("Tim"), ub("PhDDegreeFrom"), u1("MIT"));
        Federation::new(vec![
            Arc::new(SimulatedEndpoint::new(
                "univ1",
                Store::from_graph(&g1),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
            Arc::new(SimulatedEndpoint::new(
                "univ2",
                Store::from_graph(&g2),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
        ])
    }

    #[test]
    fn answers_cross_endpoint_join() {
        let fedx = FedX::new(federation(), FedXConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?p ?u ?a WHERE {
                 ?p ub:PhDDegreeFrom ?u .
                 ?u ub:address ?a }"#,
        )
        .unwrap();
        let rel = fedx.execute(&q).unwrap();
        // Ann→MIT→XXX and Tim→MIT→XXX (the interlink).
        assert_eq!(rel.len(), 2);
        assert!(rel
            .rows()
            .iter()
            .any(|r| r[0] == Some(Term::iri("http://univ2.example.org/Tim"))));
    }

    #[test]
    fn matches_lusail_results() {
        use lusail_core::{LusailConfig, LusailEngine};
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
               SELECT ?s ?p ?u WHERE {
                 ?s rdf:type ub:GraduateStudent .
                 ?s ub:advisor ?p .
                 ?p ub:PhDDegreeFrom ?u }"#,
        )
        .unwrap();
        let fedx = FedX::new(federation(), FedXConfig::default());
        let lusail = LusailEngine::new(federation(), LusailConfig::default());
        let mut r1 = fedx.execute(&q).unwrap();
        let mut r2 = lusail.execute(&q).unwrap();
        r1.rows_mut().sort();
        r2.rows_mut().sort();
        assert_eq!(r1.len(), 2);
        assert_eq!(r1.rows(), r2.rows());
    }

    #[test]
    fn sends_more_requests_than_lusail() {
        use lusail_core::{LusailConfig, LusailEngine};
        // A join over replicated predicates: FedX bound-joins TP by TP.
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?s ?p ?u ?a WHERE {
                 ?s ub:advisor ?p .
                 ?p ub:PhDDegreeFrom ?u .
                 ?u ub:address ?a }"#,
        )
        .unwrap();
        let fedx = FedX::new(federation(), FedXConfig::default());
        fedx.execute(&q).unwrap();
        let fedx_requests = fedx.federation().total_traffic().requests;

        let lusail = LusailEngine::new(federation(), LusailConfig::default());
        lusail.execute(&q).unwrap();
        let first = lusail.federation().total_traffic().requests;
        // Lusail's second (cached) run is the fair comparison for repeated
        // workloads; but even the first should not exceed FedX by much on
        // this tiny example. The paper's claim concerns scaling, tested in
        // the benches; here we just sanity-check both count requests.
        assert!(fedx_requests > 0 && first > 0);
    }

    #[test]
    fn rejects_disconnected_subgraphs() {
        let fedx = FedX::new(federation(), FedXConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT * WHERE {
                 ?a ub:address ?x . ?b ub:PhDDegreeFrom ?c . FILTER(?x != ?c) }"#,
        )
        .unwrap();
        match fedx.execute(&q) {
            Err(EngineError::Unsupported(_)) => {}
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn optional_and_filter() {
        let fedx = FedX::new(federation(), FedXConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?p ?u ?a WHERE {
                 ?p ub:PhDDegreeFrom ?u
                 OPTIONAL { ?u ub:address ?a }
                 FILTER(BOUND(?a)) }"#,
        )
        .unwrap();
        let rel = fedx.execute(&q).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn exclusive_groups_form_for_unique_predicates() {
        // Predicate only at univ1 → its patterns group exclusively.
        let ub = |l: &str| format!("{}{l}", vocab::ub::NS);
        let pats = vec![
            TriplePattern::new(
                lusail_sparql::ast::TermPattern::var("u"),
                lusail_sparql::ast::TermPattern::iri(ub("address")),
                lusail_sparql::ast::TermPattern::var("a"),
            ),
            TriplePattern::new(
                lusail_sparql::ast::TermPattern::var("u"),
                lusail_sparql::ast::TermPattern::iri(ub("name")),
                lusail_sparql::ast::TermPattern::var("n"),
            ),
        ];
        let sources = vec![vec![0], vec![0]];
        let groups = build_groups(&pats, &sources, &[]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].patterns.len(), 2);
        // Mixed sources stay separate.
        let sources = vec![vec![0], vec![0, 1]];
        let groups = build_groups(&pats, &sources, &[]);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn timeout_fires() {
        let fedx = FedX::new(
            federation(),
            FedXConfig {
                timeout: Some(Duration::ZERO),
                ..Default::default()
            },
        );
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?p ?u WHERE { ?p ub:PhDDegreeFrom ?u . ?u ub:address ?a }"#,
        )
        .unwrap();
        assert!(matches!(fedx.execute(&q), Err(EngineError::Timeout(_))));
    }
}
