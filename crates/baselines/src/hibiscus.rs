//! HiBISCuS-style source pruning over FedX (Saleem & Ngonga Ngomo,
//! ESWC 2014), used as in the paper: "HiBISCuS is an add-on to improve
//! performance; we use it on top of FedX".
//!
//! HiBISCuS summarizes, per endpoint and per predicate, the set of URI
//! *authorities* (scheme + host) of subjects and objects. During source
//! selection it prunes endpoints whose summaries cannot contribute:
//!
//! * a pattern with a constant subject/object needs an endpoint whose
//!   subject/object authority set contains that constant's authority;
//! * for a join variable occurring as object in one pattern and subject in
//!   another, an endpoint is relevant to the object side only if its
//!   object authorities intersect the union of subject authorities the
//!   other side's endpoints can produce (and vice versa). We implement the
//!   constant-based pruning, which is the part that fires on the
//!   benchmarks' heterogeneous datasets.

use crate::common::FederatedEngine;
use crate::fedx::{FedX, FedXConfig};
use lusail_core::EngineError;
use lusail_federation::{EndpointId, Federation};
use lusail_rdf::fxhash::FxHashMap;
use lusail_rdf::fxhash::FxHashSet;
use lusail_sparql::ast::{Query, TermPattern, TriplePattern};
use lusail_sparql::solution::Relation;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-endpoint authority summaries, built in a preprocessing pass.
#[derive(Debug, Default, Clone)]
struct AuthoritySummary {
    /// predicate IRI → subject authorities at this endpoint.
    subjects: FxHashMap<String, FxHashSet<String>>,
    /// predicate IRI → object authorities at this endpoint.
    objects: FxHashMap<String, FxHashSet<String>>,
}

/// The HiBISCuS engine: FedX plus authority-based source pruning.
pub struct HiBiscus {
    inner: FedX,
    build_time: Duration,
}

impl HiBiscus {
    /// Build the summaries (preprocessing) and wrap FedX with the pruner.
    pub fn new(federation: Federation, config: FedXConfig) -> Self {
        let start = Instant::now();
        let summaries: Vec<AuthoritySummary> = federation
            .iter()
            .map(|(_, ep)| match ep.collect_stats() {
                None => AuthoritySummary::default(),
                Some(stats) => {
                    let mut s = AuthoritySummary::default();
                    for (pred, pstats) in &stats.predicates {
                        s.subjects
                            .insert(pred.clone(), pstats.subject_authorities.clone());
                        s.objects
                            .insert(pred.clone(), pstats.object_authorities.clone());
                    }
                    s
                }
            })
            .collect();
        let build_time = start.elapsed();
        let summaries = Arc::new(summaries);
        let pruner = Box::new(move |tp: &TriplePattern, sources: Vec<EndpointId>| {
            prune(&summaries, tp, sources)
        });
        HiBiscus {
            inner: FedX::with_pruner(federation, config, pruner, "HiBISCuS"),
            build_time,
        }
    }

    /// The underlying federation.
    pub fn federation(&self) -> &Federation {
        self.inner.federation()
    }
}

fn prune(
    summaries: &[AuthoritySummary],
    tp: &TriplePattern,
    sources: Vec<EndpointId>,
) -> Vec<EndpointId> {
    let Some(pred) = tp.predicate.as_term().and_then(|t| t.as_iri()) else {
        return sources;
    };
    let subject_auth = match &tp.subject {
        TermPattern::Term(t) => t.authority().map(str::to_string),
        TermPattern::Var(_) => None,
    };
    let object_auth = match &tp.object {
        TermPattern::Term(t) => t.authority().map(str::to_string),
        TermPattern::Var(_) => None,
    };
    sources
        .into_iter()
        .filter(|&ep| {
            let s = &summaries[ep];
            if let Some(auth) = &subject_auth {
                match s.subjects.get(pred) {
                    Some(set) if set.contains(auth) => {}
                    // The predicate exists but never with this authority
                    // as subject → prune.
                    Some(_) => return false,
                    None => return false,
                }
            }
            if let Some(auth) = &object_auth {
                match s.objects.get(pred) {
                    Some(set) if set.contains(auth) => {}
                    Some(set) if set.is_empty() => {
                        // Literal-only objects: authority unknown, keep
                        // (cannot prove irrelevance).
                    }
                    Some(_) => return false,
                    None => return false,
                }
            }
            true
        })
        .collect()
}

impl FederatedEngine for HiBiscus {
    fn name(&self) -> &str {
        "HiBISCuS"
    }

    fn execute(&self, query: &Query) -> Result<Relation, EngineError> {
        self.inner.execute(query)
    }

    fn preprocessing_time(&self) -> Option<Duration> {
        Some(self.build_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::{NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
    use lusail_rdf::{vocab, Graph, Term};
    use lusail_sparql::parse_query;
    use lusail_store::Store;

    fn federation() -> Federation {
        let ub = |l: &str| Term::iri(format!("{}{l}", vocab::ub::NS));
        let u1 = |l: &str| Term::iri(format!("http://univ1.example.org/{l}"));
        let u2 = |l: &str| Term::iri(format!("http://univ2.example.org/{l}"));
        let mut g1 = Graph::new();
        g1.add(u1("MIT"), ub("address"), Term::literal("XXX"));
        g1.add(u1("Ann"), ub("PhDDegreeFrom"), u1("MIT"));
        let mut g2 = Graph::new();
        g2.add(u2("CMU"), ub("address"), Term::literal("CCCC"));
        g2.add(u2("Tim"), ub("PhDDegreeFrom"), u1("MIT"));
        Federation::new(vec![
            Arc::new(SimulatedEndpoint::new(
                "univ1",
                Store::from_graph(&g1),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
            Arc::new(SimulatedEndpoint::new(
                "univ2",
                Store::from_graph(&g2),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
        ])
    }

    #[test]
    fn produces_same_answers_as_fedx() {
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?p ?u ?a WHERE { ?p ub:PhDDegreeFrom ?u . ?u ub:address ?a }"#,
        )
        .unwrap();
        let hib = HiBiscus::new(federation(), FedXConfig::default());
        let fedx = FedX::new(federation(), FedXConfig::default());
        let mut r1 = hib.execute(&q).unwrap();
        let mut r2 = fedx.execute(&q).unwrap();
        r1.rows_mut().sort();
        r2.rows_mut().sort();
        assert_eq!(r1.rows(), r2.rows());
        assert_eq!(r1.len(), 2);
    }

    #[test]
    fn constant_subject_prunes_sources() {
        // ⟨univ2:Tim, PhDDegreeFrom, ?u⟩: subject authority univ2 → only
        // endpoint 1 survives pruning, so fewer requests than plain ASK
        // source selection would produce.
        let hib = HiBiscus::new(federation(), FedXConfig::default());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?u WHERE { <http://univ2.example.org/Tim> ub:PhDDegreeFrom ?u }"#,
        )
        .unwrap();
        let rel = hib.execute(&q).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn preprocessing_time_reported() {
        let hib = HiBiscus::new(federation(), FedXConfig::default());
        assert!(hib.preprocessing_time().is_some());
    }

    #[test]
    fn prune_respects_authorities() {
        let mut s0 = AuthoritySummary::default();
        s0.subjects
            .entry("http://x/p".into())
            .or_default()
            .insert("http://a.org".into());
        s0.objects.entry("http://x/p".into()).or_default();
        let summaries = vec![s0, AuthoritySummary::default()];
        let tp = TriplePattern::new(
            TermPattern::iri("http://a.org/s1"),
            TermPattern::iri("http://x/p"),
            TermPattern::var("o"),
        );
        // ep0 has the authority; ep1 lacks the predicate entirely.
        assert_eq!(prune(&summaries, &tp, vec![0, 1]), vec![0]);
        // Variable subject: no subject pruning → both kept.
        let tp2 = TriplePattern::new(
            TermPattern::var("s"),
            TermPattern::iri("http://x/p"),
            TermPattern::var("o"),
        );
        assert_eq!(prune(&summaries, &tp2, vec![0, 1]), vec![0, 1]);
    }
}
