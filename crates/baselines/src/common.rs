//! The engine-agnostic interface the benchmark harness drives, plus the
//! shared group-at-a-time executor both baselines are built on.

use lusail_core::{EngineError, LusailEngine};
use lusail_federation::{EndpointId, Federation, RequestHandler};
use lusail_rdf::Term;
use lusail_sparql::ast::{
    Expression, GraphPattern, Projection, Query, SelectQuery, TriplePattern, Variable,
};
use lusail_sparql::solution::Relation;
use lusail_store::expr::{eval_ebv, ExprContext};
use std::time::{Duration, Instant};

/// A federated SPARQL engine: Lusail or one of the baselines.
pub trait FederatedEngine {
    /// Display name used in benchmark tables.
    fn name(&self) -> &str;

    /// Execute a query against the engine's federation.
    fn execute(&self, query: &Query) -> Result<Relation, EngineError>;

    /// One-off preparation cost (index construction for the index-based
    /// systems). Index-free engines return `None`.
    fn preprocessing_time(&self) -> Option<std::time::Duration> {
        None
    }
}

impl FederatedEngine for LusailEngine {
    fn name(&self) -> &str {
        "Lusail"
    }

    fn execute(&self, query: &Query) -> Result<Relation, EngineError> {
        LusailEngine::execute(self, query)
    }
}

/// A bound-join payload: the shared variables and one block of their rows.
pub type BoundBlock<'a> = (&'a [Variable], &'a [Vec<Option<Term>>]);

/// One evaluation unit of a baseline plan: an exclusive group (one source)
/// or a single triple pattern (many sources).
#[derive(Debug, Clone)]
pub struct GroupPlan {
    pub patterns: Vec<TriplePattern>,
    /// Filters pushed into the group.
    pub filters: Vec<Expression>,
    pub sources: Vec<EndpointId>,
}

impl GroupPlan {
    /// All variables of the group.
    pub fn variables(&self) -> Vec<Variable> {
        let mut out = Vec::new();
        for tp in &self.patterns {
            for v in tp.variables() {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    fn to_query(&self, bound: Option<BoundBlock<'_>>) -> Query {
        let mut body = GraphPattern::Bgp(self.patterns.clone());
        for f in &self.filters {
            body = GraphPattern::Filter(Box::new(body), f.clone());
        }
        if let Some((vars, rows)) = bound {
            body = body.join(GraphPattern::Values(vars.to_vec(), rows.to_vec()));
        }
        Query::select(SelectQuery::new(Projection::Vars(self.variables()), body))
    }
}

/// Knobs distinguishing the baselines' execution styles.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Bindings per `VALUES` block in a bound join (FedX ships 15).
    pub block_size: usize,
    /// When set, a step whose current bindings exceed this switches to
    /// independent evaluation plus a hash join (SPLENDID's strategy);
    /// `None` always bind-joins (FedX).
    pub hash_join_threshold: Option<usize>,
    pub timeout: Option<Duration>,
}

/// The nested-loop, group-at-a-time execution shared by FedX, HiBISCuS,
/// and SPLENDID: evaluate the first group, then repeatedly ship the
/// current bindings to the next group's sources in blocks.
///
/// This is exactly the strategy §1 of the Lusail paper critiques: "the
/// query being processed one triple pattern at a time", with requests
/// multiplying as blocks × endpoints.
pub fn execute_groups(
    federation: &Federation,
    handler: &RequestHandler,
    groups: &[GroupPlan],
    deadline: Option<Instant>,
    opts: &ExecOptions,
) -> Result<Relation, EngineError> {
    let mut current: Option<Relation> = None;
    for group in groups {
        check_deadline(deadline, opts)?;
        let rel = match &current {
            None => evaluate_unbound(federation, handler, group)?,
            Some(bindings) => {
                let shared: Vec<Variable> = group
                    .variables()
                    .into_iter()
                    .filter(|v| bindings.index_of(v).is_some())
                    .collect();
                let use_hash = match opts.hash_join_threshold {
                    Some(limit) => bindings.len() > limit,
                    None => false,
                };
                if shared.is_empty() || use_hash {
                    evaluate_unbound(federation, handler, group)?
                } else {
                    evaluate_bound(
                        federation, handler, group, bindings, &shared, deadline, opts,
                    )?
                }
            }
        };
        current = Some(match current {
            None => rel,
            Some(acc) => acc.join(&rel),
        });
        if current.as_ref().is_some_and(|r| r.is_empty()) {
            // Keep the header complete for downstream projection.
            let r = current.unwrap();
            let mut vars = r.vars().to_vec();
            for g in groups {
                for v in g.variables() {
                    if !vars.contains(&v) {
                        vars.push(v);
                    }
                }
            }
            return Ok(Relation::new(vars));
        }
    }
    Ok(current.unwrap_or_else(|| Relation::from_rows(Vec::new(), vec![Vec::new()])))
}

fn evaluate_unbound(
    federation: &Federation,
    handler: &RequestHandler,
    group: &GroupPlan,
) -> Result<Relation, EngineError> {
    let q = group.to_query(None);
    let results = handler.map(group.sources.clone(), |ep| {
        federation.endpoint(ep).select(&q)
    });
    let mut out = Relation::new(group.variables());
    for rel in results {
        out.append(rel?);
    }
    Ok(out)
}

fn evaluate_bound(
    federation: &Federation,
    handler: &RequestHandler,
    group: &GroupPlan,
    bindings: &Relation,
    shared: &[Variable],
    deadline: Option<Instant>,
    opts: &ExecOptions,
) -> Result<Relation, EngineError> {
    // Distinct rows of the shared variables are the values to ship.
    let mut key_rows = bindings.project(shared);
    key_rows.dedup();
    let rows = key_rows.rows().to_vec();
    let mut out = Relation::new(group.variables());
    // One wave per block: FedX-style sequential nested loop (each block
    // still fans out to all sources in parallel, but blocks are serial —
    // this is the parallelism limit the paper describes).
    for block in rows.chunks(opts.block_size.max(1)) {
        check_deadline(deadline, opts)?;
        let q = group.to_query(Some((shared, block)));
        let results = handler.map(group.sources.clone(), |ep| {
            federation.endpoint(ep).select(&q)
        });
        for rel in results {
            out.append(rel?.project(out.vars()));
        }
    }
    Ok(out)
}

fn check_deadline(deadline: Option<Instant>, opts: &ExecOptions) -> Result<(), EngineError> {
    if let Some(d) = deadline {
        if Instant::now() > d {
            return Err(EngineError::Timeout(opts.timeout.unwrap_or_default()));
        }
    }
    Ok(())
}

/// Bag union of two relations with possibly different headers.
pub fn union_relations(a: Relation, b: Relation) -> Relation {
    let mut vars = a.vars().to_vec();
    for v in b.vars() {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    let mut out = Relation::new(vars.clone());
    for rel in [&a, &b] {
        let idx: Vec<Option<usize>> = vars.iter().map(|v| rel.index_of(v)).collect();
        for row in rel.rows() {
            out.push(idx.iter().map(|i| i.and_then(|i| row[i].clone())).collect());
        }
    }
    out
}

/// Evaluate a residual filter over a materialized relation (`EXISTS` is
/// unsupported at this level and yields false).
pub fn apply_filter(rel: Relation, f: &Expression) -> Relation {
    struct RowCtx<'a> {
        vars: &'a [Variable],
        row: &'a [Option<Term>],
    }
    impl ExprContext for RowCtx<'_> {
        fn value_of(&self, v: &Variable) -> Option<Term> {
            let i = self.vars.iter().position(|x| x == v)?;
            self.row[i].clone()
        }
        fn exists(&mut self, _pattern: &GraphPattern) -> bool {
            false
        }
    }
    let vars = rel.vars().to_vec();
    let rows = rel
        .rows()
        .iter()
        .filter(|row| {
            let mut ctx = RowCtx { vars: &vars, row };
            eval_ebv(f, &mut ctx)
        })
        .cloned()
        .collect();
    Relation::from_rows(vars, rows)
}

/// `BIND(expr AS ?v)` over a materialized relation (errors leave the
/// variable unbound).
pub fn apply_bind(rel: Relation, expr: &Expression, var: &Variable) -> Relation {
    struct RowCtx<'a> {
        vars: &'a [Variable],
        row: &'a [Option<Term>],
    }
    impl ExprContext for RowCtx<'_> {
        fn value_of(&self, v: &Variable) -> Option<Term> {
            let i = self.vars.iter().position(|x| x == v)?;
            self.row[i].clone()
        }
        fn exists(&mut self, _pattern: &GraphPattern) -> bool {
            false
        }
    }
    let mut vars = rel.vars().to_vec();
    if !vars.contains(var) {
        vars.push(var.clone());
    }
    let out_idx = vars.iter().position(|x| x == var).unwrap();
    let mut out = Relation::new(vars);
    for row in rel.rows() {
        let value = {
            let mut ctx = RowCtx {
                vars: rel.vars(),
                row,
            };
            lusail_store::expr::eval(expr, &mut ctx).and_then(lusail_store::expr::value_to_term)
        };
        let mut new_row = row.clone();
        if new_row.len() < out.vars().len() {
            new_row.push(None);
        }
        new_row[out_idx] = value;
        out.push(new_row);
    }
    out
}

/// Apply the outer `SELECT`'s solution modifiers to an assembled relation.
pub fn finalize_select(select: &SelectQuery, mut result: Relation) -> Relation {
    match &select.projection {
        Projection::Count {
            inner,
            distinct,
            as_var,
        } => {
            let n = match inner {
                None => {
                    if *distinct {
                        result.dedup();
                    }
                    result.len()
                }
                Some(v) => {
                    if *distinct {
                        result.distinct_values(v).len()
                    } else {
                        result
                            .index_of(v)
                            .map(|i| result.rows().iter().filter(|r| r[i].is_some()).count())
                            .unwrap_or(0)
                    }
                }
            };
            let mut rel = Relation::new(vec![as_var.clone()]);
            rel.push(vec![Some(Term::integer(n as i64))]);
            return rel;
        }
        Projection::Aggregate { keys, aggs } => {
            result =
                lusail_sparql::aggregate::aggregate_relation(&result, &select.group_by, keys, aggs);
        }
        Projection::Vars(vs) => {
            result = result.project(vs);
        }
        Projection::All => {}
    }
    if !select.order_by.is_empty() {
        let idx: Vec<(Option<usize>, bool)> = select
            .order_by
            .iter()
            .map(|(v, asc)| (result.index_of(v), *asc))
            .collect();
        result.rows_mut().sort_by(|a, b| {
            for (i, asc) in &idx {
                if let Some(i) = i {
                    let ord = compare_terms(&a[*i], &b[*i]);
                    let ord = if *asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if select.distinct {
        result.dedup();
    }
    if let Some(offset) = select.offset {
        let rows = result.rows_mut();
        if offset >= rows.len() {
            rows.clear();
        } else {
            rows.drain(..offset);
        }
    }
    if let Some(limit) = select.limit {
        result.rows_mut().truncate(limit);
    }
    result
}

fn compare_terms(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(t: &Option<Term>) -> u8 {
        match t {
            None => 0,
            Some(Term::BlankNode(_)) => 1,
            Some(Term::Iri(_)) => 2,
            Some(Term::Literal(_)) => 3,
        }
    }
    let (ra, rb) = (rank(a), rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Some(Term::Literal(la)), Some(Term::Literal(lb))) => {
            if let (Some(na), Some(nb)) = (la.as_f64(), lb.as_f64()) {
                na.partial_cmp(&nb).unwrap_or(Ordering::Equal)
            } else {
                la.lexical.cmp(&lb.lexical)
            }
        }
        (Some(x), Some(y)) => x.cmp(y),
        _ => Ordering::Equal,
    }
}

/// Split patterns into connected components by shared variables. Baselines
/// reject queries whose required part is disconnected (the paper's C5, B5,
/// B6: "a query not supported by Lusail's competitors").
pub fn connected_pattern_components(patterns: &[TriplePattern]) -> usize {
    let n = patterns.len();
    if n == 0 {
        return 0;
    }
    let mut component: Vec<usize> = (0..n).collect();
    fn find(c: &mut Vec<usize>, i: usize) -> usize {
        if c[i] != i {
            let root = find(c, c[i]);
            c[i] = root;
        }
        c[i]
    }
    for i in 0..n {
        for j in i + 1..n {
            let connected = patterns[i]
                .variables()
                .iter()
                .any(|v| patterns[j].mentions(v))
                // Shared constants (subject/object IRIs) connect too.
                || [&patterns[i].subject, &patterns[i].object].iter().any(|s| {
                    s.as_term().is_some()
                        && [&patterns[j].subject, &patterns[j].object]
                            .iter()
                            .any(|t| t.as_term() == s.as_term())
                });
            if connected {
                let (ri, rj) = (find(&mut component, i), find(&mut component, j));
                if ri != rj {
                    component[ri] = rj;
                }
            }
        }
    }
    let mut roots: Vec<usize> = (0..n).map(|i| find(&mut component, i)).collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_core::LusailConfig;
    use lusail_federation::{NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
    use lusail_rdf::Graph;
    use lusail_sparql::ast::TermPattern;
    use lusail_store::Store;
    use std::sync::Arc;

    fn tp(s: &str, p: &str, o: &str) -> TriplePattern {
        let slot = |x: &str| {
            if let Some(v) = x.strip_prefix('?') {
                TermPattern::var(v)
            } else {
                TermPattern::iri(x)
            }
        };
        TriplePattern::new(slot(s), slot(p), slot(o))
    }

    #[test]
    fn lusail_implements_trait() {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::iri("http://x/o"),
        );
        let fed = Federation::new(vec![Arc::new(SimulatedEndpoint::new(
            "ep",
            Store::from_graph(&g),
            NetworkProfile::instant(),
        )) as Arc<dyn SparqlEndpoint>]);
        let engine = LusailEngine::new(fed, LusailConfig::default());
        let dyn_engine: &dyn FederatedEngine = &engine;
        assert_eq!(dyn_engine.name(), "Lusail");
        assert!(dyn_engine.preprocessing_time().is_none());
        let q = lusail_sparql::parse_query("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap();
        assert_eq!(dyn_engine.execute(&q).unwrap().len(), 1);
    }

    #[test]
    fn component_counting() {
        assert_eq!(connected_pattern_components(&[]), 0);
        assert_eq!(
            connected_pattern_components(&[tp("?a", "http://p", "?b"), tp("?b", "http://q", "?c")]),
            1
        );
        assert_eq!(
            connected_pattern_components(&[tp("?a", "http://p", "?b"), tp("?x", "http://q", "?y")]),
            2
        );
        // Shared constant object connects.
        assert_eq!(
            connected_pattern_components(&[
                tp("?a", "http://p", "http://k"),
                tp("?x", "http://q", "http://k")
            ]),
            1
        );
    }

    #[test]
    fn finalize_applies_modifiers() {
        let v = |n: &str| Variable::new(n);
        let mut rel = Relation::new(vec![v("x"), v("y")]);
        for i in [3, 1, 2, 1] {
            rel.push(vec![Some(Term::integer(i)), Some(Term::integer(i * 10))]);
        }
        let mut sel = SelectQuery::new(Projection::Vars(vec![v("x")]), GraphPattern::empty());
        sel.distinct = true;
        sel.order_by = vec![(v("x"), true)];
        sel.limit = Some(2);
        let out = finalize_select(&sel, rel);
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0][0], Some(Term::integer(1)));
        assert_eq!(out.rows()[1][0], Some(Term::integer(2)));
    }

    #[test]
    fn filter_drops_rows() {
        let v = |n: &str| Variable::new(n);
        let mut rel = Relation::new(vec![v("x")]);
        rel.push(vec![Some(Term::integer(1))]);
        rel.push(vec![Some(Term::integer(10))]);
        let f = Expression::Gt(
            Box::new(Expression::Var(v("x"))),
            Box::new(Expression::Term(Term::integer(5))),
        );
        let out = apply_filter(rel, &f);
        assert_eq!(out.len(), 1);
    }
}
