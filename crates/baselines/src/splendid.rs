//! A SPLENDID-style index-based federated engine (Görlitz & Staab,
//! COLD 2011).
//!
//! SPLENDID builds a VoID-style index in a preprocessing pass — per
//! endpoint, per predicate: triple count and distinct subject/object
//! counts. Source selection reads the index instead of probing endpoints;
//! join planning uses index cardinalities; execution chooses per join step
//! between a bound join (few bindings) and independent evaluation plus a
//! hash join (many bindings).
//!
//! The preprocessing pass is the cost the paper's §5.1 "Data Preprocessing
//! Cost" table reports (25 s for QFed, 3513 s for LargeRDFBench on the
//! authors' hardware): it scales with data size, which is why index-free
//! engines are preferred for dynamic federations.

use crate::common::{
    apply_filter, connected_pattern_components, execute_groups, finalize_select, union_relations,
    ExecOptions, FederatedEngine, GroupPlan,
};
use lusail_core::normalize::{normalize, ConjBranch};
use lusail_core::EngineError;
use lusail_federation::{EndpointId, Federation, RequestHandler};
use lusail_sparql::ast::{
    Projection, Query, QueryForm, SelectQuery, TermPattern, TriplePattern, Variable,
};
use lusail_sparql::solution::Relation;
use lusail_store::stats::StoreStats;
use std::time::{Duration, Instant};

/// The VoID-style index: per-endpoint statistics gathered in the
/// preprocessing pass.
pub struct VoidIndex {
    per_endpoint: Vec<StoreStats>,
    build_time: Duration,
}

impl VoidIndex {
    /// Run the preprocessing pass over every endpoint in the federation.
    pub fn build(federation: &Federation) -> Self {
        let start = Instant::now();
        let per_endpoint = federation
            .iter()
            .map(|(_, ep)| ep.collect_stats().unwrap_or_default())
            .collect();
        VoidIndex {
            per_endpoint,
            build_time: start.elapsed(),
        }
    }

    /// How long preprocessing took.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Index-based source selection for one pattern: endpoints whose index
    /// lists the pattern's predicate (every endpoint for variable
    /// predicates).
    pub fn sources_for(&self, tp: &TriplePattern) -> Vec<EndpointId> {
        match &tp.predicate {
            TermPattern::Term(t) => match t.as_iri() {
                Some(iri) => (0..self.per_endpoint.len())
                    .filter(|&i| self.per_endpoint[i].has_predicate(iri))
                    .collect(),
                None => (0..self.per_endpoint.len()).collect(),
            },
            TermPattern::Var(_) => (0..self.per_endpoint.len()).collect(),
        }
    }

    /// Index-based cardinality estimate for a pattern at one endpoint:
    /// the predicate count, narrowed by distinct subject/object counts
    /// when the subject/object is bound.
    pub fn estimate(&self, tp: &TriplePattern, ep: EndpointId) -> usize {
        let stats = &self.per_endpoint[ep];
        let Some(iri) = tp.predicate.as_term().and_then(|t| t.as_iri()) else {
            return stats.triples;
        };
        let Some(p) = stats.predicates.get(iri) else {
            return 0;
        };
        let mut est = p.count as f64;
        if tp.subject.as_term().is_some() && p.distinct_subjects > 0 {
            est /= p.distinct_subjects as f64;
        }
        if tp.object.as_term().is_some() && p.distinct_objects > 0 {
            est /= p.distinct_objects as f64;
        }
        est.ceil() as usize
    }

    /// Total estimate over a pattern's relevant endpoints.
    pub fn total_estimate(&self, tp: &TriplePattern) -> usize {
        self.sources_for(tp)
            .into_iter()
            .map(|ep| self.estimate(tp, ep))
            .sum()
    }
}

/// The SPLENDID engine.
pub struct Splendid {
    federation: Federation,
    index: VoidIndex,
    handler: RequestHandler,
    /// Above this many bindings, a join step switches from bound join to
    /// independent evaluation + hash join.
    pub hash_join_threshold: usize,
    /// Bindings per bound-join block.
    pub bind_block_size: usize,
    pub timeout: Option<Duration>,
}

impl Splendid {
    /// Build the index (the preprocessing pass) and the engine.
    pub fn new(federation: Federation) -> Self {
        let index = VoidIndex::build(&federation);
        Splendid {
            federation,
            index,
            handler: RequestHandler::per_core(),
            hash_join_threshold: 500,
            bind_block_size: 100,
            timeout: None,
        }
    }

    /// The underlying federation.
    pub fn federation(&self) -> &Federation {
        &self.federation
    }

    /// The VoID index.
    pub fn index(&self) -> &VoidIndex {
        &self.index
    }

    fn run(&self, query: &Query) -> Result<Relation, EngineError> {
        let start = Instant::now();
        let deadline = self.timeout.map(|t| start + t);
        let select_view: SelectQuery = match &query.form {
            QueryForm::Select(s) => s.clone(),
            QueryForm::Ask(p) => {
                let mut s = SelectQuery::new(Projection::All, p.clone());
                s.limit = Some(1);
                s
            }
        };
        let branches = normalize(&select_view.pattern)?;
        let mut combined: Option<Relation> = None;
        for branch in &branches {
            let rel = self.run_branch(branch, deadline)?;
            combined = Some(match combined {
                None => rel,
                Some(acc) => union_relations(acc, rel),
            });
        }
        Ok(finalize_select(&select_view, combined.unwrap_or_default()))
    }

    fn run_branch(
        &self,
        branch: &ConjBranch,
        deadline: Option<Instant>,
    ) -> Result<Relation, EngineError> {
        if connected_pattern_components(&branch.patterns) > 1 {
            return Err(EngineError::Unsupported(
                "disjoint subgraphs joined by a filter variable".into(),
            ));
        }
        // Index-based source selection; then group single-source patterns
        // per endpoint (SPLENDID also groups same-source patterns).
        let sources: Vec<Vec<EndpointId>> = branch
            .patterns
            .iter()
            .map(|tp| self.index.sources_for(tp))
            .collect();
        let mut groups: Vec<GroupPlan> = Vec::new();
        for (i, tp) in branch.patterns.iter().enumerate() {
            let exclusive = sources[i].len() == 1;
            let slot = exclusive
                .then(|| {
                    groups
                        .iter()
                        .position(|g| g.sources.len() == 1 && g.sources == sources[i])
                })
                .flatten();
            match slot {
                Some(g) => groups[g].patterns.push(tp.clone()),
                None => groups.push(GroupPlan {
                    patterns: vec![tp.clone()],
                    filters: Vec::new(),
                    sources: sources[i].clone(),
                }),
            }
        }
        for f in &branch.filters {
            if matches!(
                f,
                lusail_sparql::ast::Expression::Exists(_)
                    | lusail_sparql::ast::Expression::NotExists(_)
            ) {
                continue;
            }
            let fvars = f.variables();
            if fvars.is_empty() {
                continue;
            }
            for g in &mut groups {
                let gvars = g.variables();
                if fvars.iter().all(|v| gvars.contains(v)) {
                    g.filters.push(f.clone());
                }
            }
        }

        // Cost-based ordering: cheapest estimated group first, then by
        // connectivity (greedy approximation of SPLENDID's DP planner).
        let estimate = |g: &GroupPlan| -> usize {
            g.patterns
                .iter()
                .map(|tp| self.index.total_estimate(tp))
                .min()
                .unwrap_or(0)
        };
        let mut ordered: Vec<GroupPlan> = Vec::with_capacity(groups.len());
        let mut bound: Vec<Variable> = Vec::new();
        while !groups.is_empty() {
            let idx = groups
                .iter()
                .enumerate()
                .min_by_key(|(_, g)| {
                    let connected =
                        g.variables().iter().any(|v| bound.contains(v)) || bound.is_empty();
                    (usize::from(!connected), estimate(g))
                })
                .map(|(i, _)| i)
                .unwrap();
            let g = groups.remove(idx);
            bound.extend(g.variables());
            ordered.push(g);
        }

        let opts = ExecOptions {
            block_size: self.bind_block_size,
            hash_join_threshold: Some(self.hash_join_threshold),
            timeout: self.timeout,
        };
        let mut rel = execute_groups(&self.federation, &self.handler, &ordered, deadline, &opts)?;

        for block in &branch.optionals {
            let merged: Vec<EndpointId> = {
                let mut s: Vec<EndpointId> = block
                    .patterns
                    .iter()
                    .flat_map(|tp| self.index.sources_for(tp))
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            let group = GroupPlan {
                patterns: block.patterns.clone(),
                filters: block.filters.clone(),
                sources: merged,
            };
            let opt_rel = execute_groups(
                &self.federation,
                &self.handler,
                std::slice::from_ref(&group),
                deadline,
                &opts,
            )?;
            rel = rel.left_join(&opt_rel);
        }
        for (vars, rows) in &branch.values {
            rel = rel.join(&Relation::from_rows(vars.clone(), rows.clone()));
        }
        for block in &branch.minuses {
            let merged: Vec<EndpointId> = {
                let mut s: Vec<EndpointId> = block
                    .patterns
                    .iter()
                    .flat_map(|tp| self.index.sources_for(tp))
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            };
            let group = GroupPlan {
                patterns: block.patterns.clone(),
                filters: block.filters.clone(),
                sources: merged,
            };
            let minus_rel = execute_groups(
                &self.federation,
                &self.handler,
                std::slice::from_ref(&group),
                deadline,
                &opts,
            )?;
            rel = rel.minus(&minus_rel);
        }
        for (expr, var) in &branch.binds {
            rel = crate::common::apply_bind(rel, expr, var);
        }
        for f in &branch.filters {
            // Residual filters: any filter not covered by a single group.
            let fvars = f.variables();
            let covered = ordered.iter().any(|g| {
                let gvars = g.variables();
                !fvars.is_empty() && fvars.iter().all(|v| gvars.contains(v))
            });
            if !covered {
                rel = apply_filter(rel, f);
            }
        }
        Ok(rel)
    }
}

impl FederatedEngine for Splendid {
    fn name(&self) -> &str {
        "SPLENDID"
    }

    fn execute(&self, query: &Query) -> Result<Relation, EngineError> {
        self.run(query)
    }

    fn preprocessing_time(&self) -> Option<Duration> {
        Some(self.index.build_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_federation::{NetworkProfile, SimulatedEndpoint, SparqlEndpoint};
    use lusail_rdf::{vocab, Graph, Term};
    use lusail_sparql::parse_query;
    use lusail_store::Store;
    use std::sync::Arc;

    fn federation() -> Federation {
        let ub = |l: &str| Term::iri(format!("{}{l}", vocab::ub::NS));
        let u1 = |l: &str| Term::iri(format!("http://univ1.example.org/{l}"));
        let u2 = |l: &str| Term::iri(format!("http://univ2.example.org/{l}"));
        let mut g1 = Graph::new();
        g1.add(u1("MIT"), ub("address"), Term::literal("XXX"));
        g1.add(u1("Ann"), ub("PhDDegreeFrom"), u1("MIT"));
        let mut g2 = Graph::new();
        g2.add(u2("CMU"), ub("address"), Term::literal("CCCC"));
        g2.add(u2("Tim"), ub("PhDDegreeFrom"), u1("MIT"));
        g2.add(u2("Kim"), ub("advisor"), u2("Tim"));
        Federation::new(vec![
            Arc::new(SimulatedEndpoint::new(
                "univ1",
                Store::from_graph(&g1),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
            Arc::new(SimulatedEndpoint::new(
                "univ2",
                Store::from_graph(&g2),
                NetworkProfile::instant(),
            )) as Arc<dyn SparqlEndpoint>,
        ])
    }

    #[test]
    fn preprocessing_builds_index() {
        let s = Splendid::new(federation());
        assert!(s.preprocessing_time().is_some());
        let ask_traffic = s.federation().total_traffic().requests;
        // Index-based source selection issues no ASK probes.
        let tp = TriplePattern::new(
            TermPattern::var("u"),
            TermPattern::iri(format!("{}address", vocab::ub::NS)),
            TermPattern::var("a"),
        );
        assert_eq!(s.index().sources_for(&tp), vec![0, 1]);
        let adv = TriplePattern::new(
            TermPattern::var("s"),
            TermPattern::iri(format!("{}advisor", vocab::ub::NS)),
            TermPattern::var("p"),
        );
        assert_eq!(s.index().sources_for(&adv), vec![1]);
        assert_eq!(s.federation().total_traffic().requests, ask_traffic);
    }

    #[test]
    fn index_estimates() {
        let s = Splendid::new(federation());
        let tp = TriplePattern::new(
            TermPattern::var("u"),
            TermPattern::iri(format!("{}PhDDegreeFrom", vocab::ub::NS)),
            TermPattern::var("a"),
        );
        assert_eq!(s.index().total_estimate(&tp), 2);
        // Bound object narrows.
        let bound = TriplePattern::new(
            TermPattern::var("u"),
            TermPattern::iri(format!("{}PhDDegreeFrom", vocab::ub::NS)),
            TermPattern::iri("http://univ1.example.org/MIT"),
        );
        assert!(s.index().total_estimate(&bound) <= 2);
    }

    #[test]
    fn answers_cross_endpoint_join() {
        let s = Splendid::new(federation());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?p ?u ?a WHERE { ?p ub:PhDDegreeFrom ?u . ?u ub:address ?a }"#,
        )
        .unwrap();
        let rel = s.execute(&q).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn matches_lusail() {
        use lusail_core::{LusailConfig, LusailEngine};
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT ?s ?p ?u ?a WHERE {
                 ?s ub:advisor ?p . ?p ub:PhDDegreeFrom ?u . ?u ub:address ?a }"#,
        )
        .unwrap();
        let s = Splendid::new(federation());
        let lusail = LusailEngine::new(federation(), LusailConfig::default());
        let mut r1 = s.execute(&q).unwrap();
        let mut r2 = lusail.execute(&q).unwrap();
        r1.rows_mut().sort();
        r2.rows_mut().sort();
        assert_eq!(r1.len(), 1); // Kim → Tim → MIT → XXX
        assert_eq!(r1.rows(), r2.rows());
    }

    #[test]
    fn rejects_disconnected_subgraphs() {
        let s = Splendid::new(federation());
        let q = parse_query(
            r#"PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
               SELECT * WHERE { ?a ub:address ?x . ?b ub:advisor ?c . FILTER(?x != ?c) }"#,
        )
        .unwrap();
        assert!(matches!(s.execute(&q), Err(EngineError::Unsupported(_))));
    }
}
