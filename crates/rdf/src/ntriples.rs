//! N-Triples parsing and serialization.
//!
//! Supports the full N-Triples grammar needed by the workloads: IRIs, blank
//! nodes, plain / typed / language-tagged literals, `#` comments, and blank
//! lines. Unicode escapes (`\uXXXX`) in IRIs are not decoded (our generators
//! never produce them).

use crate::graph::Graph;
use crate::term::{unescape_literal, Literal, Term};
use crate::triple::Triple;
use std::fmt::Write as _;

/// An N-Triples parse error with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N-Triples parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse an N-Triples document into a [`Graph`].
pub fn parse(input: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let triple = parse_line(line).map_err(|message| ParseError {
            line: lineno + 1,
            message,
        })?;
        graph.insert(triple);
    }
    Ok(graph)
}

fn parse_line(line: &str) -> Result<Triple, String> {
    let mut cursor = Cursor { s: line, pos: 0 };
    let subject = cursor.term()?;
    cursor.skip_ws();
    let predicate = cursor.term()?;
    cursor.skip_ws();
    let object = cursor.term()?;
    cursor.skip_ws();
    if !cursor.eat('.') {
        return Err("expected terminating '.'".into());
    }
    cursor.skip_ws();
    if !cursor.at_end() {
        return Err(format!("trailing content: {:?}", cursor.rest()));
    }
    Ok(Triple {
        subject,
        predicate,
        object,
    })
}

struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn rest(&self) -> &'a str {
        &self.s[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.s.len()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.rest().chars().next() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.rest().starts_with(c) {
            self.pos += c.len_utf8();
            true
        } else {
            false
        }
    }

    fn term(&mut self) -> Result<Term, String> {
        self.skip_ws();
        let rest = self.rest();
        if rest.starts_with('<') {
            let end = rest.find('>').ok_or("unterminated IRI")?;
            let iri = &rest[1..end];
            self.pos += end + 1;
            Ok(Term::iri(iri))
        } else if let Some(body) = rest.strip_prefix("_:") {
            let len = body
                .char_indices()
                .find(|(_, c)| c.is_whitespace() || *c == '.')
                .map(|(i, _)| i)
                .unwrap_or(body.len());
            if len == 0 {
                return Err("empty blank node label".into());
            }
            let label = &body[..len];
            self.pos += 2 + len;
            Ok(Term::bnode(label))
        } else if rest.starts_with('"') {
            self.literal()
        } else {
            Err(format!(
                "unexpected token: {:?}",
                rest.chars().take(12).collect::<String>()
            ))
        }
    }

    fn literal(&mut self) -> Result<Term, String> {
        // self.rest() starts with '"'
        let body = &self.rest()[1..];
        let mut end = None;
        let mut escaped = false;
        for (i, c) in body.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or("unterminated literal")?;
        let lexical = unescape_literal(&body[..end]);
        self.pos += 1 + end + 1;

        let rest = self.rest();
        if let Some(tail) = rest.strip_prefix("^^<") {
            let close = tail.find('>').ok_or("unterminated datatype IRI")?;
            let dt = &tail[..close];
            self.pos += 3 + close + 1;
            Ok(Term::Literal(Literal::typed(lexical, dt)))
        } else if let Some(tail) = rest.strip_prefix('@') {
            let len = tail
                .char_indices()
                .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '-'))
                .map(|(i, _)| i)
                .unwrap_or(tail.len());
            if len == 0 {
                return Err("empty language tag".into());
            }
            let lang = &tail[..len];
            self.pos += 1 + len;
            Ok(Term::Literal(Literal::lang(lexical, lang)))
        } else {
            Ok(Term::Literal(Literal::plain(lexical)))
        }
    }
}

/// Serialize a graph as an N-Triples document.
pub fn serialize(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph {
        let _ = writeln!(out, "{t}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_document() {
        let doc = r#"
# a comment
<http://x/s> <http://x/p> <http://x/o> .
<http://x/s> <http://x/p> "plain" .
<http://x/s> <http://x/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/s> <http://x/p> "hi"@en .
_:b0 <http://x/p> _:b1 .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 5);
        let objs: Vec<_> = g.iter().map(|t| t.object.clone()).collect();
        assert_eq!(objs[1], Term::literal("plain"));
        assert_eq!(objs[2], Term::integer(42));
        assert_eq!(objs[3], Term::Literal(Literal::lang("hi", "en")));
        assert_eq!(objs[4], Term::bnode("b1"));
    }

    #[test]
    fn roundtrip() {
        let mut g = Graph::new();
        g.add(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::literal("line\nbreak \"q\""),
        );
        g.add(
            Term::bnode("n1"),
            Term::iri("http://x/p"),
            Term::integer(-7),
        );
        g.add(
            Term::iri("http://x/s"),
            Term::iri("http://x/p"),
            Term::Literal(Literal::lang("ciao", "it")),
        );
        let doc = serialize(&g);
        let g2 = parse(&doc).unwrap();
        assert_eq!(g.triples(), g2.triples());
    }

    #[test]
    fn error_reports_line() {
        let doc = "<http://x/s> <http://x/p> <http://x/o> .\nbogus line\n";
        let err = parse(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn error_on_missing_dot() {
        assert!(parse("<http://a> <http://b> <http://c>\n").is_err());
    }

    #[test]
    fn error_on_unterminated_literal() {
        assert!(parse("<http://a> <http://b> \"oops .\n").is_err());
    }
}
