//! A small Fx-style hasher (the algorithm used by rustc's `FxHashMap`).
//!
//! Our hash keys are overwhelmingly dictionary-encoded `u32` term ids and
//! small tuples of them; SipHash (std's default) costs several times more
//! than the lookup itself for such keys. This is a self-contained
//! re-implementation so the workspace stays within its approved dependency
//! set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using the Fx hash algorithm.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using the Fx hash algorithm.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// The `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher: a simple multiply-and-rotate word hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(42);
        b.write_u32(42);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u32(43);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_basic_usage() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn hashes_spread_for_sequential_keys() {
        // Sanity check that sequential ids do not collapse into one bucket
        // pattern: hash values must all differ.
        let mut seen = FxHashSet::default();
        for i in 0u32..10_000 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn byte_stream_matches_in_pieces() {
        // write() must be consistent regardless of chunking only when chunk
        // boundaries align to 8 bytes; verify the aligned case.
        let bytes: Vec<u8> = (0u8..32).collect();
        let mut a = FxHasher::default();
        a.write(&bytes);
        let mut b = FxHasher::default();
        b.write(&bytes[..16]);
        b.write(&bytes[16..]);
        assert_eq!(a.finish(), b.finish());
    }
}
