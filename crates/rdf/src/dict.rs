//! Term dictionary: interning of [`Term`]s to dense `u32` ids.
//!
//! Each endpoint's store owns one dictionary. All query processing inside a
//! store happens on ids; terms are materialized only at the federation
//! boundary (results shipped between endpoints and the federator are terms,
//! since each endpoint has its own id space — exactly like real federated
//! SPARQL, where endpoints exchange lexical values).

use crate::fxhash::FxHashMap;
use crate::term::Term;

/// A dense identifier for an interned term. `0` is a valid id.
pub type TermId = u32;

/// An interning dictionary mapping [`Term`] ↔ [`TermId`].
///
/// Lookup by term is hash-based; lookup by id is a direct vector index.
/// Ids are handed out contiguously starting at 0, so they can be used as
/// indexes into side arrays (e.g. per-term statistics).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: FxHashMap<Term, TermId>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id. Idempotent.
    pub fn encode(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Look up the id of an already-interned term, without interning.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolve an id back to its term. Panics on an id this dictionary never
    /// produced (that is a logic error, not a data error).
    pub fn decode(&self, id: TermId) -> &Term {
        &self.terms[id as usize]
    }

    /// Resolve an id if it is valid.
    pub fn try_decode(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id as usize)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over all `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms.iter().enumerate().map(|(i, t)| (i as TermId, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::iri("http://x/a"));
        let b = d.encode(&Term::iri("http://x/b"));
        let a2 = d.encode(&Term::iri("http://x/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn decode_roundtrip() {
        let mut d = Dictionary::new();
        let terms = [
            Term::iri("http://x/a"),
            Term::literal("abc"),
            Term::bnode("b1"),
            Term::integer(5),
        ];
        let ids: Vec<_> = terms.iter().map(|t| d.encode(t)).collect();
        for (t, id) in terms.iter().zip(&ids) {
            assert_eq!(d.decode(*id), t);
            assert_eq!(d.get(t), Some(*id));
        }
    }

    #[test]
    fn get_does_not_intern() {
        let d = Dictionary::new();
        assert_eq!(d.get(&Term::iri("x")), None);
        assert!(d.is_empty());
    }

    #[test]
    fn ids_are_dense() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let id = d.encode(&Term::integer(i));
            assert_eq!(id, i as TermId);
        }
    }

    #[test]
    fn literals_distinct_by_datatype_and_lang() {
        let mut d = Dictionary::new();
        let a = d.encode(&Term::literal("x"));
        let b = d.encode(&Term::Literal(crate::Literal::typed(
            "x",
            crate::vocab::xsd::STRING,
        )));
        let c = d.encode(&Term::Literal(crate::Literal::lang("x", "en")));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }
}
